"""Bench: regenerate Table XII (overheads at today's TRHD=4.8K)."""

import pytest
from bench_common import once

from repro.experiments import table12


def test_table12_current_threshold(benchmark):
    rows = once(benchmark, table12.run)
    by_name = {r.tracker: r for r in rows}
    for name, paper in table12.PAPER.items():
        row = by_name[name]
        assert row.storage_bytes == pytest.approx(paper["storage"],
                                                  abs=4)
        assert row.secure == paper["secure"]
        assert row.cannibalization_pct == pytest.approx(
            paper["cannibalization"], abs=1.0)
    # The design point: MIRZA leaves REF time entirely to refresh.
    assert by_name["MIRZA"].cannibalization_pct == 0.0
    assert not by_name["TRR"].secure
    print()
    table12.main()
