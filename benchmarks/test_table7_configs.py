"""Bench: regenerate Table VII (MIRZA configurations)."""

import pytest
from bench_common import once

from repro.experiments import table7


def test_table7_configs(benchmark):
    rows = once(benchmark, table7.run)
    by_trhd = {r.trhd: r for r in rows}
    for trhd, paper in table7.PAPER.items():
        row = by_trhd[trhd]
        assert row.preset.fth == paper["fth"]
        assert row.preset.mint_window == paper["window"]
        assert row.preset.num_regions == paper["regions"]
        assert row.preset.storage_bytes_per_bank == paper["sram"]
        # The solver independently lands within 1% of the paper's FTH.
        assert row.solved.fth == pytest.approx(paper["fth"], rel=0.01)
        assert row.solved.is_safe()
    print()
    table7.main()
