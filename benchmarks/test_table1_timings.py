"""Bench: regenerate Table I (DRAM timing parameters)."""

from bench_common import once

from repro.experiments import table1


def test_table1_timings(benchmark):
    values = once(benchmark, table1.run)
    for name, (ddr5, prac) in table1.PAPER_ROWS.items():
        assert values[name]["ddr5_ns"] == ddr5
        assert values[name]["prac_ns"] == prac
    print()
    table1.main()
