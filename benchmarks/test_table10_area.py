"""Bench: regenerate Table X (relative area MIRZA vs PRAC)."""

import pytest
from bench_common import once

from repro.experiments import table10


def test_table10_area(benchmark):
    rows = once(benchmark, table10.run)
    by_trhd = {r.trhd: r for r in rows}
    for trhd, paper in table10.PAPER.items():
        row = by_trhd[trhd]
        assert row.mirza_bits_per_subarray == paper["mirza_bits"]
        assert row.prac_bits_per_subarray == paper["prac_bits"]
        assert row.area_ratio == pytest.approx(paper["ratio"],
                                               rel=0.05)
    # PRAC's disadvantage grows as thresholds tighten less (counters
    # shrink slower than regions grow).
    assert by_trhd[1000].area_ratio > by_trhd[500].area_ratio > \
        by_trhd[250].area_ratio
    print()
    table10.main()
