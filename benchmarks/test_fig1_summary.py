"""Bench: regenerate Figure 1(c) (the headline summary)."""

import pytest
from bench_common import BENCH_WORKLOADS, counting_scale, once

from repro.experiments import fig1


def test_fig1_summary(benchmark):
    summary = once(benchmark, lambda: fig1.run(
        workloads=BENCH_WORKLOADS, scale=counting_scale()))
    # Headline claims at TRHD=1K: far fewer mitigations than MINT,
    # far less area than PRAC, under 200 bytes of SRAM per bank.
    assert summary.mitigation_reduction > 8
    assert summary.area_reduction == pytest.approx(45.0, rel=0.05)
    assert summary.sram_bytes_per_bank == 196
    print()
    print(f"mitigations vs MINT: {summary.mitigation_reduction:.1f}x "
          f"fewer (paper 28.5x)")
    print(f"area vs PRAC: {summary.area_reduction:.1f}x lower "
          f"(paper 45x)")
    print(f"SRAM/bank: {summary.sram_bytes_per_bank:.0f} B "
          f"(paper 196 B)")
