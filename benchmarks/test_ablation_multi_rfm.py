"""Ablation bench: RFMs per ALERT (Section V-E's '1 RFM per ALERT').

JEDEC's ABO lets the controller issue 1/2/4 RFMs per ALERT.  More RFMs
drain more MIRZA-Q entries per stall (fewer ALERTs) at the cost of a
longer stall each time.  The paper picks 1; this ablation shows why
that is the right default at MIRZA's low ALERT rates.
"""

import dataclasses
import random

from bench_common import once

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import SequentialR2SA
from repro.params import AboTimings, DramGeometry, SystemConfig
from repro.security.attacks import SingleBankHarness

GEOMETRY = DramGeometry(banks_per_subchannel=4, subchannels=2,
                        rows_per_bank=4096, rows_per_subarray=1024,
                        rows_per_ref=16)


def hammer_with_rfms(rfms: int) -> dict:
    abo = AboTimings(rfms_per_alert=rfms)
    system = dataclasses.replace(
        SystemConfig(geometry=GEOMETRY), abo=abo)
    config = MirzaConfig(trhd=0, fth=40, mint_window=4,
                         num_regions=4, queue_entries=4, qth=8)
    tracker = MirzaTracker(config, GEOMETRY, SequentialR2SA(GEOMETRY),
                           random.Random(2))

    class MultiSlotHarness(SingleBankHarness):
        def _service_alert(self, now):
            self._alert_countdown = None
            self._acts_since_alert = 0
            self.alerts += 1
            for _ in range(rfms):
                for row in self.tracker.on_mitigation_slot(
                        now, __import__(
                            "repro.mitigations.base",
                            fromlist=["MitigationSlotSource"]
                        ).MitigationSlotSource.ALERT):
                    self.bank.mitigate(row, self.blast_radius)
                    self.mitigations += 1

    harness = MultiSlotHarness(tracker, system, acts_per_ref=50)
    rows = [100, 200, 300, 400, 500, 600]
    harness.run(iter([rows[i % 6] for i in range(30_000)]))
    stall_time_ns = harness.alerts * abo.total_stall / 1000
    return {"alerts": harness.alerts,
            "mitigations": harness.mitigations,
            "stall_us": stall_time_ns / 1000,
            "max_unmitigated": harness.max_unmitigated}


def test_ablation_rfms_per_alert(benchmark):
    results = once(benchmark, lambda: {
        rfms: hammer_with_rfms(rfms) for rfms in (1, 2, 4)})
    # More RFMs per ALERT -> fewer ALERTs...
    assert results[1]["alerts"] > results[2]["alerts"] \
        >= results[4]["alerts"]
    # ...with the mitigation total roughly conserved.
    assert results[4]["mitigations"] >= \
        0.5 * results[1]["mitigations"]
    # Security never degrades with extra mitigation slots.
    assert results[4]["max_unmitigated"] <= \
        results[1]["max_unmitigated"] + 8
    print()
    for rfms, r in results.items():
        print(f"rfms/alert={rfms}: alerts={r['alerts']:6d} "
              f"mitigations={r['mitigations']:6d} "
              f"stall={r['stall_us']:8.1f}us "
              f"max_unmitigated={r['max_unmitigated']}")
