"""Shared configuration for the benchmark harness.

Benchmarks default to quick settings (3 workloads, deep time scaling)
so the whole suite regenerates every table and figure in minutes.
Override with environment variables for higher fidelity:

    REPRO_BENCH_WORKLOADS=all REPRO_BENCH_SCALE=64 \
        pytest benchmarks/ --benchmark-only

``REPRO_BENCH_SCALE=1`` reproduces the paper's full 32 ms windows
(hours of wall clock in pure Python).
"""

from __future__ import annotations

import os

from repro.params import SimScale

BENCH_WORKLOADS = (
    None if os.environ.get("REPRO_BENCH_WORKLOADS", "") == "all"
    else [w for w in os.environ.get(
        "REPRO_BENCH_WORKLOADS", "cc,tc,mcf").split(",") if w])
"""Workload subset for timed benches (None = the Table IV set)."""


def sim_scale() -> SimScale:
    """Time scale for command-timing simulations (default 512)."""
    return SimScale(int(os.environ.get("REPRO_BENCH_SCALE", "512")))


def counting_scale() -> SimScale:
    """Time scale for activation-counting measurements (default 32)."""
    return SimScale(int(os.environ.get("REPRO_BENCH_CGF_SCALE", "32")))


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
