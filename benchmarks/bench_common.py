"""Shared configuration for the benchmark harness.

Benchmarks default to quick settings (3 workloads, deep time scaling)
so the whole suite regenerates every table and figure in minutes.
Override with environment variables for higher fidelity:

    REPRO_BENCH_WORKLOADS=all REPRO_BENCH_SCALE=64 \
        pytest benchmarks/ --benchmark-only

``REPRO_BENCH_SCALE=1`` reproduces the paper's full 32 ms windows
(hours of wall clock in pure Python).  ``REPRO_BENCH_JOBS=N`` fans the
benched sweeps out over N worker processes through a shared
:class:`~repro.sim.session.SimSession` (disk cache off, so the timing
measures real simulation work).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.params import SimScale
from repro.sim.session import SimSession

BENCH_WORKLOADS = (
    None if os.environ.get("REPRO_BENCH_WORKLOADS", "") == "all"
    else [w for w in os.environ.get(
        "REPRO_BENCH_WORKLOADS", "cc,tc,mcf").split(",") if w])
"""Workload subset for timed benches (None = the Table IV set)."""


def sim_scale() -> SimScale:
    """Time scale for command-timing simulations (default 512)."""
    return SimScale(int(os.environ.get("REPRO_BENCH_SCALE", "512")))


def counting_scale() -> SimScale:
    """Time scale for activation-counting measurements (default 32)."""
    return SimScale(int(os.environ.get("REPRO_BENCH_CGF_SCALE", "32")))


def bench_jobs() -> int:
    """Worker processes for benched sweeps (REPRO_BENCH_JOBS, def 1)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


_BENCH_SESSION: Optional[SimSession] = None


def bench_session() -> SimSession:
    """The shared benchmark session: disk cache disabled (timings must
    measure simulation, not cache hits), ``REPRO_BENCH_JOBS`` workers.

    The in-memory cache is cleared on every call so repeated bench
    rounds re-run the actual work.
    """
    global _BENCH_SESSION
    if _BENCH_SESSION is None:
        _BENCH_SESSION = SimSession(disk_cache=False,
                                    max_workers=bench_jobs())
    _BENCH_SESSION.clear()
    return _BENCH_SESSION


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
