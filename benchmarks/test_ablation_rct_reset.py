"""Ablation bench: safe vs eager vs lazy RCT reset (Appendix B).

Drives the Appendix B attack timing against all three reset policies
and shows the unmitigated-ACT gap: eager and lazy leak ~2x FTH while
the safe (RRC) policy exposes the second batch to MINT.
"""

import random

from bench_common import once

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.core.rct import ResetPolicy
from repro.dram.mapping import SequentialR2SA
from repro.params import DramGeometry, SystemConfig
from repro.security.attacks import SingleBankHarness

GEOMETRY = DramGeometry(banks_per_subchannel=4, subchannels=2,
                        rows_per_bank=4096, rows_per_subarray=1024,
                        rows_per_ref=16)
FTH = 200


def attack_policy(policy: ResetPolicy) -> dict:
    config = MirzaConfig(trhd=0, fth=FTH, mint_window=4,
                         num_regions=4, queue_entries=4, qth=8)
    tracker = MirzaTracker(config, GEOMETRY, SequentialR2SA(GEOMETRY),
                           random.Random(0), reset_policy=policy)
    # REF cadence chosen so the whole first batch lands before the
    # region's sweep begins (FTH - 1 < acts_per_ref).
    harness = SingleBankHarness(tracker,
                                SystemConfig(geometry=GEOMETRY),
                                acts_per_ref=FTH + 50)
    target, pad = 1023, 2048
    # Batch 1: just before the region's sweep begins.
    for _ in range(FTH - 1):
        harness.activate(target)
    while harness.refresh.refptr == 0:
        harness.activate(pad)
    # Batch 2: while the sweep is in flight (the target row, last in
    # the region, is refreshed at the sweep's end).
    for _ in range(FTH - 1):
        harness.activate(target)
    return {
        "escaped": tracker.rct.escaped_acts,
        "unmitigated": harness.bank.oracle.count(target),
    }


def test_ablation_rct_reset(benchmark):
    results = once(benchmark, lambda: {
        policy.value: attack_policy(policy) for policy in ResetPolicy})
    # Eager reset: the attack is entirely filtered, 2*(FTH-1) leak.
    assert results["eager"]["escaped"] == 0
    assert results["eager"]["unmitigated"] == 2 * (FTH - 1)
    # Safe reset: the RRC exposes the second batch to MINT.
    assert results["safe"]["escaped"] > 0
    assert results["safe"]["unmitigated"] < \
        results["eager"]["unmitigated"]
    print()
    for policy, r in results.items():
        print(f"{policy:5s}: escaped={r['escaped']:4d} "
              f"unmitigated={r['unmitigated']}")
