"""Bench: regenerate Figure 6 (benign vs worst-case ACT density)."""

import pytest
from bench_common import BENCH_WORKLOADS, counting_scale, once

from repro.experiments import fig6
from repro.workloads.specs import workload_by_name


def test_fig6_acts_per_subarray(benchmark):
    result = once(benchmark, lambda: fig6.run(
        workloads=BENCH_WORKLOADS, scale=counting_scale()))
    # Benign workloads sit orders of magnitude below the worst case.
    assert result.worst_case == pytest.approx(621_000, rel=0.05)
    assert result.divergence > 100
    for name, value in result.per_workload.items():
        paper = workload_by_name(name).acts_per_subarray_mean
        assert value == pytest.approx(paper, rel=0.4)
    print()
    fmt = ", ".join(f"{n}={v:.0f}" for n, v in
                    result.per_workload.items())
    print(f"ACTs/subarray/tREFW: {fmt}; worst case "
          f"{result.worst_case:,} ({result.divergence:.0f}x avg, "
          f"paper ~423x)")
