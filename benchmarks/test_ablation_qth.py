"""Ablation bench: Queue Tardiness Threshold (QTH) and queue size.

QTH bounds how long a queued row can keep absorbing activations before
an ALERT is forced (Phase C of the security budget); the queue size
bounds how many banks an ALERT can serve.  Sweeping both shows the
trade: bigger QTH -> fewer ALERTs but a bigger unmitigated budget.
"""

import random

from bench_common import once

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import SequentialR2SA
from repro.params import DramGeometry, SystemConfig
from repro.security.attacks import SingleBankHarness

GEOMETRY = DramGeometry(banks_per_subchannel=4, subchannels=2,
                        rows_per_bank=4096, rows_per_subarray=1024,
                        rows_per_ref=16)


def hammer_with(qth: int, queue_entries: int = 4) -> dict:
    config = MirzaConfig(trhd=0, fth=40, mint_window=4,
                         num_regions=4, queue_entries=queue_entries,
                         qth=qth)
    tracker = MirzaTracker(config, GEOMETRY, SequentialR2SA(GEOMETRY),
                           random.Random(1))
    harness = SingleBankHarness(tracker,
                                SystemConfig(geometry=GEOMETRY),
                                acts_per_ref=50)
    harness.run(iter([777] * 30_000))
    return {"alerts": harness.alerts,
            "max_unmitigated": harness.max_unmitigated}


def test_ablation_qth(benchmark):
    results = once(benchmark, lambda: {
        qth: hammer_with(qth) for qth in (4, 16, 64)})
    # A larger QTH defers ALERTs (fewer of them) at the cost of a
    # larger worst-case unmitigated count.
    assert results[4]["alerts"] > results[64]["alerts"]
    assert results[4]["max_unmitigated"] <= \
        results[64]["max_unmitigated"]
    print()
    for qth, r in results.items():
        print(f"QTH={qth:3d}: alerts={r['alerts']:6d} "
              f"max_unmitigated={r['max_unmitigated']}")
