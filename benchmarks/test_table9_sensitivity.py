"""Bench: regenerate Table IX (FTH vs MINT-W sensitivity)."""

from bench_common import BENCH_WORKLOADS, once, sim_scale

from repro.experiments import table9


def test_table9_sensitivity(benchmark):
    rows = once(benchmark, lambda: table9.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale(),
        points=((4, 1820), (12, 1500), (16, 1350))))
    by_window = {r.mint_window: r for r in rows}
    # Lower FTH (bigger window) leaves more ACTs unfiltered.
    assert by_window[16].remaining_acts_pct > \
        by_window[4].remaining_acts_pct
    # SRAM stays constant across the sweep (same counter width).
    assert len({r.sram_bytes for r in rows}) == 1
    # Every point stays far cheaper than PRAC's 6.5%.
    assert all(r.slowdown_pct < 4.0 for r in rows)
    print()
    for r in rows:
        print(f"W={r.mint_window} FTH={r.fth}: slowdown "
              f"{r.slowdown_pct:.2f}% "
              f"(paper {table9.PAPER_SLOWDOWN[r.mint_window]}%), "
              f"remaining {r.remaining_acts_pct:.2f}% "
              f"(paper {table9.PAPER_REMAINING[r.mint_window]}%)")
