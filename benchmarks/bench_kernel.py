#!/usr/bin/env python
"""Simulation-kernel microbenchmarks: serial ``simulate()`` throughput.

Times the pure compute kernel (no session, no cache, no worker pool)
for the four representative setups -- unprotected baseline, PRAC+ABO,
proactive MINT+RFM, and MIRZA -- and reports served requests per
wall-clock second.  Results are written to ``BENCH_kernel.json`` so
CI (and future optimization passes) can gate on throughput:

    PYTHONPATH=src python benchmarks/bench_kernel.py
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke
    PYTHONPATH=src python benchmarks/bench_kernel.py \
        --backends event,array --check BENCH_kernel.json

``--backends`` benches each cell under every named kernel backend
(see ``repro.sim.backend``).  The ``event`` backend keeps the plain
``workload/setup`` keys; other backends append ``@<name>``
(``tc/mirza-1000@array``), and whenever an event twin was benched in
the same run the two cells' request/activation counts are
cross-checked -- backends are bit-identical by contract, so a mismatch
fails the run regardless of ``--check``.  Cells with an event twin are
also stamped with ``speedup_vs_event`` (requests/sec ratio), and a
per-cell summary table is printed at the end of the run.

``--check FILE`` compares against a previous run and exits non-zero
when any setup's requests/sec regressed by more than ``--tolerance``
(default 25%).  Absolute numbers are machine-dependent; the gate is a
ratio on the same machine, which is why CI checks its own fresh run of
the committed reference only for *relative* regressions.

The calibration sweep is warmed (and cached) before timing starts, so
the numbers measure ``simulate()`` itself, best of ``--rounds`` runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from datetime import datetime, timezone
from time import perf_counter
from typing import Dict, List, Optional

from repro.params import SimScale
from repro.sim.registry import setup_by_name
from repro.sim.runner import calibrated_workload, simulate

SETUPS = ("baseline", "prac-1000", "mint-rfm-1000", "mirza-1000")
WORKLOADS = ("tc", "mcf")


def git_commit() -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout.

    Called exactly once per run (from :func:`main`, never a timed
    loop); the subprocess cost is irrelevant there.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def iso_timestamp() -> str:
    """Current UTC time as an ISO-8601 string (seconds precision)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def bench_one(workload: str, setup_name: str, scale: SimScale,
              seed: int, rounds: int,
              backend: str = "event") -> Dict[str, float]:
    """Best-of-``rounds`` serial simulate() timing for one cell."""
    setup = setup_by_name(setup_name)
    # Warm the calibration cache: simulate() reuses it, so the timed
    # region measures the kernel, not the calibration probes.
    calibrated_workload(workload, scale, seed)
    # The event backend never passes the keyword, so this script also
    # runs against library trees that predate simulate(backend=...) --
    # CI's A/B step times the *base* tree with the *head* script.
    kwargs = {} if backend == "event" else {"backend": backend}
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = perf_counter()
        result = simulate(workload, setup, scale, seed=seed, **kwargs)
        best = min(best, perf_counter() - t0)
    return {
        "seconds": round(best, 4),
        "requests": result.total_requests,
        "activations": result.total_activations,
        "requests_per_sec": round(result.total_requests / best, 1),
        "activations_per_sec": round(result.total_activations / best, 1),
    }


def cell_key(workload: str, setup_name: str, backend: str) -> str:
    """Result key for one cell; non-event backends get an @ suffix."""
    key = f"{workload}/{setup_name}"
    return key if backend == "event" else f"{key}@{backend}"


def run_suite(scale: SimScale, seed: int, rounds: int,
              workloads: List[str],
              backends: List[str]) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        for setup_name in SETUPS:
            for backend in backends:
                key = cell_key(workload, setup_name, backend)
                cell = bench_one(workload, setup_name, scale, seed,
                                 rounds, backend)
                results[key] = cell
                print(f"{key:<30} {cell['seconds']:8.3f}s "
                      f"{cell['requests_per_sec']:>12,.0f} req/s "
                      f"{cell['activations_per_sec']:>12,.0f} act/s",
                      file=sys.stderr)
    return results


TRACE_FIXTURE = "tests/fixtures/tc.dramsim3"
TRACE_SETUP = "mirza-1000"


def bench_trace_cells(scale: SimScale, seed: int, rounds: int,
                      backends: List[str],
                      results: Dict[str, Dict[str, float]]) -> None:
    """Bench an ingested-trace replay cell per backend, in place.

    Converts the checked-in DRAMSim3 fixture once, then times
    ``simulate_trace`` replaying it under ``TRACE_SETUP``.  Cells are
    keyed ``trace:tc/<setup>`` so the speedup and bit-identity
    machinery treats them like any other cell.  Import failures skip
    the cells instead of failing: CI's A/B step runs this script
    against the *base* library tree, which may predate ingestion.
    """
    import os
    import tempfile
    try:
        from repro.sim.runner import simulate_trace
        from repro.workloads.tracefile import convert_trace
    except ImportError:
        print("trace cells skipped (library predates trace "
              "ingestion)", file=sys.stderr)
        return
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, *TRACE_FIXTURE.split("/"))
    if not os.path.isfile(fixture):
        print(f"trace cells skipped ({TRACE_FIXTURE} not found)",
              file=sys.stderr)
        return
    setup = setup_by_name(TRACE_SETUP, scale)
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "tc.trace")
        convert_trace(fixture, trace, workload="tc", instructions=11)
        for backend in backends:
            key = cell_key("trace:tc", TRACE_SETUP, backend)
            best = float("inf")
            result = None
            for _ in range(rounds):
                t0 = perf_counter()
                result = simulate_trace(trace, setup, scale,
                                        seed=seed, backend=backend)
                best = min(best, perf_counter() - t0)
            cell = {
                "seconds": round(best, 4),
                "requests": result.total_requests,
                "activations": result.total_activations,
                "requests_per_sec":
                    round(result.total_requests / best, 1),
                "activations_per_sec":
                    round(result.total_activations / best, 1),
            }
            results[key] = cell
            print(f"{key:<30} {cell['seconds']:8.3f}s "
                  f"{cell['requests_per_sec']:>12,.0f} req/s "
                  f"{cell['activations_per_sec']:>12,.0f} act/s",
                  file=sys.stderr)


def annotate_speedups(results: Dict[str, Dict[str, float]]) -> None:
    """Stamp each cell with ``speedup_vs_event`` (1.0 for event cells).

    The ratio is requests/sec against the cell's event twin from the
    same run; cells without a twin (event not benched) are left
    unstamped.
    """
    for key, cell in results.items():
        twin = results.get(key.split("@", 1)[0])
        if twin is None or not twin.get("requests_per_sec"):
            continue
        cell["speedup_vs_event"] = round(
            cell["requests_per_sec"] / twin["requests_per_sec"], 2)


def print_speedup_table(results: Dict[str, Dict[str, float]]) -> None:
    """End-of-run summary: one row per cell, speedup vs event twin."""
    print("", file=sys.stderr)
    header = (f"{'cell':<32} {'seconds':>9} {'req/s':>14} "
              f"{'vs event':>9}")
    print(header, file=sys.stderr)
    print("-" * len(header), file=sys.stderr)
    for key in sorted(results):
        cell = results[key]
        speedup = cell.get("speedup_vs_event")
        vs_event = f"{speedup:.2f}x" if speedup is not None else "-"
        print(f"{key:<32} {cell['seconds']:>8.3f}s "
              f"{cell['requests_per_sec']:>14,.0f} {vs_event:>9}",
              file=sys.stderr)


def check_backend_identity(results: Dict[str, Dict[str, float]]
                           ) -> List[str]:
    """Cross-check every ``key@backend`` cell against its event twin.

    Kernel backends must be bit-identical; served requests and issued
    activations are the cheapest observables to compare from a bench
    cell (the test suite pins the full result-field set).
    """
    mismatches: List[str] = []
    for key, cell in results.items():
        if "@" not in key:
            continue
        twin = results.get(key.split("@", 1)[0])
        if twin is None:
            continue
        if (cell["requests"], cell["activations"]) != (
                twin["requests"], twin["activations"]):
            mismatches.append(
                f"{key}: requests/activations "
                f"{cell['requests']}/{cell['activations']} != event "
                f"twin {twin['requests']}/{twin['activations']}")
    return mismatches


def apply_reference(results: Dict[str, Dict[str, float]],
                    reference_path: str,
                    tolerance: float) -> List[str]:
    """Annotate ``results`` with speedups vs a previous run; return the
    list of cells that regressed beyond ``tolerance``."""
    with open(reference_path) as handle:
        reference = json.load(handle)
    ref_results = reference.get("results", reference)
    regressions: List[str] = []
    for key, cell in results.items():
        ref_cell = ref_results.get(key)
        if not ref_cell:
            continue
        ref_rps = ref_cell.get("requests_per_sec")
        if not ref_rps:
            continue
        speedup = cell["requests_per_sec"] / ref_rps
        cell["reference_requests_per_sec"] = ref_rps
        cell["speedup_vs_reference"] = round(speedup, 2)
        if speedup < 1.0 - tolerance:
            regressions.append(
                f"{key}: {cell['requests_per_sec']:,.0f} req/s vs "
                f"reference {ref_rps:,.0f} req/s "
                f"({100 * (1 - speedup):.0f}% slower)")
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_kernel.json",
                        help="result file (default: BENCH_kernel.json)")
    parser.add_argument("--time-scale", type=int, default=512,
                        metavar="S",
                        help="window divisor (default: 512)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed rounds per cell, best kept "
                             "(default: 3)")
    parser.add_argument("--workloads", default=",".join(WORKLOADS),
                        metavar="A,B,...")
    parser.add_argument("--backends", default="event",
                        metavar="A,B,...",
                        help="kernel backends to bench each cell under "
                             "(default: event); non-event cells are "
                             "keyed workload/setup@backend and "
                             "cross-checked for bit-identity against "
                             "their event twins")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny windows and one round -- seconds of "
                             "wall clock, for CI smoke checks")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="compare requests/sec against a previous "
                             "result file; non-zero exit on regression")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional req/s regression for "
                             "--check (default: 0.25)")
    parser.add_argument("--commit", default=None, metavar="SHA",
                        help="commit hash to stamp into the result "
                             "meta (default: `git rev-parse HEAD`, or "
                             "'unknown' outside a checkout)")
    parser.add_argument("--timestamp", default=None, metavar="ISO",
                        help="ISO-8601 timestamp to stamp into the "
                             "result meta (default: current UTC time)")
    args = parser.parse_args(argv)

    time_scale = 4096 if args.smoke else args.time_scale
    # Smoke cells run in milliseconds; best-of-2 damps runner noise
    # enough for a 25% gate.
    rounds = 2 if args.smoke else args.rounds
    scale = SimScale(time_scale)
    workloads = [w for w in args.workloads.split(",") if w]
    backends = [b for b in args.backends.split(",") if b]

    results = run_suite(scale, args.seed, rounds, workloads, backends)
    bench_trace_cells(scale, args.seed, rounds, backends, results)
    annotate_speedups(results)
    mismatches = check_backend_identity(results)
    payload = {
        "meta": {
            "time_scale": time_scale,
            "seed": args.seed,
            "rounds": rounds,
            "smoke": args.smoke,
            "backends": backends,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "commit": args.commit or git_commit(),
            "timestamp": args.timestamp or iso_timestamp(),
        },
        "results": results,
    }

    regressions: List[str] = []
    if args.check:
        regressions = apply_reference(results, args.check,
                                      args.tolerance)

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print_speedup_table(results)
    print(f"wrote {args.output}", file=sys.stderr)

    if mismatches:
        print("BACKEND IDENTITY VIOLATION:", file=sys.stderr)
        for line in mismatches:
            print(f"  {line}", file=sys.stderr)
        return 1
    if regressions:
        print("THROUGHPUT REGRESSION:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
