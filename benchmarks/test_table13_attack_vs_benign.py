"""Bench: regenerate Table XIII (average vs worst-case slowdown)."""

from bench_common import BENCH_WORKLOADS, once, sim_scale

from repro.experiments import table13


def test_table13_attack_vs_benign(benchmark):
    rows = once(benchmark, lambda: table13.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale()))
    by_key = {(r.trhd, r.tracker): r for r in rows}
    for trhd in (500, 1000, 2000):
        mirza = by_key[(trhd, "MIRZA")]
        prac = by_key[(trhd, "PRAC+ABO")]
        mint = by_key[(trhd, "MINT+RFM")]
        # MIRZA wins the average case...
        assert mirza.average_slowdown_pct < prac.average_slowdown_pct
        assert mirza.average_slowdown_pct < mint.average_slowdown_pct
        # ...and pays for it with the worst attack-case slowdown.
        assert mirza.attack_slowdown_x > prac.attack_slowdown_x
        # But stays within contention-attack territory (< 3x).
        assert mirza.attack_slowdown_x < 3.0
    print()
    for r in rows:
        paper = table13.PAPER[(r.trhd, r.tracker)]
        print(f"TRHD={r.trhd} {r.tracker:9s}: attack "
              f"{r.attack_slowdown_x:.2f}x (paper {paper[0]}x), "
              f"avg {r.average_slowdown_pct:.2f}% (paper {paper[1]}%)")
