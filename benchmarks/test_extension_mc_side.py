"""Extension bench: MC-side DRFM (MIST-style) vs in-DRAM MIRZA.

Section X positions DREAM/MIST as the MC-side alternatives: DRFM
mitigates a sampled aggressor across banks in parallel without the
in-DRAM tracker.  This bench runs both on the same workloads and
compares the cost profile -- DRFM pays in per-command stalls like RFM,
MIRZA pays (almost) nothing thanks to filtering.
"""

from bench_common import BENCH_WORKLOADS, once, sim_scale

from repro.sim.runner import mirza_setup, mist_setup, slowdown_for
from repro.sim.stats import mean


def run_comparison():
    scale = sim_scale()
    workloads = BENCH_WORKLOADS or ["cc", "tc", "mcf"]
    out = {"mist": {}, "mirza": {}}
    for name in workloads:
        sd, result = slowdown_for(name, mist_setup(1000), scale)
        out["mist"][name] = {
            "slowdown": sd, "mitigations": result.mitigations,
            "max_unmitigated": result.max_unmitigated_acts}
        sd, result = slowdown_for(name, mirza_setup(1000, scale),
                                  scale)
        out["mirza"][name] = {
            "slowdown": sd, "mitigations": result.mitigations,
            "max_unmitigated": result.max_unmitigated_acts}
    return out


def test_mc_side_drfm_vs_mirza(benchmark):
    results = once(benchmark, run_comparison)
    mist_mitig = mean(r["mitigations"]
                      for r in results["mist"].values())
    mirza_mitig = mean(r["mitigations"]
                       for r in results["mirza"].values())
    # Proactive DRFM mitigates far more often than filtered MIRZA.
    assert mist_mitig > mirza_mitig
    # Both keep benign traffic's worst row counts low.
    for scheme in ("mist", "mirza"):
        for r in results[scheme].values():
            assert r["max_unmitigated"] < 5000
    print()
    for scheme in ("mist", "mirza"):
        for name, r in results[scheme].items():
            print(f"{scheme:5s} {name:10s} slowdown={r['slowdown']:6.2f}% "
                  f"mitigations={r['mitigations']:6d} "
                  f"max_unmit={r['max_unmitigated']}")
