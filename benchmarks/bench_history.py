#!/usr/bin/env python
"""Benchmark history: append kernel-bench runs, trend them, gate CI.

``bench_kernel.py`` measures one run; this script gives those runs a
memory.  Each invocation with ``--input`` folds a ``BENCH_kernel.json``
payload into a JSON-lines history file (one run per line, stamped with
the git commit, an ISO timestamp, and the machine meta), prints a
per-cell trend table over the trailing window, and renders a
regression verdict: the newest run's requests/sec per cell against the
*median of the prior runs* for that cell.

    PYTHONPATH=src python benchmarks/bench_history.py \
        --input BENCH_kernel.json --append
    PYTHONPATH=src python benchmarks/bench_history.py --check
    PYTHONPATH=src python benchmarks/bench_history.py \
        --check --history benchmarks/BENCH_history.seed.jsonl

``--append`` persists the new entry; without it the input run is only
evaluated in memory.  ``--check`` exits non-zero when any cell's
newest requests/sec fell more than ``--tolerance`` (default 25%) below
its trailing median.  Absolute numbers are machine-dependent, so the
gate only compares entries recorded on the *same machine string*; a
history mixing machines trends each lineage separately.
"""

from __future__ import annotations

import argparse
import json
import sys
from statistics import median
from typing import Dict, List, Optional

HISTORY_DEFAULT = "BENCH_history.jsonl"

META_KEYS = ("time_scale", "smoke", "backends", "python", "machine")
"""Meta fields carried from the bench payload into a history entry."""


def entry_from_payload(payload: Dict,
                       commit: Optional[str] = None,
                       timestamp: Optional[str] = None) -> Dict:
    """One history line from a ``BENCH_kernel.json`` payload.

    Results shrink to the trend metric (requests/sec per cell); the
    commit and timestamp default to the stamps ``bench_kernel.py``
    wrote into the payload meta.
    """
    meta = payload.get("meta", {})
    results = payload.get("results", {})
    cells = {key: cell["requests_per_sec"]
             for key, cell in sorted(results.items())
             if isinstance(cell, dict)
             and cell.get("requests_per_sec")}
    if not cells:
        raise ValueError("bench payload has no requests_per_sec cells")
    return {
        "commit": commit or meta.get("commit", "unknown"),
        "timestamp": timestamp or meta.get("timestamp", "unknown"),
        "meta": {key: meta.get(key) for key in META_KEYS},
        "results": cells,
    }


def load_history(path: str) -> List[Dict]:
    """Parse a JSONL history file; a malformed line is a hard error
    (the file is append-only and machine-written, so damage means the
    gate cannot be trusted)."""
    entries: List[Dict] = []
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        return entries
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as error:
            raise ValueError(
                f"{path}:{number}: malformed history line "
                f"({error})") from error
        if not isinstance(entry, dict) or "results" not in entry:
            raise ValueError(
                f"{path}:{number}: history line lacks a results map")
        entries.append(entry)
    return entries


def append_entry(path: str, entry: Dict) -> None:
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def _same_machine(entry: Dict, reference: Dict) -> bool:
    return entry.get("meta", {}).get("machine") == \
        reference.get("meta", {}).get("machine")


def evaluate(history: List[Dict],
             tolerance: float) -> List[str]:
    """Regressions in the newest entry vs the trailing median.

    Per cell: the last entry's requests/sec against the median of
    every *prior* same-machine entry that measured the cell.  Cells
    with no prior measurement pass (there is nothing to regress
    against), as does a history with fewer than two entries.
    """
    if len(history) < 2:
        return []
    newest = history[-1]
    regressions: List[str] = []
    for cell, rps in sorted(newest.get("results", {}).items()):
        prior = [entry["results"][cell] for entry in history[:-1]
                 if cell in entry.get("results", {})
                 and _same_machine(entry, newest)]
        if not prior or not rps:
            continue
        baseline = median(prior)
        if baseline <= 0:
            continue
        ratio = rps / baseline
        if ratio < 1.0 - tolerance:
            regressions.append(
                f"{cell}: {rps:,.0f} req/s vs trailing median "
                f"{baseline:,.0f} req/s "
                f"({100 * (1 - ratio):.0f}% slower)")
    return regressions


def trend_table(history: List[Dict], window: int = 8) -> str:
    """Per-cell trend over the trailing ``window`` entries.

    One row per cell: the recent requests/sec sequence (oldest first)
    and the last run's delta vs the median of the runs before it.
    """
    recent = history[-window:]
    if not recent:
        return "(empty history)"
    cells = sorted({cell for entry in recent
                    for cell in entry.get("results", {})})
    label = "  ".join(
        entry.get("commit", "?")[:7] or "?" for entry in recent)
    lines = [f"{'cell':<32} {'trend (req/s, oldest first)'}",
             f"{'':<32} commits: {label}"]
    for cell in cells:
        values = [entry.get("results", {}).get(cell)
                  for entry in recent]
        rendered = "  ".join(
            f"{v:,.0f}" if v else "-" for v in values)
        present = [v for v in values[:-1] if v]
        last = values[-1]
        if present and last:
            delta = 100.0 * (last / median(present) - 1.0)
            rendered += f"  ({delta:+.0f}% vs median)"
        lines.append(f"{cell:<32} {rendered}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--input", default=None, metavar="FILE",
                        help="BENCH_kernel.json payload to fold into "
                             "the history (evaluated in memory unless "
                             "--append)")
    parser.add_argument("--history", default=HISTORY_DEFAULT,
                        metavar="FILE",
                        help=f"JSONL history file (default: "
                             f"{HISTORY_DEFAULT})")
    parser.add_argument("--append", action="store_true",
                        help="persist the --input run to the history "
                             "file")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when the newest entry "
                             "regressed vs its trailing median")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional req/s regression "
                             "(default: 0.25)")
    parser.add_argument("--window", type=int, default=8,
                        help="entries shown in the trend table "
                             "(default: 8)")
    parser.add_argument("--commit", default=None, metavar="SHA",
                        help="override the commit stamped on the "
                             "--input entry")
    parser.add_argument("--timestamp", default=None, metavar="ISO",
                        help="override the timestamp stamped on the "
                             "--input entry")
    args = parser.parse_args(argv)

    try:
        history = load_history(args.history)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.input:
        try:
            with open(args.input) as handle:
                payload = json.load(handle)
            entry = entry_from_payload(payload, commit=args.commit,
                                       timestamp=args.timestamp)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        history.append(entry)
        if args.append:
            append_entry(args.history, entry)
            print(f"appended {entry['commit'][:12]} to "
                  f"{args.history} ({len(history)} entries)",
                  file=sys.stderr)
    elif not history:
        print(f"error: {args.history} is empty and no --input was "
              f"given", file=sys.stderr)
        return 2

    print(trend_table(history, window=args.window))
    regressions = evaluate(history, args.tolerance)
    if regressions:
        print("THROUGHPUT REGRESSION:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1 if args.check else 0
    print(f"verdict: OK -- no cell regressed more than "
          f"{args.tolerance:.0%} vs its trailing median "
          f"({len(history)} entries)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
