"""Bench: regenerate Table V (Naive MIRZA vs queue size)."""

from bench_common import BENCH_WORKLOADS, bench_session, once, \
    sim_scale

from repro.experiments import table5


def test_table5_naive_mirza(benchmark):
    result = once(benchmark, lambda: table5.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale(),
        windows=(24, 48, 96), queue_sizes=(1, 2, 4),
        session=bench_session()))
    # Shape 1: a single-entry queue is catastrophic; buffering helps.
    for window in (24, 48, 96):
        assert result.slowdown[(window, 1)] > \
            result.slowdown[(window, 4)]
    # Shape 2: wider MINT windows mean fewer ALERTs and less slowdown.
    assert result.slowdown[(24, 4)] >= result.slowdown[(96, 4)]
    # Shape 3: even the best naive config stays RFM-like (non-trivial).
    assert result.slowdown[(24, 4)] > 0.5
    print()
    for (window, q), value in sorted(result.slowdown.items()):
        paper = table5.PAPER.get((window, q))
        print(f"W={window} Q={q}: {value:.2f}% (paper {paper}%)")
