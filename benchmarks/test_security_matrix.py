"""Bench: the full tracker-vs-attack security matrix.

Beyond the paper's own exhibits: every implemented defence is driven
by every attack pattern in the library, with the ground-truth oracle
as judge.  The matrix documents the security story in one place --
TRR is the only tracker that breaks, and it breaks exactly the way
Section X describes.
"""

import random

from bench_common import once

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import SequentialR2SA
from repro.mitigations.hydra import HydraTracker
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.mithril import MithrilTracker
from repro.mitigations.prac import PracTracker
from repro.mitigations.pride import PrideTracker
from repro.mitigations.protrr import ProTrrTracker
from repro.mitigations.qprac import QpracTracker
from repro.mitigations.trr import TrrTracker
from repro.params import DramGeometry, SystemConfig
from repro.security.attacks import SingleBankHarness
from repro.workloads.attacks import (
    double_sided_attack_stream,
    feinting_attack_stream,
    trr_evasion_pattern,
)

GEOMETRY = DramGeometry(banks_per_subchannel=2, subchannels=1,
                        rows_per_bank=4096, rows_per_subarray=1024,
                        rows_per_ref=16)
CONFIG = SystemConfig(geometry=GEOMETRY)
TRH = 260
ACTS = 60_000


def trackers():
    mapping = SequentialR2SA(GEOMETRY)
    return {
        "mirza": lambda: MirzaTracker(
            MirzaConfig(trhd=TRH, fth=80, mint_window=4,
                        num_regions=4, qth=8),
            GEOMETRY, mapping, random.Random(3)),
        "prac": lambda: PracTracker(trhd=TRH),
        "qprac": lambda: QpracTracker(trhd=TRH),
        # MINT's window must match its mitigation cadence (one
        # selection per REF slot), so it gets its own REF pacing below.
        "mint": lambda: MintTracker(window=12, refs_per_mitigation=1,
                                    rng=random.Random(4)),
        "pride": lambda: PrideTracker(insertion_probability=1 / 8,
                                      queue_entries=8,
                                      rng=random.Random(5)),
        "mithril": lambda: MithrilTracker(entries=64,
                                          refs_per_mitigation=1),
        "protrr": lambda: ProTrrTracker(entries=64,
                                        refs_per_mitigation=1),
        "hydra": lambda: HydraTracker(rows_per_bank=4096,
                                      rows_per_group=64,
                                      group_threshold=60,
                                      mitigation_threshold=TRH // 2),
        "trr": lambda: TrrTracker(entries=8, refs_per_mitigation=4),
    }


def attacks():
    mapping = SequentialR2SA(GEOMETRY)
    return {
        "focused": lambda: iter([777] * ACTS),
        "double-sided": lambda: double_sided_attack_stream(
            500, mapping, ACTS),
        "feinting": lambda: feinting_attack_stream(64, ACTS),
        "evasion": lambda: trr_evasion_pattern(8, 900, ACTS, seed=7),
    }


def run_matrix():
    results = {}
    for tracker_name, make_tracker in trackers().items():
        for attack_name, make_attack in attacks().items():
            acts_per_ref = 12 if tracker_name == "mint" else 50
            harness = SingleBankHarness(make_tracker(), CONFIG,
                                        acts_per_ref=acts_per_ref)
            harness.run(make_attack())
            results[(tracker_name, attack_name)] = \
                harness.max_unmitigated
    return results


def test_security_matrix(benchmark):
    results = once(benchmark, run_matrix)
    secure = ("mirza", "prac", "qprac", "mint", "mithril", "protrr",
              "hydra")
    # Every principled tracker bounds every attack at this threshold.
    for tracker in secure:
        for attack in ("focused", "double-sided", "evasion"):
            assert results[(tracker, attack)] <= TRH, (tracker, attack)
    # TRR is broken by its eviction pattern -- and ONLY TRR is.
    assert results[("trr", "evasion")] > TRH
    print()
    attacks_order = ["focused", "double-sided", "feinting", "evasion"]
    header = f"{'tracker':9s} " + " ".join(
        f"{a:>13s}" for a in attacks_order)
    print(header)
    for tracker in list(trackers()):
        row = " ".join(f"{results[(tracker, a)]:13d}"
                       for a in attacks_order)
        print(f"{tracker:9s} {row}")
