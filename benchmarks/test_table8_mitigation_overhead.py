"""Bench: regenerate Table VIII (mitigation overhead MINT vs MIRZA)."""

from bench_common import BENCH_WORKLOADS, counting_scale, once

from repro.experiments import table8


def test_table8_mitigation_overhead(benchmark):
    rows = once(benchmark, lambda: table8.run(
        workloads=BENCH_WORKLOADS, scale=counting_scale()))
    by_trhd = {r.trhd: r for r in rows}
    # MIRZA always mitigates far less often than MINT, and the gap
    # widens as the threshold relaxes (10x -> 28.5x -> 125x in the
    # paper).
    assert by_trhd[500].reduction > 1.5
    assert by_trhd[1000].reduction > 8
    assert by_trhd[2000].reduction > 25
    assert by_trhd[2000].reduction > by_trhd[1000].reduction > \
        by_trhd[500].reduction
    # Escape probabilities are small: filtering does the heavy lifting.
    assert by_trhd[1000].escape_probability < 0.05
    print()
    for r in rows:
        paper = table8.PAPER[r.trhd]
        print(f"TRHD={r.trhd}: escape 1/{1 / r.escape_probability:.0f}"
              f" (paper 1/{1 / paper['escape']:.0f}), reduction "
              f"{r.reduction:.0f}x (paper {paper['ratio']}x)")
