"""Bench: regenerate Figure 11(b) (ALERTs per 100 x tREFI)."""

from bench_common import BENCH_WORKLOADS, once, sim_scale

from repro.experiments import fig11


def test_fig11b_alert_rate(benchmark):
    result = once(benchmark, lambda: fig11.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale(),
        thresholds=(500, 1000, 2000)))
    # PRAC triggers essentially no ALERTs at these thresholds: its
    # slowdown is purely timing inflation (the paper's point).
    assert result.prac_alert_rate < 0.01
    # MIRZA raises ALERTs at a low, threshold-dependent rate.
    assert result.mirza_alert_rate[500] >= \
        result.mirza_alert_rate[2000]
    assert result.mirza_alert_rate[1000] < 25.0
    print()
    for trhd in (500, 1000, 2000):
        print(f"MIRZA-{trhd}: "
              f"{result.mirza_alert_rate[trhd]:.2f} ALERTs/100 tREFI"
              + (" (paper 2.16)" if trhd == 1000 else ""))
    print(f"PRAC: {result.prac_alert_rate:.3f} (paper ~0)")
