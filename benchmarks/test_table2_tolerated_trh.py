"""Bench: regenerate Table II (tolerated TRHD vs mitigation rate)."""

import pytest
from bench_common import once

from repro.experiments import table2


def test_table2_tolerated_trh(benchmark):
    rows = once(benchmark, lambda: table2.run(
        mithril_entries=64, feinting_acts=60_000))
    by_rate = {r.refs_per_mitigation: r for r in rows}
    # MINT column within 5% of the paper at every mitigation rate.
    for rate, paper in table2.PAPER.items():
        assert by_rate[rate].mint_trhd == pytest.approx(
            paper["mint"], rel=0.05)
        assert by_rate[rate].cannibalization_pct == pytest.approx(
            paper["cannibalization"], abs=0.5)
    # Mithril's measured worst case grows with the mitigation period
    # and stays below MINT's (fewer entries = weaker tracker here).
    measured = [by_rate[r].mithril_measured for r in (1, 2, 4, 8)]
    assert measured == sorted(measured)
    assert all(m > 0 for m in measured)
    print()
    print(f"MINT TRHD: {[by_rate[r].mint_trhd for r in (1, 2, 4, 8)]}"
          f" (paper: 1.5K/2.9K/5.8K/11.6K)")
    print(f"Mithril-64 measured: {measured}")
