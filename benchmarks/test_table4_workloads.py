"""Bench: regenerate Table IV (workload characteristics)."""

from bench_common import BENCH_WORKLOADS, once, sim_scale

from repro.experiments import table4
from repro.workloads.specs import workload_by_name


def test_table4_workloads(benchmark):
    measurements = once(benchmark, lambda: table4.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale()))
    for name, m in measurements.items():
        spec = workload_by_name(name)
        # The calibrated generator lands near the published ACT rate.
        assert m.acts_per_subarray_mean == \
            __import__("pytest").approx(
                spec.acts_per_subarray_mean, rel=0.4)
        # Ranking of intensity is preserved.
    ordered = sorted(measurements.values(),
                     key=lambda m: m.acts_per_subarray_mean)
    paper_ordered = sorted(
        measurements, key=lambda n: workload_by_name(
            n).acts_per_subarray_mean)
    assert [m.name for m in ordered] == paper_ordered
