"""Bench: regenerate Table VI (CGF vs row-to-subarray mapping).

This doubles as the R2SA-mapping ablation called out in DESIGN.md:
identical activation streams, two mappings, opposite outcomes.
"""

from bench_common import BENCH_WORKLOADS, counting_scale, once

from repro.experiments import table6


def test_table6_cgf(benchmark):
    result = once(benchmark, lambda: table6.run(
        workloads=BENCH_WORKLOADS, scale=counting_scale(),
        fths=(1400, 1500, 1600, 1700)))
    for fth in (1400, 1500, 1600, 1700):
        strided = result.filtered_pct[(fth, "strided")]
        sequential = result.filtered_pct[(fth, "sequential")]
        # The paper's headline: strided filters ~99%, sequential ~5%.
        assert strided > 90.0
        assert sequential < 40.0
        assert strided > sequential + 50.0
    # Filtering strengthens monotonically with FTH.
    assert result.filtered_pct[(1700, "strided")] >= \
        result.filtered_pct[(1400, "strided")]
    print()
    for (fth, mapping), value in sorted(result.filtered_pct.items()):
        print(f"FTH={fth} {mapping:10s}: {value:.2f}% filtered "
              f"(paper {table6.PAPER[(fth, mapping)]}%)")
