"""Bench: regenerate Table XI / Figure 12 (performance attack)."""

import pytest
from bench_common import once

from repro.experiments import table11


def test_table11_perf_attack(benchmark):
    rows = once(benchmark, table11.run)
    by_window = {r.mint_window: r for r in rows}
    for window, (paper_tp, paper_sd) in table11.PAPER.items():
        row = by_window[window]
        assert row.relative_throughput_pct == pytest.approx(
            paper_tp, rel=0.1)
        assert row.slowdown_factor == pytest.approx(paper_sd, rel=0.1)
    # Narrower windows ALERT more often: worse under attack.
    assert by_window[8].slowdown_factor > \
        by_window[12].slowdown_factor > by_window[16].slowdown_factor
    # Comparable to ordinary memory-contention attacks (< 3x).
    assert all(r.slowdown_factor < 3.0 for r in rows)
    print()
    table11.main()


def test_fig12_attack_kernel_primes_the_region(benchmark):
    """The Figure 12 kernel drives a live MIRZA instance into steady
    ALERT cadence: priming is fast and ALERTs are sustained."""
    import random

    from repro.core.config import MirzaConfig
    from repro.core.mirza import MirzaTracker
    from repro.dram.mapping import StridedR2SA
    from repro.params import SystemConfig
    from repro.security.attacks import SingleBankHarness

    def attack():
        system = SystemConfig()
        config = MirzaConfig.paper_config(1000)
        mapping = StridedR2SA(system.geometry)
        tracker = MirzaTracker(config, system.geometry, mapping,
                               random.Random(3))
        harness = SingleBankHarness(tracker, system)
        stride = system.geometry.subarrays_per_bank
        rows = [i * stride for i in range(8)]  # one RCT region
        total = 50_000
        for i in range(total):
            harness.activate(rows[i % 8])
        return harness, config, total

    harness, config, total = once(benchmark, attack)
    priming = config.fth  # ACTs spent before the region saturates
    assert priming / total < 0.05  # <5% of the attack (paper: <1% of
    # tREFW)
    # Steady state: one selection per MINT window; the queue converts
    # between roughly half (selection jitter against a full queue) and
    # all of them into ALERTs.
    selections = (total - priming) / config.mint_window
    assert 0.4 * selections <= harness.alerts <= 1.1 * selections
