"""Bench: regenerate Figure 11(a) (MIRZA vs PRAC slowdown)."""

from bench_common import BENCH_WORKLOADS, bench_session, once, \
    sim_scale

from repro.experiments import fig11


def test_fig11a_performance(benchmark):
    result = once(benchmark, lambda: fig11.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale(),
        session=bench_session()))
    # Headline: MIRZA is far cheaper than PRAC at every threshold.
    for trhd in (500, 1000, 2000):
        assert result.mirza_slowdown[trhd] < result.prac_slowdown
    # MIRZA's slowdown decays as the threshold relaxes.
    assert result.mirza_slowdown[500] >= result.mirza_slowdown[2000]
    # MIRZA at TRHD=1K stays near-free (paper: 0.36%).
    assert result.mirza_slowdown[1000] < 2.5
    print()
    for trhd in (500, 1000, 2000):
        print(f"MIRZA-{trhd}: {result.mirza_slowdown[trhd]:.2f}% "
              f"(paper {fig11.PAPER['mirza_slowdown'][trhd]}%)")
    print(f"PRAC: {result.prac_slowdown:.2f}% (paper 6.5%)")
