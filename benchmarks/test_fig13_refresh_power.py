"""Bench: regenerate Figure 13 (refresh power MINT vs MIRZA)."""

from bench_common import BENCH_WORKLOADS, counting_scale, once

from repro.experiments import fig13


def test_fig13_refresh_power(benchmark):
    result = once(benchmark, lambda: fig13.run(
        workloads=BENCH_WORKLOADS, scale=counting_scale()))
    # MIRZA's victim-refresh energy is a fraction of MINT's.  The gap
    # widens with the threshold (paper: ~10x/28x/125x); at TRHD=500
    # the default heavy-workload subset escapes the (small) FTH more
    # than the 24-workload average, so the bound there is looser.
    assert result.mirza_overhead[500] < result.mint_overhead[500]
    assert result.mirza_overhead[1000] < result.mint_overhead[1000] / 3
    assert result.mirza_overhead[2000] < result.mint_overhead[2000] / 10
    # Overheads shrink with relaxing thresholds for both schemes.
    assert result.mint_overhead[500] > result.mint_overhead[2000]
    # MIRZA at 1K: ~0.3% in the paper; stay below 1.5%.
    assert result.mirza_overhead[1000] < 1.5
    print()
    for trhd in (500, 1000, 2000):
        print(f"TRHD={trhd}: MINT "
              f"{result.mint_overhead[trhd]:.2f}% "
              f"(paper {fig13.PAPER['mint'][trhd]}%), MIRZA "
              f"{result.mirza_overhead[trhd]:.3f}% "
              f"(paper {fig13.PAPER['mirza'][trhd]}%)")
