"""Bench: regenerate Figure 3 (MINT+RFM vs PRAC overheads)."""

from bench_common import BENCH_WORKLOADS, bench_session, once, \
    sim_scale

from repro.experiments import fig3


def test_fig3_rfm_overheads(benchmark):
    result = once(benchmark, lambda: fig3.run(
        workloads=BENCH_WORKLOADS, scale=sim_scale(),
        session=bench_session()))
    # Shape: MINT+RFM overheads shrink as the threshold relaxes.
    assert result.mint_slowdown[500] > result.mint_slowdown[1000] \
        > result.mint_slowdown[2000]
    assert result.mint_refresh_power[500] > \
        result.mint_refresh_power[2000]
    # PRAC pays a roughly threshold-independent timing tax.
    assert result.prac_slowdown > 1.0
    # PRAC performs no mitigations at these thresholds, so its
    # refresh-power overhead is zero by construction (Figure 3).
    print()
    for trhd in (500, 1000, 2000):
        print(f"TRHD={trhd}: MINT+RFM slowdown "
              f"{result.mint_slowdown[trhd]:.2f}% "
              f"(paper {fig3.PAPER['mint_slowdown'][trhd]}%), "
              f"refresh power {result.mint_refresh_power[trhd]:.2f}% "
              f"(paper {fig3.PAPER['mint_refresh_power'][trhd]}%)")
    print(f"PRAC slowdown {result.prac_slowdown:.2f}% (paper 6.5%)")
