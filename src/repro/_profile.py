"""Opt-in kernel profiling: per-phase time and throughput counters.

The simulation kernel is pure Python, so observability must be nearly
free when off and cheap when on.  This module keeps one module-level
:class:`KernelProfile` slot (``_ACTIVE``); the hot paths (the system
run loop, the memory controller's refresh pump, the core's trace
refill, the device's tracker dispatch) read that slot once per
coarse-grained event and accumulate wall time into named phases:

``trace``
    Generating workload trace chunks (synthetic RNG + tuple building).
``serve``
    Total time inside ``MemoryController.serve`` -- command scheduling,
    timing fixpoints, bus booking.  Includes the two sub-phases below.
``refresh``
    Demand-refresh processing: REF blackouts, oracle sweeps, RCT reset
    (a subset of ``serve``).
``trackers``
    Per-activation mitigation-tracker bookkeeping (a subset of
    ``serve``).

Activation is explicit (:func:`profiling`) or environmental
(``REPRO_PROFILE=1`` plus :func:`maybe_profile_from_env`); the CLI's
``--profile`` flag routes through the former and prints
:meth:`KernelProfile.report` after the command finishes.  Profiles
merge across processes: a :class:`~repro.sim.session.SimSession`
wraps each pool worker's jobs in a fresh profile, ships it back as a
dict (:meth:`KernelProfile.to_dict`), and folds it into the parent's
active profile (:meth:`KernelProfile.merge`), so ``--profile`` with
``--jobs N`` reports whole-session numbers.

Example::

    from repro.sim.profile import profiling
    with profiling() as prof:
        simulate("tc", baseline_setup(), SimScale(512))
    print(prof.report())
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional

PHASES = ("trace", "serve", "refresh", "trackers")


class KernelProfile:
    """Accumulated per-phase seconds and event counts for one session."""

    __slots__ = ("trace_s", "serve_s", "refresh_s", "trackers_s",
                 "wall_s", "requests", "activations", "refs",
                 "window_ps", "runs")

    def __init__(self) -> None:
        self.trace_s = 0.0
        self.serve_s = 0.0
        self.refresh_s = 0.0
        self.trackers_s = 0.0
        self.wall_s = 0.0
        self.requests = 0
        self.activations = 0
        self.refs = 0
        self.window_ps = 0
        self.runs = 0

    # ------------------------------------------------------------------
    # Accumulation (called from the hot paths, profile-active only)
    # ------------------------------------------------------------------
    def add_run(self, wall_s: float, window_ps: int, requests: int,
                activations: int) -> None:
        """Record one completed ``MultiCoreSystem.run`` window."""
        self.wall_s += wall_s
        self.window_ps += window_ps
        self.requests += requests
        self.activations += activations
        self.runs += 1

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able view of every counter (the pool return payload)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data: dict) -> "KernelProfile":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        profile = cls()
        for name in cls.__slots__:
            if name in data:
                setattr(profile, name, data[name])
        return profile

    def merge(self, other: "KernelProfile | dict") -> None:
        """Fold another profile (or its dict form) into this one.

        Every field is additive, so merging is order-independent; a
        session can fold worker profiles in completion order.
        """
        data = other if isinstance(other, dict) else other.to_dict()
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + data.get(name, 0))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def requests_per_sec(self) -> float:
        """Served requests per wall-clock second across profiled runs."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def acts_per_sec(self) -> float:
        """Issued activations per wall-clock second."""
        return self.activations / self.wall_s if self.wall_s > 0 else 0.0

    def report(self) -> str:
        """Human-readable per-phase summary table."""
        lines = ["kernel profile"
                 f" ({self.runs} run{'s' if self.runs != 1 else ''},"
                 f" {self.wall_s:.2f}s simulated-kernel wall time)"]
        scheduling = max(0.0, self.serve_s - self.refresh_s
                         - self.trackers_s)
        rows = [
            ("trace generation", self.trace_s),
            ("controller scheduling", scheduling),
            ("demand refresh", self.refresh_s),
            ("mitigation trackers", self.trackers_s),
        ]
        wall = self.wall_s or 1.0
        for label, seconds in rows:
            lines.append(f"  {label:<22} {seconds:8.3f}s"
                         f"  ({100.0 * seconds / wall:5.1f}%)")
        lines.append(f"  {'requests':<22} {self.requests:>9}"
                     f"  ({self.requests_per_sec():,.0f}/s)")
        lines.append(f"  {'activations':<22} {self.activations:>9}"
                     f"  ({self.acts_per_sec():,.0f}/s)")
        lines.append(f"  {'REF commands':<22} {self.refs:>9}")
        if self.window_ps:
            ratio = self.window_ps / 1e12 / wall
            lines.append(f"  {'sim/wall time ratio':<22} {ratio:9.2e}")
        return "\n".join(lines)


_ACTIVE: Optional[KernelProfile] = None
"""The installed profile, or ``None`` (the no-profiling fast path).

Hot paths read this attribute directly -- one module-global load per
coarse event -- instead of calling :func:`active`.
"""


def active() -> Optional[KernelProfile]:
    """The currently-installed profile, if any."""
    return _ACTIVE


def enabled_by_env() -> bool:
    """True when ``REPRO_PROFILE`` asks for profiling."""
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on")


def install(profile: Optional[KernelProfile]) -> Optional[KernelProfile]:
    """Install ``profile`` as the active sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profile
    return previous


@contextmanager
def profiling(profile: Optional[KernelProfile] = None
              ) -> Iterator[KernelProfile]:
    """Scope a profile over a ``with`` block and yield it."""
    prof = profile if profile is not None else KernelProfile()
    previous = install(prof)
    try:
        yield prof
    finally:
        install(previous)


@contextmanager
def maybe_profile_from_env(force: bool = False) -> Iterator[
        Optional[KernelProfile]]:
    """Activate profiling when ``force`` or ``REPRO_PROFILE`` says so.

    Yields the profile (or ``None`` when disabled) so callers can print
    :meth:`KernelProfile.report` afterwards.
    """
    if not force and not enabled_by_env():
        yield None
        return
    with profiling() as prof:
        yield prof


__all__ = [
    "KernelProfile",
    "PHASES",
    "active",
    "enabled_by_env",
    "install",
    "maybe_profile_from_env",
    "perf_counter",
    "profiling",
]
