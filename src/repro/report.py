"""Full-evaluation report generator.

Renders a markdown report comparing the reproduction's numbers with
the paper's, suitable for writing to ``EXPERIMENTS.md``:

    python -m repro report EXPERIMENTS.md

The generator is data-driven: every exhibit is a registered
:class:`~repro.experiments.framework.Experiment` declaration, and the
whole report is laid out by the framework planner as a *single*
deduplicated session batch -- cells shared between exhibits (the PRAC
runs of Figures 3 and 11, the CGF measurements Table XIII transitively
re-uses, every slowdown cell's unprotected baseline) are simulated
exactly once.  Each exhibit's section carries the declared
paper-reference checks with deviation flags, and the report ends with
the plan's dedup and wall-time footer.

The heavy exhibits honour the same environment knobs as the benchmarks
(``REPRO_TIME_SCALE``, ``REPRO_CGF_SCALE``, ``REPRO_WORKLOADS``), and
all simulation work is submitted through a
:class:`~repro.sim.session.SimSession` -- pass one to
:func:`generate_markdown` (or use the CLI's ``--jobs`` /
``--cache-dir`` flags) to fan simulations out over worker processes
and persist results across runs.
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout
from typing import List, Optional, Tuple

import repro.experiments  # noqa: F401  (registers every declaration)
from repro.experiments import framework
from repro.sim.session import FailurePolicy, SimSession

_PAPER_ORDER = [
    "table1", "table2", "fig3", "table4", "table5", "fig6", "table6",
    "table7", "fig11", "table8", "table9", "table10", "table11",
    "fig13", "table12", "table13", "fig1", "extras",
]
"""Registry names in the paper's presentation order."""


def _ordered_experiments() -> List[framework.Experiment]:
    ordered = [framework.experiment_by_name(name)
               for name in _PAPER_ORDER]
    known = {framework.canonical_name(e.name) for e in ordered}
    # Extension experiments registered outside the paper order go last.
    ordered.extend(
        e for e in framework.available_experiments()
        if framework.canonical_name(e.name) not in known)
    return ordered


EXHIBITS: List[Tuple[str, str, str]] = [
    (e.title, e.description, e.name) for e in _ordered_experiments()]
"""(display title, description, registry name) per exhibit, in paper
order.  Tests (and callers) may monkeypatch this to subset the report.
"""


def _canonical(name: str) -> str:
    """Normalise an exhibit name: 'Table X' == 'table10' == 'tableX'."""
    return framework.canonical_name(name)


def exhibit_names() -> List[str]:
    """Names of every runnable exhibit, in paper order."""
    return [title for title, _, _ in EXHIBITS]


def run_exhibit(name: str,
                session: Optional[SimSession] = None) -> str:
    """Run one exhibit and return its rendered table."""
    experiment = framework.experiment_by_name(name)
    with redirect_stdout(io.StringIO()):
        result = framework.run_experiment(experiment, session=session)
    return framework.render_experiment(experiment, result)


def _selected(only: Optional[List[str]]) -> List[Tuple[str, str, str]]:
    if not only:
        return list(EXHIBITS)
    wanted = {_canonical(n) for n in only}
    return [e for e in EXHIBITS
            if _canonical(e[0]) in wanted or _canonical(e[2]) in wanted]


def _summary_table(selected: List[Tuple[str, str, str]],
                   plan: framework.Plan) -> List[str]:
    """The shared paper-vs-repro comparison table (markdown pipes)."""
    rows = []
    for title, _, name in selected:
        experiment = framework.experiment_by_name(name)
        result = plan.results.get(experiment.name)
        if result is None:
            continue
        for dev in framework.evaluate_checks(experiment, result):
            rows.append(f"| {title} | {dev.label} | {dev.measured:g} "
                        f"| {dev.paper:g} | {dev.flag} |")
    if not rows:
        return []
    return [
        "## Paper vs reproduction at a glance",
        "",
        "| Exhibit | Reference check | measured | paper | flag |",
        "|---|---|---|---|---|",
        *rows,
        "",
        "`DEV` marks a check outside its declared tolerance (see the",
        "per-exhibit notes; scale-induced spread is expected at the",
        "default `REPRO_TIME_SCALE`).",
        "",
    ]


def _footer(plan: framework.Plan, elapsed: float) -> List[str]:
    stats = plan.stats
    line = (f"_{stats.experiments} experiments planned "
            f"{stats.planned_cells} cells -> {stats.unique_jobs} "
            f"unique jobs ({stats.deduplicated} deduplicated)")
    batch = plan.batch
    if batch is not None:
        line += (f"; session computed {batch.computed}, "
                 f"served {batch.cache_hits} from cache "
                 f"({100.0 * batch.hit_rate:.0f}% hit rate)")
        if batch.workers > 1:
            line += (f"; pool utilization "
                     f"{100.0 * batch.utilization:.0f}% over "
                     f"{batch.workers} workers")
        if batch.failed or batch.retried or batch.timed_out:
            line += (f"; {batch.failed} failed, {batch.retried} "
                     f"retried, {batch.timed_out} timed out")
    degraded = plan.degraded()
    if degraded:
        line += (f"; {len(degraded)} exhibit(s) DEGRADED "
                 f"({', '.join(degraded)})")
    line += f"; wall time {elapsed:.1f}s._"
    return ["---", "", line, ""]


def generate_markdown(only: Optional[List[str]] = None,
                      progress: bool = True,
                      session: Optional[SimSession] = None) -> str:
    """Run all (or ``only`` the named) exhibits; return the report.

    Every selected exhibit (plus its declared dependencies) is planned
    into one deduplicated session batch, so shared cells simulate once
    and ``SimSession(max_workers=N)`` parallelises the whole report.
    The rendered tables are byte-identical to the per-module ``main()``
    output either way.

    The report runs under
    :obj:`~repro.sim.session.FailurePolicy.KEEP_GOING` (when no
    ``session`` is supplied): a permanently-failed cell marks its
    exhibit DEGRADED -- every unaffected exhibit still renders -- and
    completed cells are cached as they finish, so a rerun resumes
    instead of recomputing.
    """
    if session is None:
        session = SimSession(failure_policy=FailurePolicy.KEEP_GOING)
    lines = [
        "# Reproduction report",
        "",
        "Generated by `python -m repro report`. Every block shows the",
        "reproduced numbers next to the paper's (see EXPERIMENTS.md",
        "for scale notes and commentary).",
        "",
    ]
    selected = _selected(only)
    start = time.perf_counter()
    plan = framework.plan([name for _, _, name in selected],
                          session=session)
    if progress:
        print(f"planned {plan.stats.planned_cells} cells across "
              f"{plan.stats.experiments} experiments "
              f"({plan.stats.unique_jobs} unique jobs, "
              f"{plan.stats.deduplicated} deduplicated); running...",
              flush=True)
    with redirect_stdout(io.StringIO()):
        plan.execute()
    lines.extend(_summary_table(selected, plan))
    for title, description, name in selected:
        experiment = framework.experiment_by_name(name)
        result = plan.results[experiment.name]
        if progress:
            print(f"rendering {title}: {description}...", flush=True)
        lines.append(f"## {title} — {description}")
        lines.append("")
        if framework.is_degraded(result):
            lines.append("**DEGRADED** — some of this exhibit's cells "
                         "failed permanently; the numbers below are "
                         "the failure records, not results.")
            lines.append("")
        lines.append("```")
        lines.append(framework.render_experiment(experiment, result))
        lines.append("```")
        lines.append(f"_({plan.cell_count(name)} planned cells)_")
        for dev in framework.evaluate_checks(experiment, result):
            lines.append(f"- {dev.flag}: {dev.label} — measured "
                         f"{dev.measured:g}, paper {dev.paper:g}")
        lines.append("")
    lines.extend(_footer(plan, time.perf_counter() - start))
    return "\n".join(lines)


def write_report(path: str, only: Optional[List[str]] = None,
                 session: Optional[SimSession] = None) -> None:
    """Generate the markdown report and write it to ``path``."""
    report = generate_markdown(only, session=session)
    with open(path, "w") as handle:
        handle.write(report)
    print(f"wrote {path}")
