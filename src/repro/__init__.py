"""repro: a full reproduction of MIRZA (HPCA 2026).

MIRZA -- *Mitigating Rowhammer with Randomization and ALERT* -- is the
first low-cost **reactive** in-DRAM Rowhammer mitigation: it combines
MINT's single-entry randomized tracking with coarse-grained filtering
(the Region Count Table) and obtains mitigation time reactively through
the DDR5 ALERT-Back-Off protocol instead of proactively through REF/RFM.

Public API highlights
---------------------
- :class:`repro.core.MirzaConfig` / :class:`repro.core.MirzaTracker` --
  the mechanism itself and its provisioning (Table VII).
- :mod:`repro.mitigations` -- the baselines: PRAC+ABO, proactive MINT,
  Mithril, TRR, PARA.
- :mod:`repro.sim` -- run (workload x mitigation) simulations and
  measure slowdown, ALERT rate, and refresh-power overhead.  The
  :class:`repro.SimSession` object owns result caching and parallel
  fan-out; :func:`repro.setup_by_name` names the paper's setups;
  :func:`repro.simulate` is the uncached kernel underneath, and
  :class:`repro.KernelBackend` (``event`` / ``array``, selected per
  call or via ``REPRO_KERNEL_BACKEND``) chooses how it executes.
- :mod:`repro.security` -- analytic safe-TRH models, the attack
  verification harness, and area/storage accounting.
- :mod:`repro.workloads` -- Table IV workload generators and attack
  kernels.
- :mod:`repro.experiments` -- one module per table/figure of the paper.

Quickstart
----------
>>> from repro import MirzaConfig
>>> cfg = MirzaConfig.paper_config(trhd=1000)
>>> cfg.fth, cfg.mint_window, cfg.num_regions
(1500, 12, 128)
>>> cfg.storage_bytes_per_bank
196.0
"""

from repro.core import (
    MintSampler,
    MirzaConfig,
    MirzaQueue,
    MirzaTracker,
    RegionCountTable,
    ResetPolicy,
)
from repro.params import (
    AboTimings,
    DramGeometry,
    DramTimings,
    MitigationCosts,
    SimScale,
    SystemConfig,
)
from repro.sim import (
    KernelBackend,
    SimJob,
    SimSession,
    available_backends,
    available_setups,
    setup_by_name,
    simulate,
    using_session,
)
from repro.workloads import (
    ALL_WORKLOADS,
    WorkloadSource,
    WorkloadSpec,
    workload_by_name,
)

__version__ = "1.2.0"

__all__ = [
    "ALL_WORKLOADS",
    "AboTimings",
    "DramGeometry",
    "DramTimings",
    "KernelBackend",
    "MintSampler",
    "MirzaConfig",
    "MirzaQueue",
    "MirzaTracker",
    "MitigationCosts",
    "RegionCountTable",
    "ResetPolicy",
    "SimJob",
    "SimScale",
    "SimSession",
    "SystemConfig",
    "WorkloadSource",
    "WorkloadSpec",
    "available_backends",
    "available_setups",
    "setup_by_name",
    "simulate",
    "using_session",
    "workload_by_name",
    "__version__",
]
