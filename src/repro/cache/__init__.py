"""Shared last-level cache model (Table III: 16 MB, 16-way, 64 B lines).

The LLC is used to turn raw access streams into DRAM miss traces when
calibrating workload generators, and by the cache-focused example; the
main simulation loop consumes post-LLC miss traces directly.
"""

from repro.cache.llc import SetAssociativeCache

__all__ = ["SetAssociativeCache"]
