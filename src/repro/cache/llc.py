"""A set-associative LRU cache with miss-stream extraction.

Implements the paper's shared LLC (16 MB, 16-way, 64 B lines) plus the
bookkeeping needed to report MPKI from a raw access stream.  The model
is functional (hit/miss), not timed -- LLC latency is folded into the
core model's compute intervals.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, List


class SetAssociativeCache:
    """LRU set-associative cache over 64 B lines."""

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024,
                 ways: int = 16, line_bytes: int = 64) -> None:
        if capacity_bytes % (ways * line_bytes):
            raise ValueError("capacity must divide evenly into sets")
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> "tuple[int, int]":
        line = address // self.line_bytes
        return line % self.num_sets, line

    def access(self, address: int) -> bool:
        """Access ``address``; return True on hit (LRU updated)."""
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = True
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False

    def miss_stream(self, addresses: Iterable[int]) -> Iterator[int]:
        """Yield only the addresses that miss (the DRAM-visible stream)."""
        for address in addresses:
            if not self.access(address):
                yield address

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction given an instruction count."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def reset_stats(self) -> None:
        """Clear hit/miss counters (contents are preserved)."""
        self.hits = 0
        self.misses = 0
