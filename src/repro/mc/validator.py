"""Post-hoc DDR5 timing validation of simulated command streams.

The controller schedules arithmetically rather than by ticking a
clock, so correctness of the timing model is *checked* instead of
assumed: with a :class:`CommandLog` attached, every ACT/PRE/REF/RFM/
ALERT/data-burst is recorded, and :class:`TimingValidator` re-derives
the JEDEC constraints over the whole run:

- consecutive ACTs to one bank at least tRC apart;
- PRE no earlier than tRAS after its bank's ACT;
- ACT no earlier than tRP after its bank's PRE;
- at most four ACTs per subchannel in any tFAW window;
- no bank command inside that bank's REF/RFM blackout;
- no command inside a channel ALERT stall window;
- data bursts non-overlapping on the shared bus.

Integration tests run full workloads with the log enabled and assert
zero violations -- the strongest evidence the event-free scheduler
composes correctly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.params import DramTimings


@dataclass
class CommandLog:
    """Everything a validator needs to re-check a run."""

    acts: List[Tuple[int, int]] = field(default_factory=list)
    """(time, bank) for every ACT."""

    precharges: List[Tuple[int, int]] = field(default_factory=list)
    """(time, bank) for every PRE (explicit or auto-close)."""

    refreshes: List[Tuple[int, int]] = field(default_factory=list)
    """(start, end) of every all-bank REF blackout."""

    rfms: List[Tuple[int, int, int]] = field(default_factory=list)
    """(start, end, bank) of every RFM blackout."""

    stalls: List[Tuple[int, int]] = field(default_factory=list)
    """(start, end) of every channel-wide ALERT stall."""

    bursts: List[Tuple[int, int]] = field(default_factory=list)
    """(start, end) of every data-bus occupancy."""

    def record_act(self, time: int, bank: int) -> None:
        """Log an ACT issue."""
        self.acts.append((time, bank))

    def record_precharge(self, time: int, bank: int) -> None:
        """Log a PRE issue."""
        self.precharges.append((time, bank))

    def record_ref(self, start: int, end: int) -> None:
        """Log an all-bank REF blackout window."""
        self.refreshes.append((start, end))

    def record_rfm(self, start: int, end: int, bank: int) -> None:
        """Log a per-bank RFM blackout window."""
        self.rfms.append((start, end, bank))

    def record_stall(self, start: int, end: int) -> None:
        """Log a channel ALERT stall window."""
        self.stalls.append((start, end))

    def record_burst(self, start: int, end: int) -> None:
        """Log a data-bus burst occupancy."""
        self.bursts.append((start, end))


class TimingValidator:
    """Re-derives every DDR5 constraint over a :class:`CommandLog`."""

    def __init__(self, timings: DramTimings) -> None:
        self.timings = timings

    def validate(self, log: CommandLog) -> List[str]:
        """Return human-readable violation descriptions (empty = ok)."""
        violations: List[str] = []
        violations += self._check_trc(log)
        violations += self._check_tras_trp(log)
        violations += self._check_tfaw(log)
        violations += self._check_blackouts(log)
        violations += self._check_stalls(log)
        violations += self._check_bus(log)
        return violations

    # ------------------------------------------------------------------
    def _per_bank_acts(self, log: CommandLog) -> dict:
        per_bank: dict = {}
        for time, bank in log.acts:
            per_bank.setdefault(bank, []).append(time)
        for times in per_bank.values():
            times.sort()
        return per_bank

    def _check_trc(self, log: CommandLog) -> List[str]:
        out = []
        for bank, times in self._per_bank_acts(log).items():
            for a, b in zip(times, times[1:]):
                if b - a < self.timings.tRC:
                    out.append(
                        f"tRC violation on bank {bank}: ACTs at "
                        f"{a} and {b} ({b - a} ps apart)")
        return out

    def _check_tras_trp(self, log: CommandLog) -> List[str]:
        out = []
        per_bank_acts = self._per_bank_acts(log)
        per_bank_pre: dict = {}
        for time, bank in log.precharges:
            per_bank_pre.setdefault(bank, []).append(time)
        for bank, pres in per_bank_pre.items():
            pres.sort()
            acts = per_bank_acts.get(bank, [])
            for pre in pres:
                idx = bisect.bisect_right(acts, pre)
                if idx:
                    last_act = acts[idx - 1]
                    if pre - last_act < self.timings.tRAS:
                        out.append(
                            f"tRAS violation on bank {bank}: PRE at "
                            f"{pre}, ACT at {last_act}")
            for act in acts:
                idx = bisect.bisect_left(pres, act)
                if idx:
                    last_pre = pres[idx - 1]
                    if act - last_pre < self.timings.tRP:
                        out.append(
                            f"tRP violation on bank {bank}: ACT at "
                            f"{act}, PRE at {last_pre}")
        return out

    def _check_tfaw(self, log: CommandLog) -> List[str]:
        out = []
        times = sorted(t for t, _ in log.acts)
        for i in range(len(times) - 4):
            if times[i + 4] - times[i] < self.timings.tFAW:
                out.append(
                    f"tFAW violation: 5 ACTs within "
                    f"{times[i + 4] - times[i]} ps starting {times[i]}")
        return out

    def _check_blackouts(self, log: CommandLog) -> List[str]:
        out = []
        ref_windows = sorted(log.refreshes)
        starts = [s for s, _ in ref_windows]

        def inside_ref(t: int) -> bool:
            idx = bisect.bisect_right(starts, t)
            return bool(idx) and t < ref_windows[idx - 1][1]

        for time, bank in log.acts:
            if inside_ref(time):
                out.append(
                    f"REF blackout violation: ACT to bank {bank} at "
                    f"{time}")
        per_bank_rfm: dict = {}
        for start, end, bank in log.rfms:
            per_bank_rfm.setdefault(bank, []).append((start, end))
        for time, bank in log.acts:
            for start, end in per_bank_rfm.get(bank, []):
                if start <= time < end:
                    out.append(
                        f"RFM blackout violation: ACT to bank {bank} "
                        f"at {time} during [{start}, {end})")
        return out

    def _check_stalls(self, log: CommandLog) -> List[str]:
        out = []
        windows = sorted(log.stalls)
        starts = [s for s, _ in windows]
        for time, bank in log.acts:
            idx = bisect.bisect_right(starts, time)
            if idx and time < windows[idx - 1][1]:
                out.append(
                    f"ALERT stall violation: ACT to bank {bank} at "
                    f"{time} inside stall "
                    f"[{windows[idx - 1][0]}, {windows[idx - 1][1]})")
        return out

    def _check_bus(self, log: CommandLog) -> List[str]:
        out = []
        bursts = sorted(log.bursts)
        for (s1, e1), (s2, e2) in zip(bursts, bursts[1:]):
            if s2 < e1:
                out.append(
                    f"bus overlap: bursts [{s1}, {e1}) and "
                    f"[{s2}, {e2})")
        return out
