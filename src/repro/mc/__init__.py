"""Memory-controller substrate: command timing, RFM, and ABO handling.

- :mod:`repro.mc.abo`        -- the ALERT-Back-Off state machine and the
  channel stall-window bookkeeping of Figure 4.
- :mod:`repro.mc.rfm`        -- the proactive Refresh Management engine
  (per-bank BAT counters, Section II-F).
- :mod:`repro.mc.controller` -- the command-granularity memory
  controller: per-bank open-page state with a soft close-page policy,
  DDR5 timing enforcement, refresh pacing, and request service.
"""

from repro.mc.abo import AboEngine, StallWindows
from repro.mc.controller import MemoryController, RequestResult
from repro.mc.rfm import RfmEngine

__all__ = [
    "AboEngine",
    "MemoryController",
    "RequestResult",
    "RfmEngine",
    "StallWindows",
]
