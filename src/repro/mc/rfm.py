"""Refresh Management: proactive per-bank activation budgeting.

DDR5's RFM (Section II-F): the controller keeps one counter per bank,
incremented on every activation to that bank.  When a counter reaches
the *Bank Activation Threshold* (BAT), the controller issues an RFM to
that bank -- stalling it like a refresh -- and resets the counter.  REF
commands do **not** decrement the counter (BAT-RFM variant), so RFM time
never cannibalises demand refresh.

RFM is proactive: it fires at the configured cadence whether or not the
device has anything worth mitigating, which is exactly the inefficiency
MIRZA's reactive ALERTs eliminate.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs import metrics as _metrics


class RfmEngine:
    """Per-bank BAT counters issuing RFM every ``bat`` activations."""

    def __init__(self, num_banks: int, bat: Optional[int],
                 rfm_duration: int) -> None:
        """``bat = None`` disables RFM entirely."""
        if bat is not None and bat < 1:
            raise ValueError("BAT must be >= 1 (or None to disable)")
        self.num_banks = num_banks
        self.bat = bat
        self.rfm_duration = rfm_duration
        self._counters: List[int] = [0] * num_banks
        self.rfms_issued = 0
        reg = _metrics._ACTIVE
        self._m_issued = reg.counter("rfm.issued") \
            if reg is not None and bat is not None else None

    @property
    def enabled(self) -> bool:
        return self.bat is not None

    def on_activate(self, bank: int) -> bool:
        """Count one ACT; return True when an RFM is due for ``bank``."""
        if self.bat is None:
            return False
        self._counters[bank] += 1
        if self._counters[bank] >= self.bat:
            self._counters[bank] = 0
            self.rfms_issued += 1
            counter = self._m_issued
            if counter is not None:
                counter.value += 1
            return True
        return False

    def counter(self, bank: int) -> int:
        """Current BAT counter value for ``bank``."""
        return self._counters[bank]
