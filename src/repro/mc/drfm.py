"""DRFM-based MC-side mitigation (DREAM / MIST, Section X).

DDR5's *Directed Refresh Management* command lets the memory
controller hand the DRAM an aggressor row address; the chip refreshes
that row's victims, and one DRFM covers the sampled row position
across many banks in parallel.  Two recent MC-side defences build on
it:

- **MIST** keeps a sampled aggressor latched per bank (MINT-style
  window sampling) so that whenever a DRFM is issued, *every* bank has
  something useful to mitigate;
- **DREAM** delays the DRFM until enough banks hold samples, so each
  (expensive) command mitigates several banks at once.

:class:`DrfmEngine` implements both behaviours behind two knobs: the
per-bank sampling window and the minimum number of latched samples
required before a DRFM is released (``min_samples=1`` is plain
periodic DRFM; larger values are DREAM-style batching).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.core.mint import MintSampler
from repro.obs import metrics as _metrics


class DrfmEngine:
    """MC-side aggressor sampling + batched DRFM issue."""

    def __init__(self, num_banks: int, sample_window: int = 16,
                 acts_per_drfm: int = 64, min_samples: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        if acts_per_drfm < 1:
            raise ValueError("acts_per_drfm must be >= 1")
        if not 1 <= min_samples <= num_banks:
            raise ValueError("min_samples must be in [1, num_banks]")
        self.num_banks = num_banks
        self.acts_per_drfm = acts_per_drfm
        self.min_samples = min_samples
        rng = rng if rng is not None else random.Random(0)
        self._samplers = [
            MintSampler(sample_window,
                        random.Random(rng.getrandbits(32)))
            for _ in range(num_banks)]
        self._samples: Dict[int, int] = {}
        self._acts_since_drfm = 0
        self.drfms_issued = 0
        self.deferrals = 0

    def on_activate(self, bank: int, row: int) -> bool:
        """Observe an ACT; returns True when a DRFM should issue now."""
        selected = self._samplers[bank].observe(row)
        if selected is not None:
            # MIST: the latch always holds the *latest* sample so a
            # DRFM never goes to waste.
            self._samples[bank] = selected
        self._acts_since_drfm += 1
        if self._acts_since_drfm < self.acts_per_drfm:
            return False
        if len(self._samples) < self.min_samples:
            # DREAM: defer until the command can serve enough banks.
            self.deferrals += 1
            reg = _metrics._ACTIVE
            if reg is not None:
                reg.counter("drfm.deferrals").value += 1
            return False
        return True

    def issue_drfm(self) -> List[Tuple[int, int]]:
        """Release the pending samples: [(bank, aggressor_row), ...].

        The caller (controller) mitigates every pair under a single
        DRFM stall -- that per-command parallelism is the whole point.
        """
        pairs = sorted(self._samples.items())
        self._samples.clear()
        self._acts_since_drfm = 0
        if pairs:
            self.drfms_issued += 1
            reg = _metrics._ACTIVE
            if reg is not None:
                reg.counter("drfm.issued").value += 1
                reg.counter("drfm.banks_served").value += len(pairs)
        return pairs

    @property
    def pending_samples(self) -> int:
        return len(self._samples)

    def storage_bits(self, row_bits: int = 17) -> int:
        """One sample latch + sampler state per bank, plus a counter."""
        per_bank = row_bits + self._samplers[0].storage_bits(row_bits)
        return self.num_banks * per_bank + 16
