"""Command-granularity DDR5 memory controller for one subchannel.

The controller is event-free in the small: each request's command
sequence (optional PRE, optional ACT, CAS + data burst) is scheduled
arithmetically against

- per-bank DDR5 timing state (tRC/tRAS/tRP/tRCD, REF blackouts),
- the rolling four-activate window (tFAW),
- the shared data bus (tBURST per request),
- channel-wide ALERT stall windows (ABO), and
- the demand-refresh schedule (one all-bank REF per tREFI).

A *soft close-page* policy is modelled: a row stays open for ``tRAS``
after its activation and closes automatically afterwards unless another
request to the same row arrives first (each hit extends the window).
This matches the paper's policy ("closes a row after tRAS unless there
are pending requests to the opened row") at request granularity.

The controller also hosts the proactive RFM engine (when configured)
and the reactive ABO engine; both interact with the per-bank trackers
through :class:`repro.dram.device.DramDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from repro.dram.device import DramDevice
from repro.dram.timing import BankTiming, BusTracker, FawTracker
from repro.mc.abo import AboEngine
from repro.mc.drfm import DrfmEngine
from repro.mc.rfm import RfmEngine
from repro.mc.validator import CommandLog
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.params import SystemConfig
from repro import _profile

_LATENCY_BOUNDS_PS = (25_000, 50_000, 75_000, 100_000, 150_000,
                      250_000, 500_000, 1_000_000)
"""Upper bucket edges (ps) of the ``mc.latency_ps`` histogram."""


@dataclass(frozen=True, slots=True)
class RequestResult:
    """Outcome of one memory request."""

    issue_time: int
    """When the first command of the request issued (ps)."""

    completion_time: int
    """When the data burst finished (ps)."""

    activated: bool
    """True when the request required an ACT (row miss or conflict)."""

    row_hit: bool
    """True when the request hit the open row."""


class MemoryController:
    """FCFS-per-bank controller with open-page state and ABO/RFM."""

    __slots__ = ("config", "log", "rowpress_to_acts", "drfm", "timings",
                 "device", "banks", "faw", "bus", "abo", "rfm",
                 "_open_row", "_row_close_at", "_next_ref",
                 "total_requests", "total_activations", "row_hits",
                 "_tRCD", "_tRAS", "_tRP", "_tCAS", "_tREFI", "_tRFC",
                 "_stalls", "_rfm_enabled", "_alert_possible",
                 "subch", "_m_requests", "_m_row_hits",
                 "_m_row_conflicts", "_m_latency", "_tr")

    def __init__(self, config: SystemConfig, device: DramDevice,
                 rfm_bat: Optional[int] = None,
                 command_log: Optional[CommandLog] = None,
                 rowpress_to_acts: bool = False,
                 drfm: Optional[DrfmEngine] = None,
                 subch: int = 0) -> None:
        self.config = config
        self.log = command_log
        self.rowpress_to_acts = rowpress_to_acts
        self.drfm = drfm
        self.timings = config.timings
        self.device = device
        num_banks = device.num_banks
        self.banks: List[BankTiming] = [
            BankTiming(self.timings) for _ in range(num_banks)]
        self.faw = FawTracker(self.timings)
        self.bus = BusTracker(self.timings)
        self.abo = AboEngine(config.abo)
        self.rfm = RfmEngine(num_banks, rfm_bat, self.timings.tRFM)
        self._open_row: List[Optional[int]] = [None] * num_banks
        self._row_close_at: List[int] = [0] * num_banks
        self._next_ref = self.timings.tREFI
        self.total_requests = 0
        self.total_activations = 0
        self.row_hits = 0
        # Hot-path caches: the timing fields and stall adjuster are read
        # on every request; resolving them once here keeps `serve_timing`
        # free of attribute-chain lookups.
        self._tRCD = self.timings.tRCD
        self._tRAS = self.timings.tRAS
        self._tRP = self.timings.tRP
        self._tCAS = self.timings.tCAS
        self._tREFI = self.timings.tREFI
        self._tRFC = self.timings.tRFC
        self._stalls = self.abo.stalls
        self._rfm_enabled = rfm_bat is not None
        self._alert_possible = bool(device._alertable)
        # Observability: metric objects and the trace buffer are bound
        # once here; the off path in serve_timing is one None check.
        self.subch = subch
        reg = _metrics._ACTIVE
        if reg is not None:
            self._m_requests = reg.counter("mc.requests")
            self._m_row_hits = reg.counter("mc.row_hits")
            self._m_row_conflicts = reg.counter("mc.row_conflicts")
            self._m_latency = reg.histogram("mc.latency_ps",
                                            bounds=_LATENCY_BOUNDS_PS)
        else:
            self._m_requests = self._m_row_hits = None
            self._m_row_conflicts = self._m_latency = None
        self._tr = _trace._ACTIVE

    # ------------------------------------------------------------------
    # Refresh pacing
    # ------------------------------------------------------------------
    def process_refreshes(self, until: int) -> None:
        """Issue every REF whose nominal slot is at or before ``until``."""
        if until < self._next_ref:
            return
        prof = _profile._ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        refs = 0
        adjust = self._stalls.adjust
        tRFC = self._tRFC
        tREFI = self._tREFI
        open_row = self._open_row
        trace = self._tr
        while self._next_ref <= until:
            start = adjust(self._next_ref)
            end = start + tRFC
            for bank_id, bank in enumerate(self.banks):
                bank.block_until(end)
                open_row[bank_id] = None
            if self.log is not None:
                self.log.record_ref(start, end)
            if trace is not None:
                trace.window(start, end, "REF", self.subch)
            self.device.do_ref(start)
            self._next_ref += tREFI
            refs += 1
        self._stalls.drop_before(until - 10 * tREFI)
        if prof is not None:
            prof.refresh_s += perf_counter() - t0
            prof.refs += refs

    # ------------------------------------------------------------------
    # Request service
    # ------------------------------------------------------------------
    def serve_timing(self, bank_id: int, row: int, arrival: int
                     ) -> Tuple[int, int, bool]:
        """Hot path of :meth:`serve`: ``(issue, data_done, activated)``.

        Identical scheduling to :meth:`serve` without constructing a
        :class:`RequestResult`; the run loop calls this once per request.
        """
        if self._next_ref <= arrival:
            self.process_refreshes(arrival)
        bus = self.bus
        bus.release_before(arrival)
        self.faw.release_before(arrival)
        self.total_requests += 1
        bank = self.banks[bank_id]
        # Inlined _effective_open_row (soft close-page policy).
        open_row = self._open_row[bank_id]
        if open_row is not None and arrival > self._row_close_at[bank_id]:
            open_row = None

        adjust = self._stalls.adjust
        if open_row == row:
            blocked = bank._blocked_until
            issue = adjust(blocked if blocked > arrival else arrival)
            self.row_hits += 1
            lower = issue
            activated = False
            counter = self._m_row_hits
            if counter is not None:
                counter.value += 1
        else:
            conflict = open_row is not None
            issue = self._activate(bank_id, row, arrival,
                                   conflict=conflict)
            lower = issue + self._tRCD
            activated = True
            if conflict and self._m_row_conflicts is not None:
                self._m_row_conflicts.value += 1

        transfer = bus.earliest_transfer(arrival)
        cas = adjust(transfer if transfer > lower else lower)
        data_done = bus.transfer(cas) + self._tCAS
        counter = self._m_requests
        if counter is not None:
            counter.value += 1
            self._m_latency.observe(data_done - arrival)
        if self.log is not None:
            burst_end = data_done - self._tCAS
            self.log.record_burst(burst_end - self.timings.tBURST,
                                  burst_end)
        # A served request keeps its row open for another tRAS.
        close_at = cas + self._tRAS
        if close_at > self._row_close_at[bank_id]:
            self._row_close_at[bank_id] = close_at
        return issue, data_done, activated

    def serve(self, bank_id: int, row: int, arrival: int) -> RequestResult:
        """Schedule one read-sized request; returns its timing."""
        issue, data_done, activated = self.serve_timing(
            bank_id, row, arrival)
        return RequestResult(issue_time=issue, completion_time=data_done,
                             activated=activated,
                             row_hit=(not activated))

    def _effective_open_row(self, bank_id: int, now: int) -> Optional[int]:
        """Open row visible at ``now`` under the soft close-page policy."""
        row = self._open_row[bank_id]
        if row is None:
            return None
        if now > self._row_close_at[bank_id]:
            # The row auto-closed; model the precharge as already done
            # (it started at close time, well before `now` arrivals that
            # exceed close + tRP; earlier arrivals pay the residue via
            # BankTiming's precharge bookkeeping below).
            return None
        return row

    def _activate(self, bank_id: int, row: int, arrival: int,
                  conflict: bool) -> int:
        """Issue (PRE +) ACT for ``row``; return the ACT issue time."""
        bank = self.banks[bank_id]
        adjust = self._stalls.adjust
        ready = arrival
        if conflict:
            pre = adjust(bank.earliest_precharge(arrival))
            self._note_row_press(bank_id, pre)
            ready = bank.precharge(pre)
            if self.log is not None:
                self.log.record_precharge(pre, bank_id)
        elif self._open_row[bank_id] is not None:
            # Row auto-closed at row_close_at; precharge trails it.
            auto_pre = self._row_close_at[bank_id]
            self._note_row_press(bank_id, auto_pre)
            ready = max(arrival, auto_pre + self._tRP)
            bank.precharge(auto_pre)
            if self.log is not None:
                self.log.record_precharge(auto_pre, bank_id)
        # Fixpoint over the constraints: pushing the ACT later (bank
        # blackout, stall window) can land it inside an already-full
        # tFAW window or a not-yet-processed REF slot, so every
        # constraint -- including future refreshes up to the candidate
        # time -- is re-evaluated until none moves it.
        bank_earliest = bank.earliest_activate
        faw_earliest = self.faw.earliest_activate
        act = ready
        while True:
            self.process_refreshes(act)
            b = bank_earliest(act)
            f = faw_earliest(act)
            candidate = adjust(b if b > f else f)
            if candidate == act:
                break
            act = candidate
        bank.activate(act)
        self.faw.activate(act)
        if self.log is not None:
            self.log.record_act(act, bank_id)
        trace = self._tr
        if trace is not None:
            trace.instant(act, "ACT", self.subch, bank_id)
        self._open_row[bank_id] = row
        self._row_close_at[bank_id] = act + self._tRAS
        self.total_activations += 1
        self.device.activate(bank_id, row, act)
        self.abo.on_activate()
        if self._rfm_enabled and self.rfm.on_activate(bank_id):
            self._issue_rfm(bank_id, act)
        if self.drfm is not None and self.drfm.on_activate(bank_id, row):
            self._issue_drfm(act)
        if self._alert_possible:
            self._check_alert(act)
        return act

    def _note_row_press(self, bank_id: int, pre_time: int) -> None:
        """Convert extended row-open time into equivalent ACTs.

        RowPress mitigation (Section II-A): a row held open for ``n``
        tRAS periods disturbs its neighbours like ~``n`` activations;
        with ``rowpress_to_acts`` enabled, the excess over the first
        period is reported to the tracker (and the oracle) as
        equivalent activations, capped to bound the bookkeeping.
        """
        if not self.rowpress_to_acts:
            return
        row = self._open_row[bank_id]
        if row is None:
            return
        open_time = pre_time - self.banks[bank_id].last_activate
        equivalent = min(16, open_time // self.timings.tRAS - 1)
        if equivalent > 0:
            self.device.note_row_press(bank_id, row, equivalent,
                                       pre_time)

    def _issue_rfm(self, bank_id: int, act_time: int) -> None:
        """Stall ``bank_id`` for an RFM right after the triggering ACT."""
        start = self.abo.stalls.adjust(act_time + self.timings.tRAS)
        end = start + self.rfm.rfm_duration
        self.banks[bank_id].block_until(end)
        self._open_row[bank_id] = None
        if self.log is not None:
            self.log.record_rfm(start, end, bank_id)
        trace = self._tr
        if trace is not None:
            trace.window(start, end, "RFM", self.subch, bank_id)
        self.device.rfm(bank_id, start)

    def _issue_drfm(self, act_time: int) -> None:
        """Release the DRFM batch: every sampled bank mitigates its
        latched aggressor under a single tRFM-length stall."""
        start = self.abo.stalls.adjust(act_time + self.timings.tRAS)
        end = start + self.timings.tRFM
        trace = self._tr
        if trace is not None:
            trace.window(start, end, "DRFM", self.subch)
        for bank_id, aggressor in self.drfm.issue_drfm():
            self.banks[bank_id].block_until(end)
            self._open_row[bank_id] = None
            if self.log is not None:
                self.log.record_rfm(start, end, bank_id)
            self.device.drfm_mitigate(bank_id, aggressor)

    def _check_alert(self, now: int) -> None:
        """Run the ABO sequence if any tracker is requesting ALERT."""
        prof = _profile._ACTIVE
        if prof is None:
            pending = self.device.alert_pending()
        else:
            t0 = perf_counter()
            pending = self.device.alert_pending()
            prof.trackers_s += perf_counter() - t0
        asserted = self.abo.maybe_assert(pending, now)
        if asserted is None:
            return
        stall_start, stall_end = asserted
        if self.log is not None:
            self.log.record_stall(stall_start, stall_end)
        trace = self._tr
        if trace is not None:
            trace.instant(now, "ALERT", self.subch)
            trace.window(stall_start, stall_end, "STALL", self.subch)
        self.device.service_alert(stall_end)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def finish(self, end_time: int) -> None:
        """Flush refreshes to the end of the simulated window."""
        self.process_refreshes(end_time)

    @property
    def row_hit_rate(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.row_hits / self.total_requests

    @property
    def alerts(self) -> int:
        return self.abo.alerts_asserted
