"""ALERT-Back-Off: stall windows and the ABO protocol state machine.

Figure 4: when the DRAM asserts ALERT at time ``t``, the controller may
keep operating normally during the *prologue* ``[t, t + 180ns)``, must
stall the whole channel during ``[t + 180ns, t + 530ns)`` while the
device mitigates, and must issue at least one activation before the
device may assert ALERT again (the *epilogue* ACT).

The stall discipline is what lets an attacker land a few more ACTs on a
queued row (Phase D of the security analysis): the reproduction models
it exactly, so the ``Q+7`` worst case of Figure 10 is *observable* in
simulation rather than assumed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.params import AboTimings


class StallWindows:
    """Sorted channel-wide blackout intervals with skip-ahead queries.

    Commands may issue at any instant not covered by a window; a command
    landing inside a window slides to the window's end.  Windows are
    appended in (mostly) increasing order; overlaps are merged lazily.
    """

    __slots__ = ("_windows", "total_stall")

    def __init__(self) -> None:
        self._windows: List[Tuple[int, int]] = []
        self.total_stall = 0

    def add(self, start: int, end: int) -> None:
        """Register a stall window [start, end), merging overlaps."""
        if end <= start:
            return
        self.total_stall += end - start
        if self._windows and start <= self._windows[-1][1]:
            last_start, last_end = self._windows[-1]
            merged = (min(last_start, start), max(last_end, end))
            self.total_stall -= max(
                0, min(last_end, end) - max(last_start, start))
            self._windows[-1] = merged
        else:
            self._windows.append((start, end))

    def adjust(self, t: int) -> int:
        """Earliest instant >= ``t`` outside every stall window."""
        windows = self._windows
        # Fast path: no stall has ever been recorded (the common case --
        # baseline and proactive setups never ALERT), or the newest
        # window already ended before ``t``.
        if not windows or t >= windows[-1][1]:
            return t
        # Walk from the end: recent windows are the relevant ones.
        for start, end in reversed(windows):
            if t >= end:
                return t
            if t >= start:
                return end
        return t

    def drop_before(self, t: int) -> None:
        """Garbage-collect windows fully in the past (keeps scans O(1))."""
        keep = [(s, e) for (s, e) in self._windows if e > t]
        self._windows = keep

    @property
    def windows(self) -> List[Tuple[int, int]]:
        return list(self._windows)


class AboEngine:
    """Controller-side ABO protocol handling for one subchannel."""

    __slots__ = ("abo", "stalls", "alerts_asserted", "_acts_since_alert",
                 "_last_stall_end")

    def __init__(self, abo: AboTimings = AboTimings()) -> None:
        self.abo = abo
        self.stalls = StallWindows()
        self.alerts_asserted = 0
        self._acts_since_alert = 1  # allow the very first ALERT
        self._last_stall_end = -(10 ** 18)
        reg = _metrics._ACTIVE
        if reg is not None:
            # Pre-register so the stats table shows zeros for runs
            # that never ALERT (assert_alert keeps the rare-path
            # lookup and needs no prefetched slots).
            reg.counter("abo.alerts")
            reg.counter("abo.stall_ps")

    def on_activate(self) -> None:
        """Record an ACT (epilogue bookkeeping)."""
        self._acts_since_alert += 1

    def can_assert(self, now: int) -> bool:
        """ALERT needs one ACT since the previous one and no open stall."""
        return (self._acts_since_alert >= self.abo.epilogue_acts
                and now >= self._last_stall_end)

    def assert_alert(self, now: int) -> Tuple[int, int]:
        """Assert ALERT at ``now``; returns (stall_start, stall_end).

        The caller must service the device's mitigation at stall time
        and treat ``stall_end`` as the earliest next command slot.
        With ``rfms_per_alert > 1`` the stall covers every RFM issued
        back to back.
        """
        stall_start = now + self.abo.prologue
        stall_end = stall_start + self.abo.total_stall
        self.stalls.add(stall_start, stall_end)
        self.alerts_asserted += 1
        self._acts_since_alert = 0
        self._last_stall_end = stall_end
        reg = _metrics._ACTIVE
        if reg is not None:
            # ALERTs are rare (tens per billion ACTs); a registry lookup
            # here is cheaper than two prefetched slots on every engine.
            reg.counter("abo.alerts").value += 1
            reg.counter("abo.stall_ps").value += stall_end - stall_start
        return stall_start, stall_end

    def maybe_assert(self, pending: bool, now: int
                     ) -> Optional[Tuple[int, int]]:
        """Assert iff the device wants an ALERT and the protocol allows."""
        if pending and self.can_assert(now):
            return self.assert_alert(now)
        return None
