"""Defensive parsing for the ``REPRO_*`` environment knobs.

Environment variables are typed by the user, not the library, so a
malformed value (``REPRO_JOBS=auto`` before that spelling existed,
``REPRO_WORKLOAD_CACHE=x``) must not surface as a bare ``ValueError``
deep inside a sweep.  Every parser here warns once per (variable,
value) and falls back to the caller's default instead.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Set, Tuple

_WARNED: Set[Tuple[str, str]] = set()


def _warn_once(var: str, raw: str, default: object) -> None:
    key = (var, raw)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(f"ignoring malformed {var}={raw!r}; "
                  f"using default {default!r}", stacklevel=3)


def env_int(var: str, default: int, minimum: Optional[int] = None,
            aliases: Optional[Dict[str, int]] = None) -> int:
    """``int(os.environ[var])`` with a warn-and-default fallback.

    ``aliases`` maps non-numeric spellings to values (``{"auto": ...}``
    for ``REPRO_JOBS``); ``minimum`` clamps the parsed result.
    """
    raw = os.environ.get(var)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if aliases and lowered in aliases:
        value = aliases[lowered]
    else:
        try:
            value = int(raw)
        except ValueError:
            _warn_once(var, raw, default)
            return default
    if minimum is not None and value < minimum:
        value = minimum
    return value


def env_choice(var: str, default: str, choices: Tuple[str, ...]) -> str:
    """``os.environ[var]`` restricted to ``choices``, warn-and-default.

    Matching is case-insensitive after stripping whitespace, mirroring
    the alias handling of :func:`env_int`; an unrecognised spelling
    (``REPRO_KERNEL_BACKEND=vector``) warns once and falls back to
    ``default`` instead of raising mid-sweep.
    """
    raw = os.environ.get(var)
    if raw is None or raw == "":
        return default
    value = raw.strip().lower()
    if value in choices:
        return value
    _warn_once(var, raw, default)
    return default


def env_float(var: str, default: float,
              minimum: Optional[float] = None) -> float:
    """``float(os.environ[var])`` with a warn-and-default fallback."""
    raw = os.environ.get(var)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        _warn_once(var, raw, default)
        return default
    if minimum is not None and value < minimum:
        value = minimum
    return value
