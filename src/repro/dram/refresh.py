"""Demand-refresh sweep: REF slices, RefPtr, and region boundaries.

DDR5 refreshes every row once per tREFW by issuing one REF command every
tREFI; with 128K rows per bank and 8192 REFs per window, each REF sweeps
16 physically-consecutive rows (Section V-C / Appendix B).  The sweep
order is *physical*: one subarray at a time, 64 REFs per subarray.

The scheduler is window-size agnostic: ``refs_per_window`` may be the
full 8192 or a scaled-down count (see :class:`repro.params.SimScale`), in
which case each REF slice covers proportionally more rows so one full
sweep still fits in one window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.dram.mapping import RowToSubarrayMapping, SequentialR2SA
from repro.params import DramGeometry


@dataclass(frozen=True)
class RefreshSlice:
    """The work performed by a single REF command on one bank."""

    ref_index: int
    """Index of this REF within the current refresh window."""

    physical_start: int
    """First physical row index refreshed (inclusive)."""

    physical_end: int
    """One past the last physical row index refreshed."""

    logical_rows: List[int] = field(default_factory=list)
    """Logical row numbers refreshed by this slice."""

    subarray: int = 0
    """Subarray the slice starts in."""

    starts_subarray: bool = False
    """True when this REF is the first touching :attr:`subarray`."""

    finishes_subarray: bool = False
    """True when this REF refreshes the last rows of :attr:`subarray`."""

    wraps_window: bool = False
    """True when this REF completes the sweep (RefPtr wraps to zero)."""

    def row_set(self) -> frozenset:
        """Membership-testable view of :attr:`logical_rows`, cached.

        A slice covers thousands of rows and is consumed by every bank's
        oracle plus several trackers; building the frozenset once per
        slice (instead of per consumer) keeps refresh sweeps off the
        profile.
        """
        cached = self.__dict__.get("_row_set")
        if cached is None:
            cached = frozenset(self.logical_rows)
            object.__setattr__(self, "_row_set", cached)
        return cached

    def row_array(self):
        """:attr:`logical_rows` as a cached numpy ``int64`` array.

        The vector kernel's bulk paths gather per-row state for a whole
        slice with one fancy index instead of iterating the list; like
        :meth:`row_set`, the array is built once per slice and shared
        by every consumer.  Callers must treat it as read-only.
        """
        cached = self.__dict__.get("_row_array")
        if cached is None:
            cached = _np.asarray(self.logical_rows, dtype=_np.int64)
            object.__setattr__(self, "_row_array", cached)
        return cached


class RefreshScheduler:
    """Generates REF slices in physical sweep order, tracking RefPtr."""

    def __init__(self, geometry: DramGeometry = DramGeometry(),
                 mapping: RowToSubarrayMapping = None,
                 refs_per_window: int = None) -> None:
        self.geometry = geometry
        self.mapping = mapping if mapping is not None else SequentialR2SA(
            geometry)
        if refs_per_window is None:
            refs_per_window = geometry.rows_per_bank // geometry.rows_per_ref
        if refs_per_window < 1:
            raise ValueError("refs_per_window must be positive")
        if refs_per_window > geometry.rows_per_bank:
            raise ValueError(
                "refs_per_window cannot exceed rows_per_bank")
        self.refs_per_window = refs_per_window
        # Ceil division: when refs_per_window does not divide the bank
        # evenly (scaled windows), early slices carry the extra rows
        # and the final slice is short -- every row is still refreshed
        # exactly once per window.
        self.rows_per_ref = -(-geometry.rows_per_bank // refs_per_window)
        self.refptr = 0
        self.windows_completed = 0

    def peek_slice(self, ref_index: int = None) -> RefreshSlice:
        """Build the slice for ``ref_index`` without advancing RefPtr."""
        if ref_index is None:
            ref_index = self.refptr
        ref_index %= self.refs_per_window
        start = min(ref_index * self.rows_per_ref,
                    self.geometry.rows_per_bank)
        end = min(start + self.rows_per_ref,
                  self.geometry.rows_per_bank)
        rows_per_sa = self.geometry.rows_per_subarray
        subarray = min(start, self.geometry.rows_per_bank - 1) \
            // rows_per_sa
        logical = self.mapping.logical_rows(start, end)
        return RefreshSlice(
            ref_index=ref_index,
            physical_start=start,
            physical_end=end,
            logical_rows=logical,
            subarray=subarray,
            starts_subarray=(start % rows_per_sa == 0),
            finishes_subarray=(end % rows_per_sa == 0),
            wraps_window=(ref_index == self.refs_per_window - 1),
        )

    def advance(self) -> RefreshSlice:
        """Return the next REF slice and advance the RefPtr."""
        slice_ = self.peek_slice()
        self.refptr += 1
        if self.refptr == self.refs_per_window:
            self.refptr = 0
            self.windows_completed += 1
        return slice_

    def subarray_being_refreshed(self) -> int:
        """Subarray the *next* REF will touch (the in-flight subarray)."""
        start = (self.refptr % self.refs_per_window) * self.rows_per_ref
        return start // self.geometry.rows_per_subarray

    def refs_per_subarray(self) -> int:
        """Number of REF commands needed to sweep one subarray."""
        return max(1, self.geometry.rows_per_subarray // self.rows_per_ref)
