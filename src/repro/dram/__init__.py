"""DDR5 DRAM substrate: banks, address/row mappings, refresh, timing.

This package is the simulator's ground-truth model of the DRAM device:

- :mod:`repro.dram.commands` -- the DDR5 command vocabulary.
- :mod:`repro.dram.mapping`  -- MOP4 physical-address mapping and the
  Sequential / Strided row-to-subarray mappings of Section IV-D.
- :mod:`repro.dram.bank`     -- per-bank state plus the per-row activation
  oracle used to *verify* (not implement) Rowhammer security.
- :mod:`repro.dram.refresh`  -- the tREFI refresh sweep and RefPtr tracking.
- :mod:`repro.dram.timing`   -- bank-level DDR5 timing constraint tracking.
- :mod:`repro.dram.device`   -- the assembled multi-bank device.
"""

from repro.dram.bank import Bank, RowActivationOracle
from repro.dram.commands import DramCommand
from repro.dram.device import DramDevice
from repro.dram.mapping import (
    AddressMapping,
    DecodedAddress,
    RowToSubarrayMapping,
    SequentialR2SA,
    StridedR2SA,
)
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import BankTiming

__all__ = [
    "AddressMapping",
    "Bank",
    "BankTiming",
    "DecodedAddress",
    "DramCommand",
    "DramDevice",
    "RefreshScheduler",
    "RowActivationOracle",
    "RowToSubarrayMapping",
    "SequentialR2SA",
    "StridedR2SA",
]
