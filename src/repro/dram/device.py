"""The assembled DRAM device: one subchannel of banks plus trackers.

A :class:`DramDevice` bundles the banks of one subchannel, their
per-bank mitigation trackers, and the demand-refresh sweep.  The memory
controller drives it with ``activate`` / ``do_ref`` / ``rfm`` /
``service_alert`` calls; the device performs the ground-truth
bookkeeping (row oracles, victim refreshes) and the mitigation-resource
accounting that the paper's energy and cannibalisation numbers are built
from.

ALERT is modelled at device (subchannel) scope, matching the paper's
"ALERTs per 100xtREFI (per sub-channel)" metric: when *any* bank's
tracker raises ``wants_alert``, the whole subchannel goes through the
ABO sequence and **every** bank with pending work mitigates one entry
(Section IV-A: queues synchronise mitigations across banks so one ALERT
serves many banks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence

from repro import _profile
from repro.dram.bank import Bank
from repro.dram.mapping import RowToSubarrayMapping, SequentialR2SA
from repro.dram.refresh import RefreshScheduler, RefreshSlice
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.params import MitigationCosts, SystemConfig

TrackerFactory = Callable[[int], BankTracker]


@dataclass
class DeviceStats:
    """Mitigation-resource accounting for one subchannel."""

    refs_issued: int = 0
    rfms_issued: int = 0
    alerts_serviced: int = 0
    demand_rows_refreshed: int = 0
    victim_rows_refreshed: int = 0
    mitigations_total: int = 0
    mitigations_by_source: dict = field(default_factory=dict)
    activations: int = 0
    row_press_equivalents: int = 0

    def record_mitigation(self, source: MitigationSlotSource,
                          victims: int) -> None:
        """Account one mitigation and its victim refreshes."""
        self.mitigations_total += 1
        self.victim_rows_refreshed += victims
        key = source.value
        self.mitigations_by_source[key] = (
            self.mitigations_by_source.get(key, 0) + 1)

    def refresh_power_overhead(self) -> float:
        """Victim refreshes relative to demand refreshes (Section II-F).

        The paper computes refresh power overhead as the ratio of rows
        undergoing victim refresh to rows undergoing demand refresh.
        """
        if self.demand_rows_refreshed == 0:
            return 0.0
        return self.victim_rows_refreshed / self.demand_rows_refreshed

    def refresh_cannibalization(self, costs: MitigationCosts,
                                tRFC: int) -> float:
        """Fraction of REF time consumed by REF-borrowed mitigations."""
        if self.refs_issued == 0:
            return 0.0
        under_ref = self.mitigations_by_source.get(
            MitigationSlotSource.REF.value, 0)
        return (under_ref * costs.mitigation_time) / (
            self.refs_issued * tRFC)

    def mitigation_rate(self) -> float:
        """Mitigations per activation (Table VIII's metric)."""
        if self.activations == 0:
            return 0.0
        return self.mitigations_total / self.activations


class DramDevice:
    """One subchannel: banks, trackers, refresh sweep, ALERT arbitration."""

    def __init__(self, config: SystemConfig,
                 tracker_factory: Optional[TrackerFactory] = None,
                 mapping: Optional[RowToSubarrayMapping] = None,
                 refs_per_window: Optional[int] = None,
                 blast_radius: int = 2, subch: int = 0) -> None:
        self.config = config
        geometry = config.geometry
        self.mapping = mapping if mapping is not None else SequentialR2SA(
            geometry)
        self.blast_radius = blast_radius
        self.subch = subch
        self.num_banks = geometry.banks_per_subchannel
        self.banks: List[Bank] = [
            Bank(i, geometry, self.mapping, subch)
            for i in range(self.num_banks)]
        if tracker_factory is None:
            from repro.mitigations.none import NoMitigation
            tracker_factory = lambda bank_id: NoMitigation()  # noqa: E731
        self.trackers: List[BankTracker] = [
            tracker_factory(i) for i in range(self.num_banks)]
        # Trackers that inherit the base wants_alert can never request an
        # ALERT; precomputing the overriders lets alert_pending -- polled
        # once per activation -- skip purely proactive configurations.
        self._alertable: List[BankTracker] = [
            t for t in self.trackers
            if type(t).wants_alert is not BankTracker.wants_alert]
        self.refresh = RefreshScheduler(geometry, self.mapping,
                                        refs_per_window)
        self.stats = DeviceStats()
        reg = _metrics._ACTIVE
        if reg is not None:
            self._m_refs = reg.counter("dram.refs")
            self._m_alerts = reg.counter("dram.alerts_serviced")
            self._m_victims = reg.counter("dram.victim_rows")
            self._m_mitigations = {
                source: reg.counter(f"dram.mitigations.{source.value}")
                for source in MitigationSlotSource}
        else:
            self._m_refs = self._m_alerts = self._m_victims = None
            self._m_mitigations = None
        self._tr = _trace._ACTIVE

    # ------------------------------------------------------------------
    # Controller-facing operations
    # ------------------------------------------------------------------
    def activate(self, bank_id: int, row: int, now_ps: int) -> None:
        """Activate ``row`` in ``bank_id``; trackers observe the ACT."""
        self.banks[bank_id].activate(row)
        prof = _profile._ACTIVE
        if prof is None:
            self.trackers[bank_id].on_activate(row, now_ps)
        else:
            t0 = perf_counter()
            self.trackers[bank_id].on_activate(row, now_ps)
            prof.trackers_s += perf_counter() - t0
        self.stats.activations += 1

    def apply_activations(self, bank_id: int, rows: Sequence[int],
                          times: Sequence[int]) -> None:
        """Apply a deferred run of ACTs to one bank in arrival order.

        The array backend buffers ``activate`` calls between
        timing-relevant events and lands them here in bulk; bank, oracle,
        tracker, and stats end in exactly the state ``len(rows)``
        individual :meth:`activate` calls would have produced.
        """
        self.banks[bank_id].activate_many(rows)
        prof = _profile._ACTIVE
        if prof is None:
            self.trackers[bank_id].on_activates(rows, times)
        else:
            t0 = perf_counter()
            self.trackers[bank_id].on_activates(rows, times)
            prof.trackers_s += perf_counter() - t0
        self.stats.activations += len(rows)

    def apply_activations_array(self, bank_id: int, rows,
                                times) -> None:
        """Array twin of :meth:`apply_activations` (vector kernel).

        ``rows``/``times`` are parallel 1-D numpy arrays; bank,
        oracle, tracker, and stats end in exactly the state the list
        form -- and therefore per-ACT :meth:`activate` calls -- would
        have produced.  Trackers that do not override
        ``on_activates_array`` replay through their list bulk path.
        """
        self.banks[bank_id].activate_many_array(rows)
        prof = _profile._ACTIVE
        if prof is None:
            self.trackers[bank_id].on_activates_array(rows, times)
        else:
            t0 = perf_counter()
            self.trackers[bank_id].on_activates_array(rows, times)
            prof.trackers_s += perf_counter() - t0
        self.stats.activations += len(rows)

    def drfm_mitigate(self, bank_id: int, aggressor_row: int) -> int:
        """Mitigate one MC-sampled aggressor (DRFM); return victim count.

        The controller's DRFM engine latches aggressors MC-side; the
        actual victim refresh is device work, routed through here so
        backends that defer device bookkeeping can interpose.
        """
        victims = self.banks[bank_id].mitigate(aggressor_row,
                                               self.blast_radius)
        self.stats.record_mitigation(MitigationSlotSource.RFM, victims)
        return victims

    def note_row_press(self, bank_id: int, row: int,
                       equivalent_acts: int, now_ps: int) -> None:
        """Account extended row-open time as equivalent activations.

        RowPress (Section II-A) amplifies disturbance when a row stays
        open: a standard mitigation is to convert the open time into an
        equivalent number of activations and feed them to the tracker
        (IMPRESS / MOAT).  The ground-truth oracle counts them too, so
        the security tests cover the amplified threat.
        """
        if equivalent_acts <= 0:
            return
        bank = self.banks[bank_id]
        for _ in range(equivalent_acts):
            bank.oracle.on_activate(row)
            self.trackers[bank_id].on_activate(row, now_ps)
        self.stats.row_press_equivalents += equivalent_acts

    def alert_pending(self) -> bool:
        """True if any bank's tracker needs an ALERT right now."""
        for tracker in self._alertable:
            if tracker.wants_alert():
                return True
        return False

    def service_alert(self, now_ps: int, rfm_slots: int = None) -> int:
        """Run the mitigation phase of one ALERT; return rows mitigated.

        Every bank with queued work mitigates one aggressor per RFM
        issued -- this is what makes a single channel-wide ALERT
        efficient.  ``rfm_slots`` defaults to the configured
        ``abo.rfms_per_alert``.
        """
        if rfm_slots is None:
            rfm_slots = self.config.abo.rfms_per_alert
        self.stats.alerts_serviced += 1
        if self._m_alerts is not None:
            self._m_alerts.value += 1
        trace = self._tr
        total_victims = 0
        for _ in range(max(1, rfm_slots)):
            for bank, tracker in zip(self.banks, self.trackers):
                rows = tracker.on_mitigation_slot(
                    now_ps, MitigationSlotSource.ALERT)
                for row in rows:
                    victims = bank.mitigate(row, self.blast_radius)
                    self.stats.record_mitigation(
                        MitigationSlotSource.ALERT, victims)
                    total_victims += victims
                    self._note_mitigation(
                        MitigationSlotSource.ALERT, victims)
                    if trace is not None:
                        trace.instant(now_ps, "MITIGATE", self.subch,
                                      bank.bank_id)
        return total_victims

    def do_ref(self, now_ps: int) -> RefreshSlice:
        """Issue one REF to all banks (same RefPtr slice on each)."""
        slice_ = self.refresh.advance()
        self.stats.refs_issued += 1
        if self._m_refs is not None:
            self._m_refs.value += 1
        trace = self._tr
        # One membership-testable set shared by every bank's oracle (and
        # any tracker that wants it): a slice covers thousands of rows,
        # and per-row pops across all banks dominated the whole
        # simulation before this.
        swept = slice_.row_set()
        for bank, tracker in zip(self.banks, self.trackers):
            bank.refresh_rows(swept)
            tracker.on_ref_slice(slice_, now_ps)
            rows = tracker.on_mitigation_slot(
                now_ps, MitigationSlotSource.REF)
            for row in rows:
                victims = bank.mitigate(row, self.blast_radius)
                self.stats.record_mitigation(
                    MitigationSlotSource.REF, victims)
                self._note_mitigation(MitigationSlotSource.REF, victims)
                if trace is not None:
                    trace.instant(now_ps, "MITIGATE", self.subch,
                                  bank.bank_id)
            self.stats.demand_rows_refreshed += len(slice_.logical_rows)
        return slice_

    def rfm(self, bank_id: int, now_ps: int) -> int:
        """Give ``bank_id``'s tracker an RFM slot; return rows mitigated."""
        self.stats.rfms_issued += 1
        bank = self.banks[bank_id]
        trace = self._tr
        rows = self.trackers[bank_id].on_mitigation_slot(
            now_ps, MitigationSlotSource.RFM)
        for row in rows:
            victims = bank.mitigate(row, self.blast_radius)
            self.stats.record_mitigation(MitigationSlotSource.RFM, victims)
            self._note_mitigation(MitigationSlotSource.RFM, victims)
            if trace is not None:
                trace.instant(now_ps, "MITIGATE", self.subch, bank_id)
        return len(rows)

    def _note_mitigation(self, source: MitigationSlotSource,
                         victims: int) -> None:
        """Mirror one mitigation into the metrics registry, if any."""
        counters = self._m_mitigations
        if counters is not None:
            counters[source].value += 1
            self._m_victims.value += victims

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    def max_unmitigated_acts(self) -> int:
        """Worst unmitigated per-row ACT count across all banks (oracle)."""
        return max(b.oracle.max_unmitigated for b in self.banks)

    def attack_succeeded(self, threshold: int) -> bool:
        """Ground truth: did any row ever exceed ``threshold``?"""
        return any(b.oracle.attack_succeeded(threshold) for b in self.banks)
