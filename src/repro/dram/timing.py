"""Bank- and channel-level DDR5 timing constraint tracking.

The simulator is event-driven at command granularity: instead of ticking
a clock, each structure records the earliest picosecond at which the next
command of each kind may legally issue, and the memory controller takes
``max()`` over the applicable constraints.  This models exactly the
timing parameters the paper's results hinge on (tRP/tRC inflation under
PRAC, tFAW channel throughput, REF/RFM/ALERT blackouts) at a tiny
fraction of the cost of a cycle-accurate model.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, List

from repro.params import DramTimings


class BankTiming:
    """Earliest-issue-time bookkeeping for one bank."""

    __slots__ = ("timings", "_tRC", "_tRAS", "_tRP", "_last_act",
                 "_precharge_done", "_blocked_until", "_row_open")

    def __init__(self, timings: DramTimings) -> None:
        self.timings = timings
        self._tRC = timings.tRC
        self._tRAS = timings.tRAS
        self._tRP = timings.tRP
        self._last_act: int = -(10 ** 18)
        self._precharge_done: int = 0
        self._blocked_until: int = 0
        self._row_open: bool = False

    @property
    def row_open(self) -> bool:
        return self._row_open

    def earliest_activate(self, now: int) -> int:
        """Earliest time an ACT may issue (assumes row already closed)."""
        return max(now, self._last_act + self._tRC,
                   self._precharge_done, self._blocked_until)

    def earliest_precharge(self, now: int) -> int:
        """Earliest time a PRE may issue (tRAS after the ACT)."""
        return max(now, self._last_act + self._tRAS,
                   self._blocked_until)

    def activate(self, at: int) -> None:
        """Record an ACT at time ``at``."""
        self._last_act = at
        self._row_open = True

    def precharge(self, at: int) -> int:
        """Record a PRE at time ``at``; return its completion time."""
        self._row_open = False
        self._precharge_done = at + self._tRP
        return self._precharge_done

    def block_until(self, until: int) -> None:
        """Black out the bank (REF, RFM, ALERT stall) until ``until``."""
        if until > self._blocked_until:
            self._blocked_until = until
        self._row_open = False

    @property
    def blocked_until(self) -> int:
        return self._blocked_until

    @property
    def last_activate(self) -> int:
        return self._last_act


class FawTracker:
    """Rolling four-activate-window (tFAW) constraint for a subchannel.

    ACT bookings are kept in *time* order, not call order: an ACT that
    issues far in the future (its bank was blocked by REF/RFM) must not
    reserve the rolling window against ACTs to other banks that can
    legally issue sooner.  ``earliest_activate`` finds the first instant
    at or after the requested time whose trailing tFAW window holds
    fewer than four ACTs.
    """

    __slots__ = ("timings", "_tFAW", "_times")

    def __init__(self, timings: DramTimings) -> None:
        self.timings = timings
        self._tFAW = timings.tFAW
        self._times: List[int] = []

    def release_before(self, t: int) -> None:
        """Forget ACTs that predate every possible future window.

        Safe with any lower bound on future query times (the controller
        passes the monotone request-arrival clock).
        """
        times = self._times
        if times and times[0] < t - self._tFAW:
            idx = bisect.bisect_left(times, t - self._tFAW)
            if idx:
                del times[:idx]

    def earliest_activate(self, now: int) -> int:
        """Earliest time >= ``now`` the subchannel can accept an ACT.

        Bookings are out of call order, so inserting at ``t`` must not
        create five ACTs inside *any* tFAW window -- including windows
        anchored on bookings later than ``t``.  The check scans every
        five-element window of the sorted neighbourhood around the
        insertion point and slides ``t`` past the first violation.
        """
        faw = self._tFAW
        times = self._times
        if not times:
            return now
        t = now
        while True:
            i = bisect.bisect_right(times, t)
            lo = max(0, i - 4)
            neighborhood = times[lo:i] + [t] + times[i:i + 4]
            t_index = i - lo
            moved = False
            for j in range(len(neighborhood) - 4):
                if not j <= t_index <= j + 4:
                    continue
                span = neighborhood[j + 4] - neighborhood[j]
                if span < faw:
                    # Slide past the window's first booking.
                    t = neighborhood[j] + faw
                    moved = True
                    break
            if not moved:
                return t

    def activate(self, at: int) -> None:
        """Book an ACT at time ``at`` (kept in sorted order)."""
        bisect.insort(self._times, at)


class BusTracker:
    """Shared data bus: one tBURST slot per request, out-of-order slots.

    The data bus serves bursts in CAS-time order, not request-arrival
    order: a request whose CAS is delayed (bank conflict, REF) must not
    reserve the bus ahead of time and starve requests whose data is
    ready sooner.  Slots are therefore booked into the earliest *gap*
    at or after the desired time, with old gaps pruned as time advances.
    """

    __slots__ = ("timings", "_tBURST", "_slots", "busy_time")

    def __init__(self, timings: DramTimings) -> None:
        self.timings = timings
        self._tBURST = timings.tBURST
        self._slots: Deque[tuple] = deque()
        self.busy_time = 0

    def release_before(self, t: int) -> None:
        """Forget slots that end before ``t``.

        Safe to call with any lower bound on all *future* desired
        transfer times (the controller uses the monotone request-arrival
        clock); keeps the slot list short at high utilisation.
        """
        slots = self._slots
        while slots and slots[0][1] <= t:
            slots.popleft()

    def earliest_transfer(self, now: int) -> int:
        """Earliest start >= ``now`` with a free tBURST-sized gap."""
        burst = self._tBURST
        t = now
        for start, end in self._slots:
            if t + burst <= start:
                return t
            if t < end:
                t = end
        return t

    def transfer(self, at: int) -> int:
        """Book the first free slot at/after ``at``; return its end."""
        burst = self._tBURST
        start = self.earliest_transfer(at)
        end = start + burst
        slots = self._slots
        slots.append((start, end))
        if len(slots) > 1 and slots[-2][0] > start:
            self._slots = deque(sorted(slots))
        self.busy_time += burst
        return end

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` picoseconds the bus carried data."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class ChannelStall:
    """Channel-wide blackout windows (ALERT stalls affect every bank)."""

    __slots__ = ("_blocked_until", "total_stall")

    def __init__(self) -> None:
        self._blocked_until = 0
        self.total_stall = 0

    def earliest(self, now: int) -> int:
        """Earliest instant >= ``now`` outside the blackout."""
        return max(now, self._blocked_until)

    def stall(self, start: int, duration: int) -> int:
        """Stall the channel for ``duration`` starting at ``start``."""
        end = start + duration
        if end > self._blocked_until:
            self.total_stall += end - max(start, self._blocked_until) \
                if self._blocked_until > start else duration
            self._blocked_until = end
        return end

    @property
    def blocked_until(self) -> int:
        return self._blocked_until


def alert_sequence_times(assert_time: int, prologue: int, stall: int
                         ) -> "tuple[int, int]":
    """Return (stall_start, stall_end) for an ALERT asserted at a time.

    Per Figure 4, after ALERT asserts the MC may operate normally for the
    prologue, then must stall the channel for the stall period while the
    DRAM mitigates.
    """
    stall_start = assert_time + prologue
    return stall_start, stall_start + stall
