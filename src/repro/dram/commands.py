"""DDR5 command vocabulary used by the memory controller and device."""

from __future__ import annotations

import enum


class DramCommand(enum.Enum):
    """Commands the memory controller can issue to the DRAM device.

    Only the commands that matter for Rowhammer mitigation timing are
    modelled; data movement (RD/WR) is represented at request granularity.
    """

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"
    RFM = "refresh_management"
    ALERT = "alert_back_off"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DramCommand.{self.name}"
