"""Address mappings: MOP4 physical-address decoding and row-to-subarray.

Two distinct mappings live here:

1. :class:`AddressMapping` -- how the memory controller splits a physical
   address into (subchannel, bank, row, column).  We implement the
   *Minimalist Open Page* (MOP) policy with 4 lines per row group, the
   best-performing policy for the paper's setup (Table III).

2. :class:`RowToSubarrayMapping` -- how the DRAM device places *logical*
   row numbers into physical subarray positions (Section IV-D).  This is
   what decides whether coarse-grained filtering sees workload locality
   concentrated (Sequential) or spread out (Strided).

The reproduction works in terms of a bank-local **physical row index**
``p`` in ``[0, rows_per_bank)``: ``p // rows_per_subarray`` is the
subarray, ``p % rows_per_subarray`` the position inside it.  Rowhammer
adjacency (who hammers whom) is adjacency in ``p``, *not* in the logical
row number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.params import DramGeometry


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates."""

    subchannel: int
    bank: int
    row: int
    column: int

    @property
    def global_bank(self) -> int:
        """Bank id unique across subchannels."""
        return self.subchannel * 1_000_000 + self.bank  # pragma: no cover


class AddressMapping:
    """MOP-style physical address to DRAM coordinate mapping.

    Bit layout from the least-significant line-address bit upward::

        [mop_lines bits: column low] [1 bit: subchannel] [bank bits]
        [column high bits] [row bits]

    Mapping ``mop_lines`` consecutive cache lines to the same row exploits
    short-range spatial locality, while striping groups across banks and
    subchannels recovers bank-level parallelism (MOP4 in the paper).
    """

    def __init__(self, geometry: DramGeometry = DramGeometry(),
                 line_bytes: int = 64, mop_lines: int = 4) -> None:
        if mop_lines & (mop_lines - 1):
            raise ValueError("mop_lines must be a power of two")
        self.geometry = geometry
        self.line_bytes = line_bytes
        self.mop_lines = mop_lines
        self._lines_per_row = geometry.row_bytes // line_bytes
        self._col_low_bits = mop_lines.bit_length() - 1
        self._subch_bits = (geometry.subchannels - 1).bit_length()
        self._bank_bits = (geometry.banks_per_subchannel - 1).bit_length()
        high_cols = self._lines_per_row // mop_lines
        self._col_high_bits = (high_cols - 1).bit_length()

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte-granularity physical address."""
        line = address // self.line_bytes
        col_low = line & (self.mop_lines - 1)
        line >>= self._col_low_bits
        subch = line & ((1 << self._subch_bits) - 1)
        line >>= self._subch_bits
        bank = line & ((1 << self._bank_bits) - 1)
        line >>= self._bank_bits
        col_high = line & ((1 << self._col_high_bits) - 1)
        line >>= self._col_high_bits
        row = line % self.geometry.rows_per_bank
        column = (col_high << self._col_low_bits) | col_low
        return DecodedAddress(subchannel=subch, bank=bank, row=row,
                              column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (used by tests and attack kernels)."""
        col_low = decoded.column & (self.mop_lines - 1)
        col_high = decoded.column >> self._col_low_bits
        line = decoded.row
        line = (line << self._col_high_bits) | col_high
        line = (line << self._bank_bits) | decoded.bank
        line = (line << self._subch_bits) | decoded.subchannel
        line = (line << self._col_low_bits) | col_low
        return line * self.line_bytes


class RowToSubarrayMapping:
    """Base class: maps logical row numbers to physical row indices."""

    def __init__(self, geometry: DramGeometry = DramGeometry()) -> None:
        self.geometry = geometry

    def physical_index(self, row: int) -> int:
        """Bank-local physical row index of logical row ``row``."""
        raise NotImplementedError

    def physical_indices(self, rows: Sequence[int]) -> List[int]:
        """Physical indices of a batch of logical rows.

        Bulk twin of :meth:`physical_index` for the deferred-ACT paths;
        subclasses override it with hoisted geometry lookups.
        """
        return [self.physical_index(r) for r in rows]

    def physical_indices_array(self, rows):
        """Physical indices of a numpy row array (vector-kernel path).

        ``rows`` is a 1-D integer ndarray; the result is an ndarray of
        the same length.  The base implementation round-trips through
        :meth:`physical_indices`; subclasses override it with
        closed-form ufunc arithmetic so a whole deferred run maps in
        one gather.
        """
        return _np.asarray(self.physical_indices(rows.tolist()),
                           dtype=_np.int64)

    def logical_row(self, physical: int) -> int:
        """Inverse of :meth:`physical_index`."""
        raise NotImplementedError

    def logical_rows(self, start: int, end: int) -> List[int]:
        """Logical rows of the physical index range ``[start, end)``.

        The refresh scheduler sweeps contiguous physical ranges every
        tREFI; subclasses override this with closed-form bulk
        construction so the sweep does not pay a Python call per row.
        """
        return [self.logical_row(p) for p in range(start, end)]

    def logical_rows_array(self, start: int, end: int):
        """Logical rows of ``[start, end)`` as a numpy ``int64`` array.

        Vector twin of :meth:`logical_rows`; the base implementation
        converts the list form, subclasses compute the whole range
        with ufunc arithmetic.
        """
        return _np.asarray(self.logical_rows(start, end),
                           dtype=_np.int64)

    def subarray_of(self, row: int) -> int:
        """Subarray that logical row ``row`` physically lives in."""
        return self.physical_index(row) // self.geometry.rows_per_subarray

    def physical_neighbors(self, row: int, blast_radius: int = 2) -> List[int]:
        """Logical rows physically adjacent to ``row`` (the RH victims).

        Neighbours never cross a subarray boundary: subarrays are
        electrically isolated, so the blast radius is clamped at the
        subarray edge.
        """
        p = self.physical_index(row)
        sa = p // self.geometry.rows_per_subarray
        lo = sa * self.geometry.rows_per_subarray
        hi = lo + self.geometry.rows_per_subarray - 1
        neighbors = []
        for d in range(1, blast_radius + 1):
            if p - d >= lo:
                neighbors.append(self.logical_row(p - d))
            if p + d <= hi:
                neighbors.append(self.logical_row(p + d))
        return neighbors

    def aggressors_of(self, victim_row: int, blast_radius: int = 2
                      ) -> List[int]:
        """Logical rows whose activation disturbs ``victim_row``.

        Physical adjacency is symmetric, so this equals
        :meth:`physical_neighbors`.
        """
        return self.physical_neighbors(victim_row, blast_radius)


class SequentialR2SA(RowToSubarrayMapping):
    """Consecutive logical rows fill a subarray before moving to the next.

    The identity mapping: logical row ``r`` sits at physical index ``r``.
    Workload locality over consecutive pages therefore lands in a handful
    of subarrays, defeating coarse-grained filtering (Table VI).
    """

    def physical_index(self, row: int) -> int:
        return row

    def physical_indices(self, rows: Sequence[int]) -> List[int]:
        return list(rows)

    def physical_indices_array(self, rows):
        # Identity mapping: the input array *is* the answer.  Callers
        # treat the result as read-only, so no copy is taken.
        return rows

    def logical_row(self, physical: int) -> int:
        return physical

    def logical_rows(self, start: int, end: int) -> List[int]:
        return list(range(start, end))

    def logical_rows_array(self, start: int, end: int):
        return _np.arange(start, end, dtype=_np.int64)


class StridedR2SA(RowToSubarrayMapping):
    """Consecutive logical rows go to consecutive subarrays.

    Logical row ``r`` maps to subarray ``r % num_subarrays`` at position
    ``r // num_subarrays``: every ``num_subarrays``-th row shares a
    subarray.  Locality over consecutive pages is spread across all
    subarrays, which is what makes CGF effective (Table VI).
    """

    def physical_index(self, row: int) -> int:
        g = self.geometry
        subarray = row % g.subarrays_per_bank
        position = row // g.subarrays_per_bank
        return subarray * g.rows_per_subarray + position

    def physical_indices(self, rows: Sequence[int]) -> List[int]:
        g = self.geometry
        num_sa = g.subarrays_per_bank
        rows_per_sa = g.rows_per_subarray
        return [(r % num_sa) * rows_per_sa + r // num_sa for r in rows]

    def physical_indices_array(self, rows):
        g = self.geometry
        num_sa = g.subarrays_per_bank
        return (rows % num_sa) * g.rows_per_subarray + rows // num_sa

    def logical_row(self, physical: int) -> int:
        g = self.geometry
        subarray = physical // g.rows_per_subarray
        position = physical % g.rows_per_subarray
        return position * g.subarrays_per_bank + subarray

    def logical_rows(self, start: int, end: int) -> List[int]:
        # Within one subarray the physical range is contiguous in
        # `position`, so the logical rows form an arithmetic sequence
        # with stride `subarrays_per_bank` -- build each segment with a
        # C-speed range() instead of per-row divmod arithmetic.
        g = self.geometry
        rows_per_sa = g.rows_per_subarray
        num_sa = g.subarrays_per_bank
        out: List[int] = []
        p = start
        while p < end:
            subarray, position = divmod(p, rows_per_sa)
            seg_end = min(end, (subarray + 1) * rows_per_sa)
            first = position * num_sa + subarray
            out.extend(range(first, first + (seg_end - p) * num_sa,
                             num_sa))
            p = seg_end
        return out

    def logical_rows_array(self, start: int, end: int):
        g = self.geometry
        physical = _np.arange(start, end, dtype=_np.int64)
        return ((physical % g.rows_per_subarray) * g.subarrays_per_bank
                + physical // g.rows_per_subarray)
