"""Address mappings: MOP4 decoding, row-to-subarray, address spaces.

Three distinct mappings live here:

1. :class:`AddressMapping` -- how the memory controller splits a physical
   address into (subchannel, bank, row, column).  We implement the
   *Minimalist Open Page* (MOP) policy with 4 lines per row group, the
   best-performing policy for the paper's setup (Table III).

2. :class:`RowToSubarrayMapping` -- how the DRAM device places *logical*
   row numbers into physical subarray positions (Section IV-D).  This is
   what decides whether coarse-grained filtering sees workload locality
   concentrated (Sequential) or spread out (Strided).

3. :class:`AddressSpace` -- how a workload source's *logical* trace
   coordinates land on the shared physical ``(subchannel, bank, row)``
   geometry.  Every tenant in a multi-tenant scenario gets its own
   address space, so co-located attacker and victim streams hit the
   same banks through different row mappings (the inter-VM setting).
   :class:`BitFieldDecoder` is the companion litex
   ``DRAMAddressConverter``-style codec used by trace ingestion to
   split raw byte addresses into those coordinates.

The reproduction works in terms of a bank-local **physical row index**
``p`` in ``[0, rows_per_bank)``: ``p // rows_per_subarray`` is the
subarray, ``p % rows_per_subarray`` the position inside it.  Rowhammer
adjacency (who hammers whom) is adjacency in ``p``, *not* in the logical
row number.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.params import DramGeometry


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates."""

    subchannel: int
    bank: int
    row: int
    column: int

    @property
    def global_bank(self) -> int:
        """Bank id unique across subchannels."""
        return self.subchannel * 1_000_000 + self.bank  # pragma: no cover


class AddressMapping:
    """MOP-style physical address to DRAM coordinate mapping.

    Bit layout from the least-significant line-address bit upward::

        [mop_lines bits: column low] [1 bit: subchannel] [bank bits]
        [column high bits] [row bits]

    Mapping ``mop_lines`` consecutive cache lines to the same row exploits
    short-range spatial locality, while striping groups across banks and
    subchannels recovers bank-level parallelism (MOP4 in the paper).
    """

    def __init__(self, geometry: DramGeometry = DramGeometry(),
                 line_bytes: int = 64, mop_lines: int = 4) -> None:
        if mop_lines & (mop_lines - 1):
            raise ValueError("mop_lines must be a power of two")
        self.geometry = geometry
        self.line_bytes = line_bytes
        self.mop_lines = mop_lines
        self._lines_per_row = geometry.row_bytes // line_bytes
        self._col_low_bits = mop_lines.bit_length() - 1
        self._subch_bits = (geometry.subchannels - 1).bit_length()
        self._bank_bits = (geometry.banks_per_subchannel - 1).bit_length()
        high_cols = self._lines_per_row // mop_lines
        self._col_high_bits = (high_cols - 1).bit_length()

    def decode(self, address: int) -> DecodedAddress:
        """Decode a byte-granularity physical address."""
        line = address // self.line_bytes
        col_low = line & (self.mop_lines - 1)
        line >>= self._col_low_bits
        subch = line & ((1 << self._subch_bits) - 1)
        line >>= self._subch_bits
        bank = line & ((1 << self._bank_bits) - 1)
        line >>= self._bank_bits
        col_high = line & ((1 << self._col_high_bits) - 1)
        line >>= self._col_high_bits
        row = line % self.geometry.rows_per_bank
        column = (col_high << self._col_low_bits) | col_low
        return DecodedAddress(subchannel=subch, bank=bank, row=row,
                              column=column)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (used by tests and attack kernels)."""
        col_low = decoded.column & (self.mop_lines - 1)
        col_high = decoded.column >> self._col_low_bits
        line = decoded.row
        line = (line << self._col_high_bits) | col_high
        line = (line << self._bank_bits) | decoded.bank
        line = (line << self._subch_bits) | decoded.subchannel
        line = (line << self._col_low_bits) | col_low
        return line * self.line_bytes


class RowToSubarrayMapping:
    """Base class: maps logical row numbers to physical row indices."""

    def __init__(self, geometry: DramGeometry = DramGeometry()) -> None:
        self.geometry = geometry

    def physical_index(self, row: int) -> int:
        """Bank-local physical row index of logical row ``row``."""
        raise NotImplementedError

    def physical_indices(self, rows: Sequence[int]) -> List[int]:
        """Physical indices of a batch of logical rows.

        Bulk twin of :meth:`physical_index` for the deferred-ACT paths;
        subclasses override it with hoisted geometry lookups.
        """
        return [self.physical_index(r) for r in rows]

    def physical_indices_array(self, rows):
        """Physical indices of a numpy row array (vector-kernel path).

        ``rows`` is a 1-D integer ndarray; the result is an ndarray of
        the same length.  The base implementation round-trips through
        :meth:`physical_indices`; subclasses override it with
        closed-form ufunc arithmetic so a whole deferred run maps in
        one gather.
        """
        return _np.asarray(self.physical_indices(rows.tolist()),
                           dtype=_np.int64)

    def logical_row(self, physical: int) -> int:
        """Inverse of :meth:`physical_index`."""
        raise NotImplementedError

    def logical_rows(self, start: int, end: int) -> List[int]:
        """Logical rows of the physical index range ``[start, end)``.

        The refresh scheduler sweeps contiguous physical ranges every
        tREFI; subclasses override this with closed-form bulk
        construction so the sweep does not pay a Python call per row.
        """
        return [self.logical_row(p) for p in range(start, end)]

    def logical_rows_array(self, start: int, end: int):
        """Logical rows of ``[start, end)`` as a numpy ``int64`` array.

        Vector twin of :meth:`logical_rows`; the base implementation
        converts the list form, subclasses compute the whole range
        with ufunc arithmetic.
        """
        return _np.asarray(self.logical_rows(start, end),
                           dtype=_np.int64)

    def subarray_of(self, row: int) -> int:
        """Subarray that logical row ``row`` physically lives in."""
        return self.physical_index(row) // self.geometry.rows_per_subarray

    def physical_neighbors(self, row: int, blast_radius: int = 2) -> List[int]:
        """Logical rows physically adjacent to ``row`` (the RH victims).

        Neighbours never cross a subarray boundary: subarrays are
        electrically isolated, so the blast radius is clamped at the
        subarray edge.
        """
        p = self.physical_index(row)
        sa = p // self.geometry.rows_per_subarray
        lo = sa * self.geometry.rows_per_subarray
        hi = lo + self.geometry.rows_per_subarray - 1
        neighbors = []
        for d in range(1, blast_radius + 1):
            if p - d >= lo:
                neighbors.append(self.logical_row(p - d))
            if p + d <= hi:
                neighbors.append(self.logical_row(p + d))
        return neighbors

    def aggressors_of(self, victim_row: int, blast_radius: int = 2
                      ) -> List[int]:
        """Logical rows whose activation disturbs ``victim_row``.

        Physical adjacency is symmetric, so this equals
        :meth:`physical_neighbors`.
        """
        return self.physical_neighbors(victim_row, blast_radius)


class SequentialR2SA(RowToSubarrayMapping):
    """Consecutive logical rows fill a subarray before moving to the next.

    The identity mapping: logical row ``r`` sits at physical index ``r``.
    Workload locality over consecutive pages therefore lands in a handful
    of subarrays, defeating coarse-grained filtering (Table VI).
    """

    def physical_index(self, row: int) -> int:
        return row

    def physical_indices(self, rows: Sequence[int]) -> List[int]:
        return list(rows)

    def physical_indices_array(self, rows):
        # Identity mapping: the input array *is* the answer.  Callers
        # treat the result as read-only, so no copy is taken.
        return rows

    def logical_row(self, physical: int) -> int:
        return physical

    def logical_rows(self, start: int, end: int) -> List[int]:
        return list(range(start, end))

    def logical_rows_array(self, start: int, end: int):
        return _np.arange(start, end, dtype=_np.int64)


class StridedR2SA(RowToSubarrayMapping):
    """Consecutive logical rows go to consecutive subarrays.

    Logical row ``r`` maps to subarray ``r % num_subarrays`` at position
    ``r // num_subarrays``: every ``num_subarrays``-th row shares a
    subarray.  Locality over consecutive pages is spread across all
    subarrays, which is what makes CGF effective (Table VI).
    """

    def physical_index(self, row: int) -> int:
        g = self.geometry
        subarray = row % g.subarrays_per_bank
        position = row // g.subarrays_per_bank
        return subarray * g.rows_per_subarray + position

    def physical_indices(self, rows: Sequence[int]) -> List[int]:
        g = self.geometry
        num_sa = g.subarrays_per_bank
        rows_per_sa = g.rows_per_subarray
        return [(r % num_sa) * rows_per_sa + r // num_sa for r in rows]

    def physical_indices_array(self, rows):
        g = self.geometry
        num_sa = g.subarrays_per_bank
        return (rows % num_sa) * g.rows_per_subarray + rows // num_sa

    def logical_row(self, physical: int) -> int:
        g = self.geometry
        subarray = physical // g.rows_per_subarray
        position = physical % g.rows_per_subarray
        return position * g.subarrays_per_bank + subarray

    def logical_rows(self, start: int, end: int) -> List[int]:
        # Within one subarray the physical range is contiguous in
        # `position`, so the logical rows form an arithmetic sequence
        # with stride `subarrays_per_bank` -- build each segment with a
        # C-speed range() instead of per-row divmod arithmetic.
        g = self.geometry
        rows_per_sa = g.rows_per_subarray
        num_sa = g.subarrays_per_bank
        out: List[int] = []
        p = start
        while p < end:
            subarray, position = divmod(p, rows_per_sa)
            seg_end = min(end, (subarray + 1) * rows_per_sa)
            first = position * num_sa + subarray
            out.extend(range(first, first + (seg_end - p) * num_sa,
                             num_sa))
            p = seg_end
        return out

    def logical_rows_array(self, start: int, end: int):
        g = self.geometry
        physical = _np.arange(start, end, dtype=_np.int64)
        return ((physical % g.rows_per_subarray) * g.subarrays_per_bank
                + physical // g.rows_per_subarray)


class AddressSpace:
    """Per-tenant translation of logical trace coordinates to geometry.

    Workload sources emit *logical* ``(subchannel, bank, row)`` tuples;
    an address space decides where those land physically.  Identity is
    the classic single-tenant case.  Non-identity spaces model distinct
    guest physical maps sharing one device: the translation is a
    bijection per coordinate (rows within a bank, banks within a
    subchannel), so two tenants never alias unless their spaces do.

    Both a scalar path (:meth:`translate`, consumed entry-at-a-time by
    the event kernel's chunk pipeline) and a numpy path
    (:meth:`translate_arrays`, consumed by the array/vector chunk fast
    path) are provided, and they must agree element-for-element -- that
    is what keeps the event/array/vector backends bit-identical when a
    translated workload runs under each.  Rows and banks outside the
    geometry are reduced modulo the geometry first, in both paths.
    """

    name = "identity"

    def __init__(self, geometry: DramGeometry = DramGeometry()) -> None:
        self.geometry = geometry

    def translate(self, subchannel: int, bank: int, row: int
                  ) -> Tuple[int, int, int]:
        """Physical ``(subchannel, bank, row)`` of one logical tuple."""
        raise NotImplementedError

    def translate_arrays(self, subchannels, banks, rows):
        """Array twin of :meth:`translate` over parallel ndarrays.

        The base implementation round-trips through the scalar path so
        custom subclasses only have to write :meth:`translate`;
        built-in spaces override it with ufunc arithmetic or a single
        fancy-indexed gather.
        """
        out_s = _np.empty(len(subchannels), dtype=_np.int64)
        out_b = _np.empty(len(banks), dtype=_np.int64)
        out_r = _np.empty(len(rows), dtype=_np.int64)
        translate = self.translate
        for i, (s, b, r) in enumerate(zip(subchannels.tolist(),
                                          banks.tolist(),
                                          rows.tolist())):
            out_s[i], out_b[i], out_r[i] = translate(s, b, r)
        return out_s, out_b, out_r


class IdentityAddressSpace(AddressSpace):
    """Logical coordinates *are* physical coordinates (single tenant)."""

    name = "identity"

    def translate(self, subchannel: int, bank: int, row: int
                  ) -> Tuple[int, int, int]:
        return (subchannel, bank, row)

    def translate_arrays(self, subchannels, banks, rows):
        # Identity: the inputs are the answer; callers treat results
        # as read-only, so no copies are taken.
        return subchannels, banks, rows


class StridedAddressSpace(AddressSpace):
    """Modular-affine row remap with an optional bank rotation.

    Logical row ``r`` lands at ``(r * stride + row_offset) % rows`` and
    logical bank ``b`` at ``(b + bank_offset) % banks``.  ``stride``
    must be odd: row counts are powers of two, so odd strides (and only
    odd strides) make the affine map a bijection.  A stride of 1 with a
    nonzero offset models a simple base-offset guest mapping; larger
    strides interleave a tenant's consecutive rows across the bank.
    """

    name = "strided"

    def __init__(self, geometry: DramGeometry = DramGeometry(),
                 stride: int = 1, row_offset: int = 0,
                 bank_offset: int = 0) -> None:
        super().__init__(geometry)
        if stride % 2 == 0:
            raise ValueError(
                f"stride must be odd for a bijective row map over a "
                f"power-of-two bank, got {stride}")
        self.stride = stride
        self.row_offset = row_offset
        self.bank_offset = bank_offset

    def translate(self, subchannel: int, bank: int, row: int
                  ) -> Tuple[int, int, int]:
        g = self.geometry
        return (subchannel,
                (bank + self.bank_offset) % g.banks_per_subchannel,
                (row * self.stride + self.row_offset) % g.rows_per_bank)

    def translate_arrays(self, subchannels, banks, rows):
        g = self.geometry
        return (subchannels,
                (banks + self.bank_offset) % g.banks_per_subchannel,
                (rows * self.stride + self.row_offset) % g.rows_per_bank)


class PermutedAddressSpace(AddressSpace):
    """Seeded pseudo-random bijection of rows and banks.

    A precomputed permutation table (one shuffle of ``rows_per_bank``
    entries, shared by all banks, plus a bank shuffle) models a guest
    whose physical frames were allocated with no structure at all --
    the adversarial placement for locality-based arguments.  The same
    seed always yields the same table, so results are reproducible and
    cacheable; distinct seeds give tenants disjoint-looking layouts.
    """

    name = "permuted"

    def __init__(self, geometry: DramGeometry = DramGeometry(),
                 seed: int = 0) -> None:
        super().__init__(geometry)
        self.seed = seed
        # Mix the seed so spaces don't correlate with other consumers
        # of small integer seeds; int seeding is hash-stable across
        # processes (str/tuple seeding is not).
        rng = random.Random(0x5EED_AD0 ^ (seed * 0x9E37_79B1))
        row_table = list(range(geometry.rows_per_bank))
        rng.shuffle(row_table)
        bank_table = list(range(geometry.banks_per_subchannel))
        rng.shuffle(bank_table)
        self._row_table = row_table
        self._bank_table = bank_table
        if _np is not None:
            self._row_table_np = _np.asarray(row_table, dtype=_np.int64)
            self._bank_table_np = _np.asarray(bank_table,
                                              dtype=_np.int64)

    def translate(self, subchannel: int, bank: int, row: int
                  ) -> Tuple[int, int, int]:
        g = self.geometry
        return (subchannel,
                self._bank_table[bank % g.banks_per_subchannel],
                self._row_table[row % g.rows_per_bank])

    def translate_arrays(self, subchannels, banks, rows):
        g = self.geometry
        return (subchannels,
                self._bank_table_np[banks % g.banks_per_subchannel],
                self._row_table_np[rows % g.rows_per_bank])


@dataclass(frozen=True)
class AddressSpaceSpec:
    """Describable recipe for an :class:`AddressSpace`.

    Session jobs must be describable (plain comparable fields, no
    bound tables), so tenants and trace-replay jobs carry this spec
    and :meth:`build` the concrete space -- permutation tables and all
    -- at execution time.
    """

    kind: str = "identity"
    stride: int = 1
    row_offset: int = 0
    bank_offset: int = 0
    seed: int = 0

    def build(self, geometry: DramGeometry = DramGeometry()
              ) -> AddressSpace:
        """Instantiate the described space over ``geometry``."""
        return make_address_space(self, geometry)


def make_address_space(spec: AddressSpaceSpec,
                       geometry: DramGeometry = DramGeometry()
                       ) -> AddressSpace:
    """Concrete address space for ``spec`` over ``geometry``."""
    if spec.kind == "identity":
        return IdentityAddressSpace(geometry)
    if spec.kind == "strided":
        return StridedAddressSpace(geometry, stride=spec.stride,
                                   row_offset=spec.row_offset,
                                   bank_offset=spec.bank_offset)
    if spec.kind == "permuted":
        return PermutedAddressSpace(geometry, seed=spec.seed)
    raise ValueError(
        f"unknown address-space kind {spec.kind!r}; expected one of "
        f"'identity', 'strided', 'permuted'")


class BitFieldDecoder:
    """litex ``DRAMAddressConverter``-style bit-field address codec.

    Splits a byte-granularity address into named DRAM coordinate
    fields laid out LSB-to-MSB after a fixed line-offset shift.  Trace
    ingestion uses it to turn DRAMSim3-style command addresses into
    native ``(subchannel, bank, row)`` tuples; :meth:`encode_bus` is
    the inverse, mirroring litex's ``converter.encode_bus(bank=...,
    row=..., col=...)`` idiom, and is what the test fixtures are built
    with.
    """

    def __init__(self, fields: Sequence[Tuple[str, int]],
                 line_bytes: int = 64) -> None:
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        for name, bits in fields:
            if bits <= 0:
                raise ValueError(
                    f"field {name!r} must span at least one bit")
        self.fields = tuple((str(name), int(bits))
                            for name, bits in fields)
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1

    @classmethod
    def for_geometry(cls, geometry: DramGeometry = DramGeometry(),
                     line_bytes: int = 64) -> "BitFieldDecoder":
        """The natural ``[column][subchannel][bank][row]`` layout.

        Column bits cover one row's cache lines, subchannel and bank
        bits sit above them, and row bits occupy the top -- the layout
        the repo's trace fixtures are encoded with.
        """
        lines_per_row = geometry.row_bytes // line_bytes
        return cls(
            fields=(
                ("column", (lines_per_row - 1).bit_length()),
                ("subchannel", (geometry.subchannels - 1).bit_length()),
                ("bank",
                 (geometry.banks_per_subchannel - 1).bit_length()),
                ("row", (geometry.rows_per_bank - 1).bit_length()),
            ),
            line_bytes=line_bytes)

    @property
    def width(self) -> int:
        """Total significant byte-address bits (fields + line offset)."""
        return sum(bits for _, bits in self.fields) + self._line_shift

    def decode(self, address: int) -> Dict[str, int]:
        """Field values of one byte address, keyed by field name."""
        value = address >> self._line_shift
        decoded: Dict[str, int] = {}
        for name, bits in self.fields:
            decoded[name] = value & ((1 << bits) - 1)
            value >>= bits
        return decoded

    def decode_arrays(self, addresses) -> Dict[str, "object"]:
        """Array twin of :meth:`decode` over an int64 ndarray."""
        value = _np.asarray(addresses, dtype=_np.int64) >> \
            self._line_shift
        decoded = {}
        for name, bits in self.fields:
            decoded[name] = value & ((1 << bits) - 1)
            value = value >> bits
        return decoded

    def encode_bus(self, **field_values: int) -> int:
        """Byte address with the named fields set (inverse of decode).

        Unknown field names are rejected; omitted fields default to 0.
        """
        unknown = set(field_values) - {n for n, _ in self.fields}
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)}; decoder has "
                f"{[n for n, _ in self.fields]}")
        value = 0
        for name, bits in reversed(self.fields):
            field = field_values.get(name, 0)
            if field >> bits:
                raise ValueError(
                    f"field {name!r} value {field} does not fit in "
                    f"{bits} bits")
            value = (value << bits) | field
        return value << self._line_shift
