"""Bank state and the ground-truth per-row activation oracle.

The :class:`RowActivationOracle` is the reproduction's *verification*
mechanism: it counts, for every row, the activations received since that
row was last refreshed (demand refresh) or mitigated (victim refresh of
its neighbours).  The paper's attack-success criterion (Section II-A) is
"any row receives more than the threshold number of activations without
any intervening mitigation or refresh", which is exactly what
:meth:`RowActivationOracle.max_unmitigated` exposes.

The oracle is **not** part of any defence -- defences only see what their
own structures record.  Security tests drive attacks against a defence
and then ask the oracle whether the attack ever succeeded.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.dram.mapping import RowToSubarrayMapping, SequentialR2SA
from repro.obs import metrics as _metrics
from repro.params import DramGeometry


class RowActivationOracle:
    """Ground truth: unmitigated activation counts per (logical) row."""

    __slots__ = ("geometry", "mapping", "_counts", "_max_seen", "_max_row")

    def __init__(self, geometry: DramGeometry = DramGeometry(),
                 mapping: Optional[RowToSubarrayMapping] = None) -> None:
        self.geometry = geometry
        self.mapping = mapping if mapping is not None else SequentialR2SA(
            geometry)
        self._counts: Dict[int, int] = {}
        self._max_seen = 0
        self._max_row: Optional[int] = None

    def on_activate(self, row: int) -> int:
        """Record one activation of ``row``; return its running count."""
        count = self._counts.get(row, 0) + 1
        self._counts[row] = count
        if count > self._max_seen:
            self._max_seen = count
            self._max_row = row
        return count

    def on_activates(self, rows: Sequence[int]) -> None:
        """Record a run of activations (bulk form of :meth:`on_activate`).

        Increments apply in arrival order, so the running max (and the
        row that reached it) land exactly as entry-at-a-time counting
        would leave them.
        """
        counts = self._counts
        get = counts.get
        max_seen = self._max_seen
        max_row = self._max_row
        for row in rows:
            count = get(row, 0) + 1
            counts[row] = count
            if count > max_seen:
                max_seen = count
                max_row = row
        self._max_seen = max_seen
        self._max_row = max_row

    def on_activates_array(self, rows) -> None:
        """Record a run delivered as a numpy array (vector-kernel path).

        Grouped arithmetic replaces the per-ACT dict walk: each
        distinct row's count advances by its occurrence count in one
        update, and the running max is reconstructed exactly -- a new
        maximum is credited to the row that *reached* it first in
        arrival order, matching entry-at-a-time counting.
        """
        uniq, occurrences = _np.unique(rows, return_counts=True)
        counts = self._counts
        get = counts.get
        uniq_list = uniq.tolist()
        occ_list = occurrences.tolist()
        finals = []
        for row, occ in zip(uniq_list, occ_list):
            final = get(row, 0) + occ
            counts[row] = final
            finals.append(final)
        peak = max(finals)
        if peak <= self._max_seen:
            return
        # A row with prior count ``c`` reaches the new peak at its
        # (peak - c)-th occurrence in the run; with several candidates
        # the earliest such position owns the running max.
        best_pos = -1
        best_row = None
        for row, final, occ in zip(uniq_list, finals, occ_list):
            if final != peak:
                continue
            needed = peak - (final - occ)
            pos = int(_np.flatnonzero(rows == row)[needed - 1])
            if best_pos < 0 or pos < best_pos:
                best_pos = pos
                best_row = row
        self._max_seen = peak
        self._max_row = best_row

    def on_row_refreshed(self, row: int) -> None:
        """Demand refresh of ``row`` resets its unmitigated count."""
        self._counts.pop(row, None)

    def on_rows_refreshed(self, rows: Iterable[int]) -> None:
        """Demand refresh of several rows at once.

        A REF slice covers thousands of rows while the oracle tracks
        counts only for the handful of rows activated since their last
        refresh, so when ``rows`` supports O(1) membership tests the
        intersection is walked from the (small) counts side instead of
        popping every swept row individually.
        """
        counts = self._counts
        if isinstance(rows, (set, frozenset)) and len(counts) < len(rows):
            for row in [r for r in counts if r in rows]:
                del counts[row]
            return
        for row in rows:
            counts.pop(row, None)

    def on_mitigation(self, aggressor_row: int, blast_radius: int = 2
                      ) -> None:
        """Victim refresh of ``aggressor_row``'s neighbours.

        Refreshing the victims nullifies the disturbance the aggressor has
        accumulated against them, so the aggressor's unmitigated count
        resets.  The victims' own aggressor potential is unaffected (their
        cells were refreshed, not their neighbours').
        """
        self._counts.pop(aggressor_row, None)

    def count(self, row: int) -> int:
        """Current unmitigated activation count of ``row``."""
        return self._counts.get(row, 0)

    @property
    def max_unmitigated(self) -> int:
        """Highest unmitigated count any row has *ever* reached."""
        return self._max_seen

    @property
    def max_row(self) -> Optional[int]:
        """The row that reached :attr:`max_unmitigated` (None if none)."""
        return self._max_row

    def current_max(self) -> int:
        """Highest unmitigated count among rows *right now*."""
        return max(self._counts.values(), default=0)

    def attack_succeeded(self, threshold: int) -> bool:
        """True if any row ever exceeded ``threshold`` unmitigated ACTs."""
        return self._max_seen > threshold


class Bank:
    """Per-bank DRAM state: open row, activation bookkeeping, oracle."""

    __slots__ = ("bank_id", "geometry", "mapping", "open_row", "oracle",
                 "total_activations", "total_mitigations",
                 "victim_rows_refreshed", "_rows_per_bank",
                 "_m_acts", "_m_refs")

    def __init__(self, bank_id: int,
                 geometry: DramGeometry = DramGeometry(),
                 mapping: Optional[RowToSubarrayMapping] = None,
                 subch: int = 0) -> None:
        self.bank_id = bank_id
        self.geometry = geometry
        self.mapping = mapping if mapping is not None else SequentialR2SA(
            geometry)
        self.open_row: Optional[int] = None
        self.oracle = RowActivationOracle(geometry, self.mapping)
        self.total_activations = 0
        self.total_mitigations = 0
        self.victim_rows_refreshed = 0
        self._rows_per_bank = geometry.rows_per_bank
        # Observability binds at construction: per-bank ACT/REF counters
        # are prefetched so the off path is a single None check.
        reg = _metrics._ACTIVE
        self._m_acts = reg.counter("dram.bank.acts", subch, bank_id) \
            if reg is not None else None
        self._m_refs = reg.counter("dram.bank.refs", subch, bank_id) \
            if reg is not None else None

    def activate(self, row: int) -> None:
        """Open ``row`` (the caller has already enforced timing)."""
        if not 0 <= row < self._rows_per_bank:
            raise ValueError(
                f"row {row} out of range for bank with "
                f"{self.geometry.rows_per_bank} rows")
        self.open_row = row
        self.total_activations += 1
        self.oracle.on_activate(row)
        counter = self._m_acts
        if counter is not None:
            counter.value += 1

    def activate_many(self, rows: Sequence[int]) -> None:
        """Open each row of a deferred run in order (bulk activate).

        Equivalent to calling :meth:`activate` per row, except that an
        out-of-range row is reported before any of the run is applied
        (the array backend validates eagerly; arrival order within a
        valid run is preserved everywhere it matters).
        """
        if not rows:
            return
        if not 0 <= min(rows) <= max(rows) < self._rows_per_bank:
            bad = next(r for r in rows
                       if not 0 <= r < self._rows_per_bank)
            raise ValueError(
                f"row {bad} out of range for bank with "
                f"{self.geometry.rows_per_bank} rows")
        self.open_row = rows[-1]
        self.total_activations += len(rows)
        self.oracle.on_activates(rows)
        counter = self._m_acts
        if counter is not None:
            counter.value += len(rows)

    def activate_many_array(self, rows) -> None:
        """Bulk activate over a numpy row array (vector-kernel path).

        Same semantics as :meth:`activate_many` -- eager validation,
        then arrival-order oracle counting -- with the range check and
        the counting done by ufuncs instead of Python loops.
        """
        n = len(rows)
        if not n:
            return
        if not 0 <= int(rows.min()) <= int(rows.max()) \
                < self._rows_per_bank:
            bad_mask = (rows < 0) | (rows >= self._rows_per_bank)
            bad = int(rows[int(_np.argmax(bad_mask))])
            raise ValueError(
                f"row {bad} out of range for bank with "
                f"{self.geometry.rows_per_bank} rows")
        self.open_row = int(rows[-1])
        self.total_activations += n
        self.oracle.on_activates_array(rows)
        counter = self._m_acts
        if counter is not None:
            counter.value += n

    def precharge(self) -> None:
        """Close the open row (idempotent)."""
        self.open_row = None

    def mitigate(self, aggressor_row: int, blast_radius: int = 2) -> int:
        """Refresh the victims of ``aggressor_row``; return victim count."""
        if not 0 <= aggressor_row < self.geometry.rows_per_bank:
            raise ValueError(
                f"cannot mitigate row {aggressor_row}: bank has "
                f"{self.geometry.rows_per_bank} rows")
        victims = self.mapping.physical_neighbors(aggressor_row, blast_radius)
        self.oracle.on_mitigation(aggressor_row, blast_radius)
        self.total_mitigations += 1
        self.victim_rows_refreshed += len(victims)
        return len(victims)

    def refresh_rows(self, rows: Iterable[int]) -> None:
        """Demand-refresh ``rows`` (driven by the refresh scheduler)."""
        self.oracle.on_rows_refreshed(rows)
        counter = self._m_refs
        if counter is not None:
            counter.value += 1
