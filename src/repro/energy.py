"""DRAM energy accounting: command energies and mitigation overheads.

The paper reports energy at two levels: the *relative* refresh-power
overhead of victim refreshes (Figures 3 and 13) and absolute chip
power (Section VIII-B: MIRZA's SRAM adds 0.6 mW against ~240 mW of
DRAM chip power).  This module provides the standard command-energy
model behind such numbers so runs can report absolute energy too:

    E_total = N_act * (E_act + E_pre) + N_rd * E_rd
            + N_ref * E_ref + N_victim_rows * E_row_refresh
            + P_background * T

Default constants follow DDR5 datasheet-derived values used by
DRAMPower-style calculators (order-of-magnitude faithful; the paper's
results only depend on ratios).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import MitigationCosts

PJ = 1.0
NJ = 1000.0 * PJ
MW = 1.0  # milliwatts for background power


@dataclass(frozen=True)
class EnergyParams:
    """Per-command energies (picojoules) and background power (mW)."""

    act_pre_pj: float = 220.0
    """One ACT + PRE pair (row open and close)."""

    read_pj: float = 150.0
    """One 64B read burst (column access + IO)."""

    ref_per_row_pj: float = 55.0
    """Refreshing one row (demand or victim)."""

    background_mw: float = 110.0
    """Standby + peripheral power per chip."""

    mirza_sram_mw: float = 0.6
    """MIRZA's RCT/queue SRAM (Section VIII-B, CACTI-7.0)."""

    chip_power_mw: float = 240.0
    """Typical total DRAM chip power the paper normalises against."""


@dataclass
class EnergyBreakdown:
    """Absolute energy of one simulated window, in picojoules."""

    activation_pj: float
    read_pj: float
    demand_refresh_pj: float
    victim_refresh_pj: float
    background_pj: float

    @property
    def total_pj(self) -> float:
        return (self.activation_pj + self.read_pj
                + self.demand_refresh_pj + self.victim_refresh_pj
                + self.background_pj)

    @property
    def refresh_power_overhead(self) -> float:
        """Victim refresh relative to demand refresh (the paper's
        Figure 3/13 metric, now in energy terms)."""
        if self.demand_refresh_pj == 0:
            return 0.0
        return self.victim_refresh_pj / self.demand_refresh_pj

    @property
    def mitigation_fraction(self) -> float:
        """Share of total energy spent on victim refreshes."""
        if self.total_pj == 0:
            return 0.0
        return self.victim_refresh_pj / self.total_pj


def energy_of_run(result, params: EnergyParams = EnergyParams()
                  ) -> EnergyBreakdown:
    """Energy breakdown of a :class:`repro.cpu.system.SimResult`."""
    window_s = result.window_ps * 1e-12
    background = params.background_mw * 1e-3 * window_s * 1e12  # pJ
    return EnergyBreakdown(
        activation_pj=result.total_activations * params.act_pre_pj,
        read_pj=result.total_requests * params.read_pj,
        demand_refresh_pj=(result.demand_rows_refreshed
                           * params.ref_per_row_pj),
        victim_refresh_pj=(result.victim_rows_refreshed
                           * params.ref_per_row_pj),
        background_pj=background,
    )


def mirza_sram_power_fraction(params: EnergyParams = EnergyParams()
                              ) -> float:
    """MIRZA SRAM power relative to chip power (~0.25%, Section
    VIII-B)."""
    return params.mirza_sram_mw / params.chip_power_mw


def mitigation_energy_per_act(window: int, escape_probability: float,
                              costs: MitigationCosts = MitigationCosts(),
                              params: EnergyParams = EnergyParams()
                              ) -> float:
    """Expected victim-refresh energy per activation (pJ).

    ``window`` is the MINT window; ``escape_probability`` is 1.0 for
    plain MINT and the RCT escape rate for MIRZA -- making the Table
    VIII rate ratio directly an energy ratio.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not 0.0 <= escape_probability <= 1.0:
        raise ValueError("escape probability must be in [0, 1]")
    mitigations_per_act = escape_probability / window
    return (mitigations_per_act * costs.victims_per_mitigation
            * params.ref_per_row_pj)
