"""Timing, geometry, and system parameters for the MIRZA reproduction.

All times are integer **picoseconds** (``PS_PER_NS`` = 1000).  Using integers
end-to-end keeps the event-driven simulator exactly reproducible and immune
to float drift over multi-millisecond windows.

The default values come straight from Table I and Table III of the paper
(DDR5 specs for 6000AN parts), plus the ABO protocol constants of Figure 4:

======== ================================== ======== =========
Name     Meaning                            DDR5     PRAC mode
======== ================================== ======== =========
tRCD     time for performing an ACT         14 ns    14 ns
tRP      time to precharge an open row      14 ns    36 ns
tRAS     activate-to-precharge              32 ns    16 ns
tRC      successive ACTs to the same bank   46 ns    52 ns
tREFW    refresh window                     32 ms    --
tREFI    time between REF commands          3900 ns  --
tRFC     execution time of a REF            410 ns   --
======== ================================== ======== =========
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

PS_PER_NS = 1000
"""Picoseconds per nanosecond; the simulator's base clock unit is 1 ps."""

NS = PS_PER_NS
US = 1000 * NS
MS = 1000 * US


def ns(value: float) -> int:
    """Convert a nanosecond quantity to integer picoseconds."""
    return round(value * PS_PER_NS)


@dataclass(frozen=True)
class DramTimings:
    """DDR5 timing parameters in picoseconds (Table I of the paper)."""

    tRCD: int = ns(14)
    tRP: int = ns(14)
    tRAS: int = ns(32)
    tRC: int = ns(46)
    tREFW: int = 32 * MS
    tREFI: int = ns(3900)
    tRFC: int = ns(410)
    tFAW: int = ns(13.333)
    tCAS: int = ns(14)
    tBURST: int = ns(3)
    """Data-bus occupancy per 64B request (Section IX uses 3 ns/request)."""

    tRFM: int = ns(195)
    """Execution time of a same-bank RFM command (JESD79-5 RFMsb)."""

    @property
    def refs_per_trefw(self) -> int:
        """Number of REF commands issued in one refresh window (8192)."""
        return self.tREFW // self.tREFI

    @property
    def row_miss_latency(self) -> int:
        """Precharge + activate + CAS latency for a row-buffer conflict."""
        return self.tRP + self.tRCD + self.tCAS

    @property
    def row_hit_latency(self) -> int:
        """CAS latency when the requested row is already open."""
        return self.tCAS

    def with_prac(self) -> "DramTimings":
        """Return the PRAC-mode timing set (Table I, last column).

        PRAC inflates ``tRP`` (14 ns -> 36 ns) and ``tRC`` (46 ns -> 52 ns)
        to make room for the per-row counter read-modify-write, and shrinks
        ``tRAS`` (32 ns -> 16 ns).
        """
        return dataclasses.replace(self, tRP=ns(36), tRAS=ns(16), tRC=ns(52))


@dataclass(frozen=True)
class AboTimings:
    """ALERT-Back-Off protocol constants (Figure 4 / Table III)."""

    prologue: int = ns(180)
    """Time the MC may keep operating normally after ALERT asserts."""

    stall: int = ns(350)
    """Channel-wide stall during which the DRAM performs mitigation."""

    acts_during_prologue: int = 3
    """Maximum ACTs an attacker can land on one bank during the prologue."""

    epilogue_acts: int = 1
    """Mandatory ACTs before another ALERT can be asserted."""

    rfms_per_alert: int = 1
    """RFM commands the controller issues per ALERT (JEDEC allows
    1/2/4; the paper's MIRZA uses 1 -- Section V-E)."""

    @property
    def latency(self) -> int:
        """End-to-end ALERT latency (530 ns with a single RFM)."""
        return self.prologue + self.total_stall

    @property
    def total_stall(self) -> int:
        """Stall time of one ALERT: one stall period per RFM issued."""
        return self.stall * self.rfms_per_alert

    @property
    def acts_between_alerts(self) -> int:
        """Up to 4 ACTs can hit one bank between consecutive ALERTs."""
        return self.acts_during_prologue + self.epilogue_acts


@dataclass(frozen=True)
class DramGeometry:
    """Bank/row organisation of the evaluated 32 GB DDR5 system (Table III)."""

    banks_per_subchannel: int = 32
    subchannels: int = 2
    ranks: int = 1
    rows_per_bank: int = 128 * 1024
    row_bytes: int = 4096
    rows_per_subarray: int = 1024
    rows_per_ref: int = 16
    """Rows refreshed by one REF command (128K rows / 8192 REFs)."""

    @property
    def subarrays_per_bank(self) -> int:
        return self.rows_per_bank // self.rows_per_subarray

    @property
    def refs_per_subarray(self) -> int:
        """REF commands needed to sweep one subarray (64 for the default)."""
        return self.rows_per_subarray // self.rows_per_ref

    @property
    def total_banks(self) -> int:
        return self.banks_per_subchannel * self.subchannels * self.ranks

    @property
    def capacity_bytes(self) -> int:
        return self.total_banks * self.rows_per_bank * self.row_bytes


@dataclass(frozen=True)
class MitigationCosts:
    """Time/energy cost constants for victim refreshes."""

    mitigation_time: int = ns(280)
    """Time to mitigate one aggressor row (bounded refresh, JESD79-4B)."""

    victims_per_mitigation: int = 4
    """Rows refreshed per aggressor (blast radius 2 on each side)."""


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundling timings, geometry, and core counts.

    ``num_cores`` / ``rob_entries`` / ``issue_width`` follow Table III
    (8 cores, 4 GHz, 4-wide, 392-entry ROB, 16 MB shared LLC).
    """

    timings: DramTimings = DramTimings()
    abo: AboTimings = AboTimings()
    geometry: DramGeometry = DramGeometry()
    costs: MitigationCosts = MitigationCosts()
    num_cores: int = 8
    core_freq_ghz: float = 4.0
    issue_width: int = 4
    rob_entries: int = 392
    llc_bytes: int = 16 * 1024 * 1024
    llc_ways: int = 16
    line_bytes: int = 64

    def with_prac_timings(self) -> "SystemConfig":
        """System configuration with PRAC-mode DRAM timings."""
        return dataclasses.replace(self, timings=self.timings.with_prac())

    @property
    def core_cycle_ps(self) -> float:
        """Core clock period in picoseconds."""
        return PS_PER_NS / self.core_freq_ghz


@dataclass(frozen=True)
class SimScale:
    """Joint scaling of the observation window and window-relative knobs.

    ``time_scale = S`` shrinks the simulated refresh window to ``tREFW / S``.
    Quantities defined *per window* (per-region activation targets, the
    filtering threshold FTH) must shrink by the same factor so that the
    count-to-threshold ratios the paper's results depend on are preserved.
    ``S = 1`` reproduces the paper's full 32 ms configuration.
    """

    time_scale: int = 1

    def scaled_trefw(self, timings: DramTimings) -> int:
        """Length of the scaled observation window in picoseconds."""
        return timings.tREFW // self.time_scale

    def scaled_refs_per_window(self, timings: DramTimings) -> int:
        """REF commands falling inside one scaled window."""
        return max(1, timings.refs_per_trefw // self.time_scale)

    def scale_threshold(self, threshold: int) -> int:
        """Scale a per-window count threshold (e.g. FTH) down by S."""
        return max(1, threshold // self.time_scale)

    def scale_count(self, count: float) -> float:
        """Scale a per-window expected count (e.g. ACTs/subarray) down."""
        return count / self.time_scale


def max_acts_per_bank_per_trefw(timings: DramTimings = DramTimings()) -> int:
    """Worst-case ACTs one bank can absorb in a tREFW (~621K, Section IV-C).

    A single bank is limited by ``tRC``; REF commands steal
    ``refs * tRFC`` of the window.
    """
    ref_time = timings.refs_per_trefw * timings.tRFC
    return (timings.tREFW - ref_time) // timings.tRC


def max_acts_per_channel_per_trefw(
    timings: DramTimings = DramTimings(),
) -> int:
    """Channel-wide ACT ceiling imposed by tFAW (~8.8M, footnote 2)."""
    ref_time = timings.refs_per_trefw * timings.tRFC
    usable = timings.tREFW - ref_time
    return int(usable * 4 // timings.tFAW)
