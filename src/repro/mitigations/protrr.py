"""ProTRR: principled in-DRAM target row refresh (IEEE S&P 2022).

ProTRR is the other optimal counter-based in-DRAM tracker alongside
Mithril (Figure 1a).  We implement the classic Misra-Gries
*decrement-all* variant it is built on:

- a tracked row's counter increments on activation;
- an untracked activation with a full table decrements **every**
  counter by one (claiming an entry whose counter hits zero);
- at each mitigation opportunity the maximum-counter row is refreshed
  and its entry released.

The decrement-all discipline gives the textbook Misra-Gries guarantee:
a row with true count ``n`` over a window of ``N`` activations is
tracked with counter at least ``n - N/(k+1)``, which is what makes the
tracker *principled* -- its worst case (the Feinting attack) is
analytically bounded.  The cost is the same as Mithril's: thousands of
CAM entries per bank at low thresholds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mitigations.base import BankTracker, MitigationSlotSource


class ProTrrTracker(BankTracker):
    """Misra-Gries (decrement-all) tracker, mitigate-max under REF."""

    name = "protrr"

    def __init__(self, entries: int = 2048,
                 refs_per_mitigation: int = 1) -> None:
        if entries < 1:
            raise ValueError("need at least one entry")
        self.entries = entries
        self.refs_per_mitigation = refs_per_mitigation
        self._table: Dict[int, int] = {}
        self._refs_seen = 0
        self.decrements = 0

    def on_activate(self, row: int, now_ps: int) -> None:
        if row in self._table:
            self._table[row] += 1
            return
        if len(self._table) < self.entries:
            self._table[row] = 1
            return
        # Decrement-all: every counter drops by one; zeroed entries
        # are released (the incoming row claims one when available).
        self.decrements += 1
        zeroed = []
        for tracked in self._table:
            self._table[tracked] -= 1
            if self._table[tracked] == 0:
                zeroed.append(tracked)
        for tracked in zeroed:
            del self._table[tracked]
        if zeroed:
            self._table[row] = 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF:
            self._refs_seen += 1
            if self.refs_per_mitigation and \
                    self._refs_seen % self.refs_per_mitigation:
                return []
        if not self._table:
            return []
        row = max(self._table, key=lambda r: (self._table[r], -r))
        del self._table[row]
        return [row]

    def tracked_count(self, row: int) -> int:
        """Counter value for ``row`` (0 if untracked)."""
        return self._table.get(row, 0)

    def max_count(self) -> int:
        """Largest tracked counter (0 when empty)."""
        return max(self._table.values(), default=0)

    def storage_bits(self) -> int:
        """CAM bits: 17-bit row id + 11-bit counter per entry."""
        return self.entries * (17 + 11)
