"""The per-bank tracker interface every mitigation implements.

A tracker observes the activations of *its* bank and decides which
aggressor rows to mitigate and when.  Mitigation time arrives through
three channels (Figure 1a of the paper):

``REF``
    Proactive: the tracker borrows time from a demand refresh
    (*refresh cannibalisation*).  TRR and classic MINT work this way.
``RFM``
    Proactive: the memory controller counts activations per bank and
    stalls the bank at a fixed cadence (Section II-F).
``ALERT``
    Reactive: the tracker raises :meth:`BankTracker.wants_alert`, the
    device asserts ALERT, and the controller stalls the channel
    (Section II-G).  PRAC and MIRZA work this way.

Trackers never touch the DRAM arrays themselves; they *return* the rows
to mitigate and the :class:`repro.dram.device.DramDevice` performs the
victim refreshes (and informs the ground-truth oracle).
"""

from __future__ import annotations

import abc
import enum
from typing import List

from repro.dram.refresh import RefreshSlice


class MitigationSlotSource(enum.Enum):
    """Where the time for a mitigation slot came from."""

    REF = "ref"
    RFM = "rfm"
    ALERT = "alert"


class BankTracker(abc.ABC):
    """Abstract per-bank Rowhammer tracker."""

    __slots__ = ()

    name: str = "abstract"

    @abc.abstractmethod
    def on_activate(self, row: int, now_ps: int) -> None:
        """Observe an activation of ``row`` at time ``now_ps``."""

    def wants_alert(self) -> bool:
        """True if the tracker needs the channel to assert ALERT now.

        Proactive trackers never request ALERT; the default is ``False``.
        """
        return False

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        """Mitigation time is available; return aggressor rows to mitigate.

        Called once per REF (for REF-paced trackers), once per RFM, and
        once per ALERT service.  Returning an empty list wastes the slot.
        """
        return []

    def on_ref_slice(self, slice_: RefreshSlice, now_ps: int) -> None:
        """A REF refreshed ``slice_`` of this bank (for state resets)."""

    def storage_bits(self) -> int:
        """SRAM bits this tracker needs per bank (for the area tables)."""
        return 0

    @property
    def storage_bytes(self) -> float:
        """SRAM bytes per bank."""
        return self.storage_bits() / 8.0
