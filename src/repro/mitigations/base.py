"""The per-bank tracker interface every mitigation implements.

A tracker observes the activations of *its* bank and decides which
aggressor rows to mitigate and when.  Mitigation time arrives through
three channels (Figure 1a of the paper):

``REF``
    Proactive: the tracker borrows time from a demand refresh
    (*refresh cannibalisation*).  TRR and classic MINT work this way.
``RFM``
    Proactive: the memory controller counts activations per bank and
    stalls the bank at a fixed cadence (Section II-F).
``ALERT``
    Reactive: the tracker raises :meth:`BankTracker.wants_alert`, the
    device asserts ALERT, and the controller stalls the channel
    (Section II-G).  PRAC and MIRZA work this way.

Trackers never touch the DRAM arrays themselves; they *return* the rows
to mitigate and the :class:`repro.dram.device.DramDevice` performs the
victim refreshes (and informs the ground-truth oracle).
"""

from __future__ import annotations

import abc
import enum
from typing import List, Sequence

from repro.dram.refresh import RefreshSlice

UNBOUNDED_SLACK = 1 << 60
"""Sentinel slack for trackers that can never request an ALERT."""


class MitigationSlotSource(enum.Enum):
    """Where the time for a mitigation slot came from."""

    REF = "ref"
    RFM = "rfm"
    ALERT = "alert"


class BankTracker(abc.ABC):
    """Abstract per-bank Rowhammer tracker."""

    __slots__ = ()

    name: str = "abstract"

    @abc.abstractmethod
    def on_activate(self, row: int, now_ps: int) -> None:
        """Observe an activation of ``row`` at time ``now_ps``."""

    def on_activates(self, rows: Sequence[int],
                     times: Sequence[int]) -> None:
        """Observe a run of activations (array-backend bulk path).

        The default replays :meth:`on_activate` entry-at-a-time, so any
        tracker is bulk-safe by construction; hot trackers override this
        with a loop-free (or attribute-hoisted) equivalent that leaves
        *identical* final state, metric counts, and RNG consumption.
        """
        on_activate = self.on_activate
        for row, now_ps in zip(rows, times):
            on_activate(row, now_ps)

    def on_activates_array(self, rows, times) -> None:
        """Observe a run of ACTs delivered as numpy arrays.

        ``rows`` and ``times`` are parallel 1-D integer ndarrays (the
        vector backend's flush representation).  The default converts
        back to plain lists and delegates to :meth:`on_activates` --
        the array backend's bulk replay -- so every tracker is
        vector-safe by construction.  Hot trackers override it with
        ufunc-based updates that leave identical final state, metric
        counts, and RNG consumption; the vector backend only routes a
        bank through this method when its tracker actually overrides
        it.
        """
        self.on_activates(rows.tolist(), times.tolist())

    def wants_alert(self) -> bool:
        """True if the tracker needs the channel to assert ALERT now.

        Proactive trackers never request ALERT; the default is ``False``.
        """
        return False

    def alert_slack(self) -> int:
        """Lower bound on future ACTs before ``wants_alert`` can flip.

        Returns ``k >= 1`` guaranteeing that :meth:`wants_alert` cannot
        become True before this bank's *k*-th future :meth:`on_activate`
        call; the array backend defers tracker updates and re-polls only
        at that horizon.  Trackers that never alert should return
        :data:`UNBOUNDED_SLACK`; the conservative default of 1
        degenerates to the event backend's poll-every-ACT behaviour and
        is always correct.
        """
        if type(self).wants_alert is BankTracker.wants_alert:
            return UNBOUNDED_SLACK
        return 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        """Mitigation time is available; return aggressor rows to mitigate.

        Called once per REF (for REF-paced trackers), once per RFM, and
        once per ALERT service.  Returning an empty list wastes the slot.
        """
        return []

    def on_ref_slice(self, slice_: RefreshSlice, now_ps: int) -> None:
        """A REF refreshed ``slice_`` of this bank (for state resets)."""

    def storage_bits(self) -> int:
        """SRAM bits this tracker needs per bank (for the area tables)."""
        return 0

    @property
    def storage_bytes(self) -> float:
        """SRAM bytes per bank."""
        return self.storage_bits() / 8.0
