"""Mithril: a Misra-Gries counter-summary tracker (HPCA 2022).

Mithril keeps ``k`` (row, counter) entries per bank using the
Misra-Gries frequent-items algorithm:

- an activation to a tracked row increments its counter;
- an activation to an untracked row claims a free entry, or, when the
  table is full, *decrements every counter by the table minimum* and
  replaces a zeroed entry (we implement the standard equivalent: adopt
  the minimum entry's count).

At each mitigation opportunity the row with the maximum counter is
mitigated and its counter reset to the table minimum (mitigating does
not licence forgetting the Misra-Gries undercount).  Because counts are
sound lower bounds with bounded undercount, Mithril is *secure* -- but
needs thousands of entries at low thresholds (4.5KB+ CAM per bank,
Section I), which is exactly the storage cost MIRZA avoids.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mitigations.base import BankTracker, MitigationSlotSource


class MithrilTracker(BankTracker):
    """Misra-Gries tracker mitigating the max entry every k REFs."""

    name = "mithril"

    def __init__(self, entries: int = 2048, refs_per_mitigation: int = 1,
                 bits_per_counter: int = 11) -> None:
        if entries < 1:
            raise ValueError("need at least one entry")
        self.entries = entries
        self.refs_per_mitigation = refs_per_mitigation
        self.bits_per_counter = bits_per_counter
        self._table: Dict[int, int] = {}
        self._last_mitigated: Dict[int, int] = {}
        self._mitigation_seq = 0
        self._refs_seen = 0
        self.spills = 0

    def _table_min(self) -> int:
        return min(self._table.values()) if self._table else 0

    def on_activate(self, row: int, now_ps: int) -> None:
        if row in self._table:
            self._table[row] += 1
            return
        if len(self._table) < self.entries:
            self._table[row] = 1
            return
        # Misra-Gries replacement: adopt the minimum entry's count + 1.
        # This keeps every counter an upper bound on the true count while
        # the undercount stays bounded by the number of replacements.
        floor = self._table_min()
        victim = min(self._table, key=lambda r: (self._table[r], r))
        del self._table[victim]
        self._table[row] = floor + 1
        self.spills += 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF:
            self._refs_seen += 1
            if self._refs_seen % self.refs_per_mitigation:
                return []
        if not self._table:
            return []
        # Highest count wins; ties go to the least-recently-mitigated
        # entry so the post-mitigation reset-to-floor cannot pin the
        # selection on one row while others keep accruing.
        row = max(self._table,
                  key=lambda r: (self._table[r],
                                 -self._last_mitigated.get(r, -1), -r))
        # Reset to the running minimum rather than zero: the entry may
        # still be undercounting by up to the Misra-Gries error floor.
        self._table[row] = self._table_min()
        self._mitigation_seq += 1
        self._last_mitigated[row] = self._mitigation_seq
        return [row]

    def max_count(self) -> int:
        """Largest tracked counter (used by the feinting-attack bench)."""
        return max(self._table.values(), default=0)

    def storage_bits(self) -> int:
        """CAM bits: row id (17) + counter, per entry."""
        return self.entries * (17 + self.bits_per_counter)
