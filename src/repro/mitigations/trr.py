"""DDR4-style Targeted Row Refresh: a small, breakable counter table.

Reverse engineering showed DDR4 TRR trackers hold 4-28 entries per bank
(Section X).  We model the common "capture the most-activated rows"
shape: a table of (row, count); an activation increments its row's entry
or claims a free/minimum slot.  One aggressor is mitigated per
``refs_per_mitigation`` REF commands (proactive, borrowing REF time).

TRR is **insecure**: patterns with more decoy rows than table entries
(Blacksmith/TRRespass-style) evict the true aggressor, which the
security tests demonstrate by driving
:func:`repro.workloads.attacks.trr_evasion_pattern` against it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mitigations.base import BankTracker, MitigationSlotSource


class TrrTracker(BankTracker):
    """A 28-entry activation-count table mitigating under REF."""

    name = "trr"

    def __init__(self, entries: int = 28, refs_per_mitigation: int = 4,
                 mitigation_threshold: int = 32) -> None:
        if entries < 1:
            raise ValueError("need at least one table entry")
        self.entries = entries
        self.refs_per_mitigation = refs_per_mitigation
        self.mitigation_threshold = mitigation_threshold
        self._table: Dict[int, int] = {}
        self._refs_seen = 0

    def on_activate(self, row: int, now_ps: int) -> None:
        if row in self._table:
            self._table[row] += 1
            return
        if len(self._table) < self.entries:
            self._table[row] = 1
            return
        # Replace the minimum-count entry: the classic exploitable move.
        victim = min(self._table, key=lambda r: (self._table[r], r))
        del self._table[victim]
        self._table[row] = 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is not MitigationSlotSource.REF:
            return []
        self._refs_seen += 1
        if self._refs_seen % self.refs_per_mitigation:
            return []
        if not self._table:
            return []
        row = max(self._table, key=lambda r: (self._table[r], -r))
        if self._table[row] < self.mitigation_threshold:
            return []
        del self._table[row]
        return [row]

    def storage_bits(self) -> int:
        """28 entries x 3 bytes (row id + counter), per Table XII."""
        return self.entries * 24
