"""Hydra: hybrid SRAM/DRAM activation counting (ISCA 2022).

Hydra tracks per-row counts at ultra-low thresholds without a full
per-row SRAM table by splitting the tracker:

- a small SRAM **Group Count Table (GCT)**: one counter per group of
  rows, incremented until the group crosses a threshold;
- on crossing, the group's rows get *individual* counters in a
  DRAM-resident **Row Count Table (RCT-H)**, cached through a small
  SRAM **Row Count Cache (RCC)**.

Benign groups never leave the cheap group stage; hot rows get exact
counts.  The MIRZA paper's related work notes Hydra's downside for the
in-DRAM setting: the row-count lookups add DRAM traffic (we account
them as ``dram_lookups``), which is why it stays an MC-side design.

A row is mitigated when its exact count reaches the mitigation
threshold; mitigation happens at the next REF/RFM slot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from repro.mitigations.base import BankTracker, MitigationSlotSource


class HydraTracker(BankTracker):
    """Group counters + overflow per-row counters behind a cache."""

    name = "hydra"

    def __init__(self, rows_per_bank: int = 128 * 1024,
                 rows_per_group: int = 128,
                 group_threshold: int = 200,
                 mitigation_threshold: int = 400,
                 cache_entries: int = 64) -> None:
        if rows_per_group < 1 or rows_per_bank % rows_per_group:
            raise ValueError(
                "rows_per_group must divide rows_per_bank")
        if mitigation_threshold <= group_threshold:
            raise ValueError(
                "mitigation threshold must exceed group threshold")
        self.rows_per_group = rows_per_group
        self.num_groups = rows_per_bank // rows_per_group
        self.group_threshold = group_threshold
        self.mitigation_threshold = mitigation_threshold
        self.cache_entries = cache_entries
        self._group_counts: Dict[int, int] = {}
        self._row_counts: Dict[int, int] = {}   # DRAM-resident RCT
        self._rcc: "OrderedDict[int, None]" = OrderedDict()
        self._pending: List[int] = []
        self.dram_lookups = 0
        self.dram_writebacks = 0

    def _group_of(self, row: int) -> int:
        return row // self.rows_per_group

    def _touch_cache(self, row: int) -> None:
        """RCC access: a miss costs a DRAM lookup (and a writeback
        when a dirty line is evicted)."""
        if row in self._rcc:
            self._rcc.move_to_end(row)
            return
        self.dram_lookups += 1
        self._rcc[row] = None
        if len(self._rcc) > self.cache_entries:
            self._rcc.popitem(last=False)
            self.dram_writebacks += 1

    def on_activate(self, row: int, now_ps: int) -> None:
        group = self._group_of(row)
        count = self._group_counts.get(group, 0)
        if count < self.group_threshold:
            # Cheap stage: one shared SRAM counter for the group.
            self._group_counts[group] = count + 1
            return
        if count == self.group_threshold:
            # Overflow: give every row in the group an individual
            # counter initialised to the group count (a sound upper
            # bound on each row's true count).
            self._group_counts[group] = count + 1
            base = group * self.rows_per_group
            for r in range(base, base + self.rows_per_group):
                self._row_counts[r] = count
        self._touch_cache(row)
        new = self._row_counts.get(row, count) + 1
        self._row_counts[row] = new
        if new == self.mitigation_threshold:
            self._pending.append(row)

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if not self._pending:
            return []
        row = self._pending.pop(0)
        self._row_counts[row] = 0
        return [row]

    def on_ref_slice(self, slice_, now_ps: int) -> None:
        """Refreshed rows reset their exact counters; a fully swept
        window (wrap) resets the group stage."""
        for row in slice_.logical_rows:
            self._row_counts.pop(row, None)
        if slice_.wraps_window:
            self._group_counts.clear()

    def exact_count(self, row: int) -> int:
        """Exact per-row counter (0 while in the group stage)."""
        return self._row_counts.get(row, 0)

    def storage_bits(self) -> int:
        """SRAM only: the GCT and the RCC (the RCT lives in DRAM)."""
        gct = self.num_groups * \
            max(1, (self.group_threshold + 1).bit_length())
        rcc = self.cache_entries * (17 + max(
            1, (self.mitigation_threshold + 1).bit_length()))
        return gct + rcc
