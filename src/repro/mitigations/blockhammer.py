"""BlockHammer: throttle-based MC-side mitigation (HPCA 2021).

BlockHammer takes the opposite approach to victim refresh: rate-limit
the aggressor.  Counting Bloom filters estimate each row's activation
count; rows whose estimate crosses a blacklist threshold have their
activations *delayed* so that no row can legally reach the Rowhammer
threshold within a refresh window.

The MIRZA paper's related work notes why this cannot move in-DRAM:
DRAM chips are deterministic devices and cannot delay a request by an
arbitrary time -- only the memory controller can.  The implementation
therefore exposes :meth:`required_delay_ps`, which the *controller*
consults before issuing an ACT (see the tests for the wiring); it is
not a :class:`~repro.mitigations.base.BankTracker` because it never
mitigates -- it shapes traffic.

Two counting Bloom filters rotate every half refresh window so stale
counts age out (the published design's epoch scheme).
"""

from __future__ import annotations

from typing import List


class CountingBloomFilter:
    """A minimal counting Bloom filter over row numbers."""

    def __init__(self, counters: int = 1024, hashes: int = 4,
                 seed: int = 0x9E3779B9) -> None:
        if counters < 1 or hashes < 1:
            raise ValueError("need positive counters and hashes")
        self.size = counters
        self.hashes = hashes
        self.seed = seed
        self._counts: List[int] = [0] * counters

    def _indices(self, row: int) -> List[int]:
        out = []
        h = row + 1
        for i in range(self.hashes):
            h = (h * self.seed + i * 0x85EBCA6B + 1) & 0xFFFFFFFF
            out.append(h % self.size)
        return out

    def insert(self, row: int) -> None:
        """Count one activation of ``row``."""
        for idx in self._indices(row):
            self._counts[idx] += 1

    def estimate(self, row: int) -> int:
        """Count-min style estimate: never underestimates."""
        return min(self._counts[idx] for idx in self._indices(row))

    def clear(self) -> None:
        """Zero every counter (epoch rotation)."""
        self._counts = [0] * self.size


class BlockHammerThrottle:
    """MC-side activation throttling with rotating Bloom epochs."""

    def __init__(self, trh: int, trefw_ps: int,
                 blacklist_fraction: float = 0.5,
                 counters: int = 1024, hashes: int = 4) -> None:
        if trh < 2:
            raise ValueError("threshold too small to throttle")
        self.trh = trh
        self.trefw_ps = trefw_ps
        self.blacklist_threshold = max(1, int(trh * blacklist_fraction))
        # A blacklisted row may only sustain the *remaining* budget
        # over the remaining window: space its ACTs evenly.
        remaining_budget = max(1, trh - self.blacklist_threshold)
        self.min_gap_ps = trefw_ps // (2 * remaining_budget)
        self._filters = [CountingBloomFilter(counters, hashes, 0x9E37),
                         CountingBloomFilter(counters, hashes, 0x85EB)]
        self._epoch_start = 0
        self._active = 0
        self._last_blacklisted_act: dict = {}
        self.throttled_acts = 0

    def _rotate_epochs(self, now_ps: int) -> None:
        half = self.trefw_ps // 2
        while now_ps - self._epoch_start >= half:
            self._epoch_start += half
            self._active ^= 1
            self._filters[self._active].clear()
            self._last_blacklisted_act.clear()

    def estimate(self, row: int) -> int:
        """Combined estimate over both live epochs."""
        return sum(f.estimate(row) for f in self._filters)

    def required_delay_ps(self, row: int, now_ps: int) -> int:
        """How long the controller must hold this ACT (0 = issue now)."""
        self._rotate_epochs(now_ps)
        if self.estimate(row) < self.blacklist_threshold:
            return 0
        last = self._last_blacklisted_act.get(row)
        if last is None:
            return 0
        earliest = last + self.min_gap_ps
        return max(0, earliest - now_ps)

    def on_activate(self, row: int, now_ps: int) -> None:
        """Record an issued ACT (after any required delay)."""
        self._rotate_epochs(now_ps)
        self._filters[self._active].insert(row)
        if self.estimate(row) >= self.blacklist_threshold:
            self._last_blacklisted_act[row] = now_ps
            self.throttled_acts += 1

    def max_acts_per_window(self) -> int:
        """Worst-case ACTs any single row can land in one tREFW."""
        budget = self.blacklist_threshold
        paced = (self.trefw_ps // 2) // self.min_gap_ps
        return budget + 2 * paced

    def storage_bits(self, counter_bits: int = 10) -> int:
        """SRAM bits for the two counting Bloom filters."""
        return 2 * self._filters[0].size * counter_bits
