"""QPRAC: PRAC with opportunistic proactive service (HPCA 2025).

QPRAC keeps PRAC's per-row counters and ABO backstop but adds a small
priority queue of the hottest rows, serviced *opportunistically* during
regular REF slots: rows whose counters cross a low service threshold
get mitigated for free under REF, so the ALERT threshold is almost
never reached and the ABO path becomes a pure safety net.

For the thresholds the MIRZA paper evaluates (TRHD >= 500) plain
PRAC+ABO already triggers no ALERTs, so QPRAC behaves identically in
the headline numbers (Section VII notes Panopticon/QPRAC "would yield
similar results"); the implementation exists to make that claim
testable and to support lower-threshold exploration.
"""

from __future__ import annotations

from typing import List, Optional

import heapq

from repro.mitigations.base import MitigationSlotSource
from repro.mitigations.prac import PracTracker
from repro.params import AboTimings


class QpracTracker(PracTracker):
    """PRAC + a service queue drained opportunistically under REF."""

    name = "qprac"

    def __init__(self, trhd: int, abo: AboTimings = AboTimings(),
                 alert_threshold: Optional[int] = None,
                 service_threshold: Optional[int] = None,
                 queue_entries: int = 4) -> None:
        super().__init__(trhd, abo, alert_threshold)
        self.service_threshold = (
            service_threshold if service_threshold is not None
            else max(1, self.alert_threshold // 2))
        self.queue_entries = queue_entries
        self._service_heap: List = []  # (-count, row)
        self._queued = set()
        self.proactive_mitigations = 0

    def on_activate(self, row: int, now_ps: int) -> None:
        super().on_activate(row, now_ps)
        count = self._counters[row]
        if count >= self.service_threshold and row not in self._queued \
                and len(self._queued) < self.queue_entries:
            heapq.heappush(self._service_heap, (-count, row))
            self._queued.add(row)

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF:
            # Opportunistic service: drain the hottest queued row.
            while self._service_heap:
                _, row = heapq.heappop(self._service_heap)
                self._queued.discard(row)
                if self._counters.get(row, 0) >= self.service_threshold:
                    self._counters[row] = 0
                    if row in self._over_threshold:
                        self._over_threshold.remove(row)
                    self.proactive_mitigations += 1
                    return [row]
            return []
        rows = super().on_mitigation_slot(now_ps, source)
        for row in rows:
            self._queued.discard(row)
        return rows

    def on_ref_slice(self, slice_, now_ps: int) -> None:
        super().on_ref_slice(slice_, now_ps)
        self._queued = {r for r in self._queued if r in self._counters}
        self._service_heap = [(-self._counters[r], r)
                              for r in self._queued]
        heapq.heapify(self._service_heap)
