"""Naive MIRZA: MINT + ABO + queue, *without* coarse-grained filtering.

Section IV-A's first step: take MINT's randomized selection, buffer the
selected rows in a per-bank queue, and obtain mitigation time reactively
via ALERT instead of proactively via REF/RFM.  Every activation
participates in MINT selection (there is no RCT), so at MINT-W of
24/48/96 the ALERT rate is one per few dozen activations per bank --
which is why Table V still shows RFM-like slowdowns (5%-15%) and why the
full MIRZA adds filtering.

Implemented as the full :class:`repro.core.mirza.MirzaTracker` with
``FTH = 0`` (and a single region), so the two designs share every code
path except the filter -- making the Table V vs Figure 11a comparison a
true ablation.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import RowToSubarrayMapping
from repro.params import DramGeometry


class NaiveMirzaTracker(MirzaTracker):
    """MINT + ABO with a MIRZA-Q but no filtering (FTH = 0)."""

    __slots__ = ()

    name = "naive-mirza"

    def __init__(self, mint_window: int, queue_entries: int = 4,
                 qth: int = 16,
                 geometry: DramGeometry = DramGeometry(),
                 mapping: Optional[RowToSubarrayMapping] = None,
                 rng: Optional[random.Random] = None) -> None:
        config = MirzaConfig(
            trhd=0, fth=0, mint_window=mint_window, num_regions=1,
            queue_entries=queue_entries, qth=qth)
        super().__init__(config, geometry, mapping, rng)

    def storage_bits(self) -> int:
        """No RCT: just the queue and the MINT entry."""
        row_bits = max(1, (self.geometry.rows_per_bank - 1).bit_length())
        return (self.queue.storage_bits(row_bits)
                + self.mint.storage_bits(row_bits))
