"""Classic proactive MINT: random sampling + periodic mitigation.

MINT (MICRO 2024) selects one of every ``window`` activations uniformly
at random (see :class:`repro.core.mint.MintSampler`) and mitigates the
selected row at the next *proactive* mitigation opportunity -- either a
REF slot (one mitigation per ``refs_per_mitigation`` REFs, cannibalising
refresh time) or an RFM issued by the memory controller every ``window``
activations (Section II-F).

Selected rows wait in a small *Delayed Mitigation Queue* (DMQ) so that a
selection is never lost when refreshes are postponed; the paper's
Table XII configuration uses a DMQ and one mitigation per 3 REF at
TRHD = 4.8K.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.mint import MintSampler
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.obs import metrics as _metrics


class MintTracker(BankTracker):
    """Proactive MINT with a Delayed Mitigation Queue."""

    name = "mint"

    def __init__(self, window: int, refs_per_mitigation: int = 0,
                 dmq_entries: int = 2,
                 rng: Optional[random.Random] = None) -> None:
        """``refs_per_mitigation = 0`` means RFM-paced (never uses REF)."""
        self.sampler = MintSampler(window,
                                   rng if rng is not None else
                                   random.Random(0))
        self.window = window
        self.refs_per_mitigation = refs_per_mitigation
        self.dmq_entries = dmq_entries
        self._pending: List[int] = []
        self._refs_seen = 0
        self.dropped_selections = 0

    def _push(self, row: int) -> None:
        """Queue a selection, evicting the oldest when the DMQ is full.

        An evicted selection is lost; MINT's security model budgets for
        refresh postponement, but a sustained overflow is a signal the
        mitigation cadence is too slow for the window.
        """
        if len(self._pending) >= self.dmq_entries:
            self._pending.pop(0)
            self.dropped_selections += 1
            reg = _metrics._ACTIVE
            if reg is not None:
                reg.counter("mint.dmq_drops").value += 1
        self._pending.append(row)

    def on_activate(self, row: int, now_ps: int) -> None:
        selected = self.sampler.observe(row)
        if selected is not None:
            self._push(row)

    def on_activates(self, rows: Sequence[int],
                     times: Sequence[int]) -> None:
        """Bulk path: one sampler sweep, then replay the DMQ updates.

        Selections interact with the DMQ only in arrival order (which
        :meth:`MintSampler.observe_many` preserves), and mitigation
        slots always flush the deferred run first, so the queue sees the
        same sequence of events as entry-at-a-time observation.
        """
        if type(self).on_activate is not MintTracker.on_activate:
            BankTracker.on_activates(self, rows, times)
            return
        for row in self.sampler.observe_many(rows):
            self._push(row)

    def on_activates_array(self, rows, times) -> None:
        """Vector path: the sampler's closed-form sweep indexes the
        numpy run directly; selections come back as plain ints."""
        if type(self).on_activate is not MintTracker.on_activate:
            BankTracker.on_activates_array(self, rows, times)
            return
        for row in self.sampler.observe_many(rows):
            self._push(row)

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF:
            if not self.refs_per_mitigation:
                return []
            self._refs_seen += 1
            if self._refs_seen % self.refs_per_mitigation:
                return []
        if not self._pending:
            return []
        return [self._pending.pop(0)]

    def storage_bits(self) -> int:
        """One tracking entry plus the DMQ (Table XII: ~20 bytes)."""
        return self.sampler.storage_bits() + self.dmq_entries * 17
