"""PRAC + ABO: per-row activation counters with reactive ALERT (MOAT).

PRAC extends the DRAM array with one counter per row, incremented on
every activation.  Following the MOAT design (ASPLOS 2025), the chip
asserts ALERT-Back-Off when any row's counter reaches an internal alert
threshold (``ETH``), and the mitigation phase of the ALERT refreshes
that row's victims and resets its counter.

Two costs, both captured by the reproduction:

- **area**: one ~10-bit DRAM counter per row
  (:mod:`repro.security.area`);
- **timing**: counter read-modify-write inflates tRP 14->36 ns and
  tRC 46->52 ns even when no ALERT ever fires -- use
  ``SystemConfig.with_prac_timings()`` when simulating a PRAC system;
  that inflation, not ALERTs, is the source of PRAC's 6.5% slowdown at
  the paper's thresholds (Section VII-B).

For TRHD >= 500, benign workloads essentially never reach ETH, so
PRAC+ABO performs almost no mitigations (Figure 11b shows ~0 ALERTs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.obs import metrics as _metrics
from repro.params import AboTimings


def prac_alert_threshold(trhd: int, abo: AboTimings = AboTimings()) -> int:
    """Internal counter value at which the chip must assert ALERT.

    The ALERT must fire early enough that the ACTs landing during the
    ABO prologue/epilogue (Phase D) cannot push the row past the device
    threshold: ``ETH = TRHD - (2 * acts_between_alerts - 1)``.
    """
    margin = 2 * abo.acts_between_alerts - 1
    eth = trhd - margin
    if eth < 1:
        raise ValueError(f"TRHD={trhd} too low for the ABO protocol")
    return eth


class PracTracker(BankTracker):
    """Per-row counters asserting ALERT at the alert threshold."""

    name = "prac"

    def __init__(self, trhd: int, abo: AboTimings = AboTimings(),
                 alert_threshold: Optional[int] = None) -> None:
        self.trhd = trhd
        self.alert_threshold = (alert_threshold if alert_threshold
                                is not None
                                else prac_alert_threshold(trhd, abo))
        self._counters: Dict[int, int] = {}
        self._over_threshold: List[int] = []
        # Monotone upper bound on the largest counter ever reached; never
        # decremented on refresh/mitigation resets, so the slack derived
        # from it only ever *under*-estimates (which is the safe side).
        self._max_count = 0
        reg = _metrics._ACTIVE
        self._m_alert_rows = reg.counter("prac.alert_rows") \
            if reg is not None else None

    def on_activate(self, row: int, now_ps: int) -> None:
        count = self._counters.get(row, 0) + 1
        self._counters[row] = count
        if count > self._max_count:
            self._max_count = count
        if count == self.alert_threshold:
            self._over_threshold.append(row)
            counter = self._m_alert_rows
            if counter is not None:
                counter.value += 1

    def on_activates(self, rows: Sequence[int],
                     times: Sequence[int]) -> None:
        """Bulk counter updates over a deferred run of ACTs.

        Bit-identical to replaying :meth:`on_activate`: counters only
        accumulate between mitigation slots, so the order of increments
        within the run is immaterial and the over-threshold list gets the
        same rows in the same (arrival) order.
        """
        if type(self).on_activate is not PracTracker.on_activate:
            # A subclass (e.g. QPRAC) customises per-ACT behaviour; the
            # generic replay keeps its semantics.
            BankTracker.on_activates(self, rows, times)
            return
        counters = self._counters
        get = counters.get
        threshold = self.alert_threshold
        max_count = self._max_count
        over = self._over_threshold
        metric = self._m_alert_rows
        for row in rows:
            count = get(row, 0) + 1
            counters[row] = count
            if count > max_count:
                max_count = count
            if count == threshold:
                over.append(row)
                if metric is not None:
                    metric.value += 1
        self._max_count = max_count

    def on_activates_array(self, rows, times) -> None:
        """Vector path: grouped counter updates over a numpy run.

        ``np.unique`` collapses the run to one dict update per
        *distinct* row (an attack run concentrates hundreds of ACTs on
        a handful of rows), and threshold crossings are recovered
        exactly and in arrival order: a row entering the run with
        count ``c`` crosses at its ``(threshold - c)``-th occurrence,
        and multiple crossers sort by the position of that occurrence.
        """
        if type(self).on_activate is not PracTracker.on_activate:
            BankTracker.on_activates_array(self, rows, times)
            return
        uniq, occurrences = _np.unique(rows, return_counts=True)
        counters = self._counters
        get = counters.get
        threshold = self.alert_threshold
        max_count = self._max_count
        crossers: List[tuple] = []
        for row, occ in zip(uniq.tolist(), occurrences.tolist()):
            old = get(row, 0)
            new = old + occ
            counters[row] = new
            if new > max_count:
                max_count = new
            if old < threshold <= new:
                pos = int(_np.flatnonzero(rows == row)
                          [threshold - old - 1])
                crossers.append((pos, row))
        self._max_count = max_count
        if crossers:
            crossers.sort()
            over = self._over_threshold
            metric = self._m_alert_rows
            for _pos, row in crossers:
                over.append(row)
                if metric is not None:
                    metric.value += 1

    def wants_alert(self) -> bool:
        return bool(self._over_threshold)

    def alert_slack(self) -> int:
        """ACTs before any counter can reach the alert threshold.

        ``_max_count`` is a stale-high bound (resets never lower it), so
        ``threshold - _max_count`` can only under-estimate the true
        distance; the clamp to 1 covers the stale case where the bound
        exceeds every live counter.
        """
        if self._over_threshold:
            return 1
        slack = self.alert_threshold - self._max_count
        return slack if slack > 1 else 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF or not self._over_threshold:
            return []
        row = self._over_threshold.pop(0)
        self._counters[row] = 0
        return [row]

    def on_ref_slice(self, slice_, now_ps: int) -> None:
        """Demand refresh resets the refreshed rows' counters.

        A slice covers thousands of rows while only the rows activated
        since their last refresh hold counters, so the intersection is
        walked from the (small) counter side -- the same asymmetry the
        row-activation oracle exploits.  Pop order does not matter: the
        final dict state is identical either way.
        """
        counters = self._counters
        rows = slice_.logical_rows
        if len(counters) < len(rows):
            swept = slice_.row_set()
            for row in [r for r in counters if r in swept]:
                del counters[row]
            return
        for row in rows:
            counters.pop(row, None)

    def max_counter(self) -> int:
        """Largest per-row counter (used by tests and experiments)."""
        return max(self._counters.values(), default=0)

    def storage_bits(self) -> int:
        """PRAC counters live in the DRAM array, not SRAM: 0 SRAM bits.

        The (large) DRAM-array cost is accounted by
        :class:`repro.security.area.AreaModel`, matching the paper's
        framing of PRAC's overhead as array area rather than SRAM.
        """
        return 0
