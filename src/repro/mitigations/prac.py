"""PRAC + ABO: per-row activation counters with reactive ALERT (MOAT).

PRAC extends the DRAM array with one counter per row, incremented on
every activation.  Following the MOAT design (ASPLOS 2025), the chip
asserts ALERT-Back-Off when any row's counter reaches an internal alert
threshold (``ETH``), and the mitigation phase of the ALERT refreshes
that row's victims and resets its counter.

Two costs, both captured by the reproduction:

- **area**: one ~10-bit DRAM counter per row
  (:mod:`repro.security.area`);
- **timing**: counter read-modify-write inflates tRP 14->36 ns and
  tRC 46->52 ns even when no ALERT ever fires -- use
  ``SystemConfig.with_prac_timings()`` when simulating a PRAC system;
  that inflation, not ALERTs, is the source of PRAC's 6.5% slowdown at
  the paper's thresholds (Section VII-B).

For TRHD >= 500, benign workloads essentially never reach ETH, so
PRAC+ABO performs almost no mitigations (Figure 11b shows ~0 ALERTs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.obs import metrics as _metrics
from repro.params import AboTimings


def prac_alert_threshold(trhd: int, abo: AboTimings = AboTimings()) -> int:
    """Internal counter value at which the chip must assert ALERT.

    The ALERT must fire early enough that the ACTs landing during the
    ABO prologue/epilogue (Phase D) cannot push the row past the device
    threshold: ``ETH = TRHD - (2 * acts_between_alerts - 1)``.
    """
    margin = 2 * abo.acts_between_alerts - 1
    eth = trhd - margin
    if eth < 1:
        raise ValueError(f"TRHD={trhd} too low for the ABO protocol")
    return eth


class PracTracker(BankTracker):
    """Per-row counters asserting ALERT at the alert threshold."""

    name = "prac"

    def __init__(self, trhd: int, abo: AboTimings = AboTimings(),
                 alert_threshold: Optional[int] = None) -> None:
        self.trhd = trhd
        self.alert_threshold = (alert_threshold if alert_threshold
                                is not None
                                else prac_alert_threshold(trhd, abo))
        self._counters: Dict[int, int] = {}
        self._over_threshold: List[int] = []
        reg = _metrics._ACTIVE
        self._m_alert_rows = reg.counter("prac.alert_rows") \
            if reg is not None else None

    def on_activate(self, row: int, now_ps: int) -> None:
        count = self._counters.get(row, 0) + 1
        self._counters[row] = count
        if count == self.alert_threshold:
            self._over_threshold.append(row)
            counter = self._m_alert_rows
            if counter is not None:
                counter.value += 1

    def wants_alert(self) -> bool:
        return bool(self._over_threshold)

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF or not self._over_threshold:
            return []
        row = self._over_threshold.pop(0)
        self._counters[row] = 0
        return [row]

    def on_ref_slice(self, slice_, now_ps: int) -> None:
        """Demand refresh resets the refreshed rows' counters."""
        for row in slice_.logical_rows:
            self._counters.pop(row, None)

    def max_counter(self) -> int:
        """Largest per-row counter (used by tests and experiments)."""
        return max(self._counters.values(), default=0)

    def storage_bits(self) -> int:
        """PRAC counters live in the DRAM array, not SRAM: 0 SRAM bits.

        The (large) DRAM-array cost is accounted by
        :class:`repro.security.area.AreaModel`, matching the paper's
        framing of PRAC's overhead as array area rather than SRAM.
        """
        return 0
