"""PARA: stateless probabilistic victim refresh.

On every activation, with probability ``p`` the activated row is marked
for mitigation at the next available slot.  PARA needs no storage but
requires a high ``p`` at low thresholds, making it mitigation-hungry --
it is included as the classic point of comparison for MINT's
"one selection per window" discipline (a PARA with ``p = 1/W`` performs
the same expected number of mitigations as MINT-W but with a weaker
worst-case guarantee, which the property tests explore).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.mitigations.base import BankTracker, MitigationSlotSource


class ParaTracker(BankTracker):
    """Mitigate each activated row with independent probability ``p``."""

    name = "para"

    def __init__(self, probability: float,
                 rng: Optional[random.Random] = None,
                 pending_capacity: int = 4) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.rng = rng if rng is not None else random.Random(0)
        self.pending_capacity = pending_capacity
        self._pending: List[int] = []
        self.dropped = 0

    def on_activate(self, row: int, now_ps: int) -> None:
        if self.rng.random() < self.probability:
            if len(self._pending) < self.pending_capacity:
                self._pending.append(row)
            else:
                self.dropped += 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if not self._pending:
            return []
        return [self._pending.pop(0)]

    def storage_bits(self) -> int:
        return self.pending_capacity * 17
