"""The unprotected baseline: observes nothing, mitigates nothing."""

from __future__ import annotations

from repro.mitigations.base import BankTracker


class NoMitigation(BankTracker):
    """No Rowhammer protection at all (the paper's baseline system)."""

    name = "none"

    def on_activate(self, row: int, now_ps: int) -> None:
        pass

    def storage_bits(self) -> int:
        return 0
