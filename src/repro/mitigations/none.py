"""The unprotected baseline: observes nothing, mitigates nothing."""

from __future__ import annotations

from typing import Sequence

from repro.mitigations.base import BankTracker


class NoMitigation(BankTracker):
    """No Rowhammer protection at all (the paper's baseline system)."""

    name = "none"

    def on_activate(self, row: int, now_ps: int) -> None:
        pass

    def on_activates(self, rows: Sequence[int],
                     times: Sequence[int]) -> None:
        """A whole run of nothing: skip the per-ACT replay loop."""

    def on_activates_array(self, rows, times) -> None:
        """Vector form of the same nothing (keeps baseline banks on
        the array flush path of the vector kernel)."""

    def storage_bits(self) -> int:
        return 0
