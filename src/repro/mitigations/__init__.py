"""Rowhammer mitigation trackers: MIRZA's baselines and building blocks.

Every tracker implements :class:`repro.mitigations.base.BankTracker` and is
instantiated once per bank by :class:`repro.dram.device.DramDevice`.

- :mod:`repro.mitigations.none`        -- unprotected baseline.
- :mod:`repro.mitigations.trr`         -- DDR4-style Targeted Row Refresh
  (few entries, *insecure* -- the security tests break it).
- :mod:`repro.mitigations.para`        -- classic probabilistic refresh.
- :mod:`repro.mitigations.mithril`     -- Misra-Gries counter tracker.
- :mod:`repro.mitigations.mint_rfm`    -- proactive MINT (REF- or RFM-paced).
- :mod:`repro.mitigations.prac`        -- PRAC + ABO (MOAT-style).
- :mod:`repro.mitigations.naive_mirza` -- MINT + ABO + queue, no filtering
  (Section IV-A); a thin wrapper over the full MIRZA engine with FTH = 0.

The full MIRZA engine lives in :mod:`repro.core.mirza` because it is the
paper's primary contribution.
"""

from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.mitigations.blockhammer import (
    BlockHammerThrottle,
    CountingBloomFilter,
)
from repro.mitigations.hydra import HydraTracker
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.mithril import MithrilTracker
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import ParaTracker
from repro.mitigations.prac import PracTracker
from repro.mitigations.pride import PrideTracker
from repro.mitigations.protrr import ProTrrTracker
from repro.mitigations.qprac import QpracTracker
from repro.mitigations.trr import TrrTracker


def __getattr__(name):
    # NaiveMirzaTracker builds on repro.core (which in turn imports this
    # package for the tracker interface); loading it lazily breaks the
    # import cycle without hiding it from the public API.
    if name == "NaiveMirzaTracker":
        from repro.mitigations.naive_mirza import NaiveMirzaTracker
        return NaiveMirzaTracker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BankTracker",
    "BlockHammerThrottle",
    "CountingBloomFilter",
    "HydraTracker",
    "MintTracker",
    "MithrilTracker",
    "MitigationSlotSource",
    "NaiveMirzaTracker",
    "NoMitigation",
    "ParaTracker",
    "PracTracker",
    "PrideTracker",
    "ProTrrTracker",
    "QpracTracker",
    "TrrTracker",
]
