"""PrIDE: probabilistic in-DRAM tracking with a small FIFO (ISCA'24).

PrIDE inserts each activated row into a small per-bank FIFO with a
fixed probability ``p`` and mitigates the FIFO head at each proactive
mitigation opportunity (REF or RFM).  Like MINT it needs almost no
storage and is secure by randomisation; unlike MINT the insertion
lottery is independent per activation, so bursts can overflow the FIFO
(insertions to a full queue are dropped -- the published design sizes
``p`` and the queue so drops are rare at the protected threshold).

Included as the second randomized-tracker baseline of Figure 1(a); the
MIRZA paper builds on MINT but cites PrIDE as the other principled
low-cost tracker.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional

from repro.mitigations.base import BankTracker, MitigationSlotSource


class PrideTracker(BankTracker):
    """Probabilistic FIFO tracker mitigating under REF/RFM."""

    name = "pride"

    def __init__(self, insertion_probability: float = 1.0 / 16,
                 queue_entries: int = 4,
                 refs_per_mitigation: int = 1,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 < insertion_probability <= 1.0:
            raise ValueError("insertion probability must be in (0, 1]")
        if queue_entries < 1:
            raise ValueError("queue needs at least one entry")
        self.insertion_probability = insertion_probability
        self.queue_entries = queue_entries
        self.refs_per_mitigation = refs_per_mitigation
        self.rng = rng if rng is not None else random.Random(0)
        self._fifo: Deque[int] = deque()
        self._refs_seen = 0
        self.insertions = 0
        self.dropped = 0

    def on_activate(self, row: int, now_ps: int) -> None:
        if self.rng.random() >= self.insertion_probability:
            return
        if len(self._fifo) >= self.queue_entries:
            self.dropped += 1
            return
        self._fifo.append(row)
        self.insertions += 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        if source is MitigationSlotSource.REF:
            self._refs_seen += 1
            if self.refs_per_mitigation and \
                    self._refs_seen % self.refs_per_mitigation:
                return []
        if not self._fifo:
            return []
        return [self._fifo.popleft()]

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def storage_bits(self) -> int:
        """FIFO entries (17-bit row ids) plus head/tail pointers."""
        pointer_bits = max(1, (self.queue_entries - 1).bit_length())
        return self.queue_entries * 17 + 2 * pointer_bits
