"""MLP-limited core model.

A core consumes its trace one miss at a time.  Between misses it spends
the entry's compute time; it may have up to ``mlp`` misses outstanding
(the memory-level parallelism the ROB can extract), and when the limit
is reached it stalls until the oldest miss returns.  IPC over a window
is retired instructions divided by window length.

This is the standard first-order model for memory-bound multi-core
throughput: it reproduces the sensitivity of IPC to (a) added DRAM
latency (PRAC's inflated tRP/tRC on row conflicts) and (b) stolen DRAM
time (REF/RFM/ALERT stalls), which are the only two effects behind the
paper's slowdown numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, Tuple

from repro.cpu.trace import TraceEntry


class Core:
    """One trace-driven core."""

    def __init__(self, core_id: int, trace: Iterator[TraceEntry],
                 mlp: int = 8) -> None:
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.core_id = core_id
        self.trace = trace
        self.mlp = mlp
        self.clock = 0
        self.retired_instructions = 0
        self.misses_issued = 0
        self._outstanding: Deque[int] = deque()
        self._next: Optional[TraceEntry] = None

    def peek_issue_time(self) -> Optional[int]:
        """Earliest time the next miss can issue (None when trace ends)."""
        if self._next is None:
            self._next = next(self.trace, None)
            if self._next is None:
                return None
        ready = self.clock + self._next.compute_ps
        if len(self._outstanding) >= self.mlp:
            ready = max(ready, self._outstanding[0])
        return ready

    def pop_request(self) -> Tuple[int, TraceEntry]:
        """Commit to issuing the next miss; returns (issue_time, entry)."""
        issue = self.peek_issue_time()
        if issue is None:
            raise StopIteration("trace exhausted")
        entry = self._next
        self._next = None
        if len(self._outstanding) >= self.mlp:
            self._outstanding.popleft()
        self.clock = issue
        self.retired_instructions += entry.instructions
        self.misses_issued += 1
        return issue, entry

    def complete(self, completion_time: int) -> None:
        """Record the DRAM completion of the just-issued miss."""
        self._outstanding.append(completion_time)

    def ipc(self, window_ps: int, cycle_ps: float) -> float:
        """Instructions per cycle over a window of ``window_ps``."""
        if window_ps <= 0:
            return 0.0
        cycles = window_ps / cycle_ps
        return self.retired_instructions / cycles
