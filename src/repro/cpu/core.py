"""MLP-limited core model.

A core consumes its trace one miss at a time.  Between misses it spends
the entry's compute time; it may have up to ``mlp`` misses outstanding
(the memory-level parallelism the ROB can extract), and when the limit
is reached it stalls until the oldest miss returns.  IPC over a window
is retired instructions divided by window length.

This is the standard first-order model for memory-bound multi-core
throughput: it reproduces the sensitivity of IPC to (a) added DRAM
latency (PRAC's inflated tRP/tRC on row conflicts) and (b) stolen DRAM
time (REF/RFM/ALERT stalls), which are the only two effects behind the
paper's slowdown numbers.

Traces arrive either entry-at-a-time (any ``Iterator[TraceEntry]``) or
pre-chunked (:class:`repro.cpu.trace.ChunkSource`); the core buffers a
chunk of plain tuples internally either way, so the hot path indexes a
list instead of resuming a generator per miss.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Iterator, List, Optional, Tuple

from repro import _profile
from repro.cpu.trace import EntryTuple, TraceEntry, chunk_entries
from repro.obs import metrics as _metrics


class Core:
    """One trace-driven core."""

    __slots__ = ("core_id", "trace", "mlp", "tenant", "clock",
                 "retired_instructions", "misses_issued", "_outstanding",
                 "_chunks", "_buf", "_idx", "_m_stall_ps",
                 "_m_outstanding")

    def __init__(self, core_id: int, trace: Iterator[TraceEntry],
                 mlp: int = 8, tenant: Optional[str] = None) -> None:
        if mlp < 1:
            raise ValueError("mlp must be >= 1")
        self.core_id = core_id
        self.trace = trace
        self.mlp = mlp
        self.tenant = tenant
        """Tenant this core belongs to (None outside multi-tenant
        scenarios); pure identity metadata, never consulted by the
        timing model."""
        self.clock = 0
        self.retired_instructions = 0
        self.misses_issued = 0
        self._outstanding: Deque[int] = deque()
        if hasattr(trace, "next_chunk"):
            self._chunks = trace
        else:
            self._chunks = chunk_entries(trace)
        self._buf: List[EntryTuple] = []
        self._idx = 0
        reg = _metrics._ACTIVE
        self._m_stall_ps = reg.counter("cpu.stall_ps") \
            if reg is not None else None
        self._m_outstanding = reg.histogram(
            "cpu.outstanding", bounds=(1, 2, 4, 8, 16, 32)) \
            if reg is not None else None

    def _refill(self) -> bool:
        """Pull the next chunk into the buffer; False when exhausted."""
        prof = _profile._ACTIVE
        if prof is None:
            chunk = self._chunks.next_chunk()
        else:
            t0 = perf_counter()
            chunk = self._chunks.next_chunk()
            prof.trace_s += perf_counter() - t0
        if not chunk:
            return False
        self._buf = chunk
        self._idx = 0
        return True

    def peek_issue_time(self) -> Optional[int]:
        """Earliest time the next miss can issue (None when trace ends)."""
        idx = self._idx
        buf = self._buf
        if idx >= len(buf):
            if not self._refill():
                return None
            buf = self._buf
            idx = 0
        ready = self.clock + buf[idx][0]
        outstanding = self._outstanding
        if len(outstanding) >= self.mlp and outstanding[0] > ready:
            ready = outstanding[0]
        return ready

    def pop_tuple(self) -> Tuple[int, EntryTuple]:
        """Commit to the next miss; returns ``(issue_time, entry_tuple)``.

        The hot-path twin of :meth:`pop_request`: the entry comes back
        as a plain :data:`repro.cpu.trace.EntryTuple`.
        """
        issue = self.peek_issue_time()
        if issue is None:
            raise StopIteration("trace exhausted")
        tup = self._buf[self._idx]
        self._idx += 1
        counter = self._m_stall_ps
        if counter is not None:
            # Time lost waiting on the MLP limit: issue beyond the point
            # the compute delay alone would have allowed.
            wait = issue - (self.clock + tup[0])
            if wait > 0:
                counter.value += wait
        outstanding = self._outstanding
        if len(outstanding) >= self.mlp:
            outstanding.popleft()
        self.clock = issue
        self.retired_instructions += tup[1]
        self.misses_issued += 1
        return issue, tup

    def pop_request(self) -> Tuple[int, TraceEntry]:
        """Commit to issuing the next miss; returns (issue_time, entry)."""
        issue, tup = self.pop_tuple()
        return issue, TraceEntry(*tup)

    def complete(self, completion_time: int) -> None:
        """Record the DRAM completion of the just-issued miss."""
        self._outstanding.append(completion_time)
        hist = self._m_outstanding
        if hist is not None:
            hist.observe(len(self._outstanding))

    def ipc(self, window_ps: int, cycle_ps: float) -> float:
        """Instructions per cycle over a window of ``window_ps``."""
        if window_ps <= 0:
            return 0.0
        cycles = window_ps / cycle_ps
        return self.retired_instructions / cycles
