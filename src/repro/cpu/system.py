"""The assembled simulated system: cores, controllers, devices.

``MultiCoreSystem.run`` drives a fixed simulated window: cores issue
misses in global time order through the two subchannel controllers, and
the result captures everything the paper's figures need -- per-core IPC,
activation counts, ALERT/RFM rates, and mitigation-energy accounting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator, List, Optional

from repro import _profile
from repro.cpu.core import Core
from repro.cpu.trace import TraceEntry
from repro.dram.device import DramDevice
from repro.dram.mapping import RowToSubarrayMapping
from repro.mc.controller import MemoryController
from repro.mitigations.base import BankTracker
from repro.params import SystemConfig


@dataclass
class SimResult:
    """Everything measured over one simulated window."""

    window_ps: int
    config: SystemConfig
    ipc: List[float] = field(default_factory=list)
    instructions: List[int] = field(default_factory=list)
    total_requests: int = 0
    total_activations: int = 0
    row_hit_rate: float = 0.0
    alerts: List[int] = field(default_factory=list)
    rfms: List[int] = field(default_factory=list)
    bus_utilization: float = 0.0
    mitigations: int = 0
    victim_rows_refreshed: int = 0
    demand_rows_refreshed: int = 0
    max_unmitigated_acts: int = 0
    metrics: Optional[dict] = None
    """Metrics snapshot collected over the run (None when disabled)."""
    trace_events: Optional[list] = None
    """Structured trace events from the run (None when disabled)."""
    spans: Optional[list] = None
    """Wall-clock execution spans from the run (None when disabled)."""
    backend: Optional[str] = None
    """Kernel backend that produced this result (None = pre-backend
    payloads; backends are bit-identical, so this is pure metadata)."""
    tenants: Optional[List[Optional[str]]] = None
    """Per-core tenant names (None outside multi-tenant scenarios)."""
    unmitigated_by_bank: Optional[List[List[int]]] = None
    """Per-subchannel, per-bank worst unmitigated-ACT counts (escape
    exposure; ``max_unmitigated_acts`` is the max over this table)."""

    def weighted_speedup(self, baseline: "SimResult") -> float:
        """Sum of per-core IPC ratios against ``baseline`` (Section III)."""
        pairs = zip(self.ipc, baseline.ipc)
        return sum(s / b for s, b in pairs if b > 0)

    def normalized_performance(self, baseline: "SimResult") -> float:
        """Weighted speedup normalised to the core count (1.0 = parity)."""
        cores = sum(1 for b in baseline.ipc if b > 0)
        if cores == 0:
            return 1.0
        return self.weighted_speedup(baseline) / cores

    def slowdown_pct(self, baseline: "SimResult") -> float:
        """Percent slowdown vs the unprotected baseline."""
        return 100.0 * (1.0 - self.normalized_performance(baseline))

    def alerts_per_100_trefi(self) -> float:
        """ALERTs per 100 x tREFI per subchannel (Figure 11b's metric)."""
        trefi = self.config.timings.tREFI
        intervals = self.window_ps / trefi
        if intervals <= 0 or not self.alerts:
            return 0.0
        per_subchannel = sum(self.alerts) / len(self.alerts)
        return 100.0 * per_subchannel / intervals

    def refresh_power_overhead_pct(self) -> float:
        """Victim refreshes relative to demand refreshes, in percent."""
        if self.demand_rows_refreshed == 0:
            return 0.0
        return 100.0 * self.victim_rows_refreshed / \
            self.demand_rows_refreshed

    def acts_per_subarray(self) -> float:
        """Mean activations per subarray over the window (Figure 6)."""
        geometry = self.config.geometry
        total_subarrays = geometry.total_banks \
            * geometry.subarrays_per_bank
        return self.total_activations / total_subarrays

    def tenant_names(self) -> List[str]:
        """Distinct tenant names, in first-core order."""
        names: List[str] = []
        for name in self.tenants or []:
            if name is not None and name not in names:
                names.append(name)
        return names

    def _tenant_cores(self, tenant: str) -> List[int]:
        return [i for i, name in enumerate(self.tenants or [])
                if name == tenant]

    def tenant_instructions(self) -> dict:
        """Instructions retired per tenant."""
        return {name: sum(self.instructions[i]
                          for i in self._tenant_cores(name))
                for name in self.tenant_names()}

    def tenant_ipc(self) -> dict:
        """Mean per-core IPC of each tenant's cores."""
        out = {}
        for name in self.tenant_names():
            cores = self._tenant_cores(name)
            out[name] = sum(self.ipc[i] for i in cores) / len(cores)
        return out

    def tenant_slowdown_pct(self, baseline: "SimResult",
                            tenant: str) -> float:
        """Percent slowdown of one tenant's cores vs ``baseline``.

        The per-core IPC-ratio mean restricted to the tenant's cores
        (the victim-slowdown metric of the inter-VM sweep).  Core
        indices must line up: the baseline should be the same scenario
        shape run under a reference setup/pressure.
        """
        cores = [i for i in self._tenant_cores(tenant)
                 if baseline.ipc[i] > 0]
        if not cores:
            return 0.0
        ratio = sum(self.ipc[i] / baseline.ipc[i]
                    for i in cores) / len(cores)
        return 100.0 * (1.0 - ratio)

    def tenant_exposure(self, footprints: dict) -> dict:
        """Worst unmitigated-ACT count inside each tenant's footprint.

        ``footprints`` maps tenant name to ``(subchannel, bank)``
        pairs (see
        :func:`repro.workloads.tenants.scenario_footprints`); the
        escape exposure of a tenant is the worst oracle count over the
        banks it can reach.  Requires ``unmitigated_by_bank`` (any
        result collected at or after cache format 4).
        """
        table = self.unmitigated_by_bank or []
        out = {}
        for name, banks in footprints.items():
            out[name] = max((table[s][b] for s, b in banks
                             if s < len(table) and b < len(table[s])),
                            default=0)
        return out


TraceFactory = Callable[[int], Iterator[TraceEntry]]
TrackerFactoryForBank = Callable[[int, int], BankTracker]
MappingFactory = Callable[[], RowToSubarrayMapping]


class MultiCoreSystem:
    """Cores + two subchannel controllers + devices, run over a window."""

    def __init__(self, config: SystemConfig,
                 trace_factory: TraceFactory,
                 tracker_factory: Optional[TrackerFactoryForBank] = None,
                 mapping_factory: Optional[MappingFactory] = None,
                 rfm_bat: Optional[int] = None,
                 refs_per_window: Optional[int] = None,
                 mlp: int = 8,
                 blast_radius: int = 2,
                 record_commands: bool = False,
                 drfm_factory=None,
                 tenants: Optional[List[Optional[str]]] = None) -> None:
        self.config = config
        self.devices: List[DramDevice] = []
        self.mcs: List[MemoryController] = []
        self.command_logs = []
        for subch in range(config.geometry.subchannels):
            mapping = mapping_factory() if mapping_factory else None
            per_bank = None
            if tracker_factory is not None:
                per_bank = (lambda s: lambda bank_id: tracker_factory(
                    s, bank_id))(subch)
            device = DramDevice(config, per_bank, mapping,
                                refs_per_window, blast_radius,
                                subch=subch)
            self.devices.append(device)
            log = None
            if record_commands:
                from repro.mc.validator import CommandLog
                log = CommandLog()
                self.command_logs.append(log)
            drfm = drfm_factory(subch) if drfm_factory else None
            self.mcs.append(MemoryController(config, device, rfm_bat,
                                             command_log=log,
                                             drfm=drfm, subch=subch))
        self._tenants = list(tenants) if tenants is not None else None
        if self._tenants is not None and \
                len(self._tenants) != config.num_cores:
            raise ValueError(
                f"tenants has {len(self._tenants)} labels for "
                f"{config.num_cores} cores")
        self.cores: List[Core] = [
            Core(i, trace_factory(i), mlp,
                 tenant=self._tenants[i] if self._tenants else None)
            for i in range(config.num_cores)]

    def run(self, window_ps: int) -> SimResult:
        """Simulate ``window_ps`` picoseconds; return the measurements."""
        prof = _profile._ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        self.drive(window_ps)
        for mc in self.mcs:
            mc.finish(window_ps)
        if prof is not None:
            prof.add_run(perf_counter() - t0, window_ps,
                         sum(mc.total_requests for mc in self.mcs),
                         sum(mc.total_activations for mc in self.mcs))
        return self.collect(window_ps)

    def drive(self, window_ps: int) -> None:
        """Issue every in-window request (the heap loop of :meth:`run`).

        Splitting the drive phase from :meth:`finish`-and-:meth:`collect`
        lets kernel backends interpose between the last command and the
        measurement pass (the array backend flushes its deferred device
        bookkeeping there).
        """
        prof = _profile._ACTIVE
        heappush = heapq.heappush
        heappop = heapq.heappop
        cores = self.cores
        mcs = self.mcs
        num_mcs = len(mcs)
        serve_s = 0.0
        heap = []
        for core in cores:
            t = core.peek_issue_time()
            if t is not None:
                heappush(heap, (t, core.core_id))
        while heap:
            issue, core_id = heappop(heap)
            core = cores[core_id]
            if issue >= window_ps:
                # A queued core's state never changes while it waits, so
                # the key is exact and every later request of this core
                # is also past the window; re-derive defensively and
                # re-queue rather than dropping in-window work if that
                # invariant is ever broken.
                current = core.peek_issue_time()
                if current is not None and current < window_ps:
                    heappush(heap, (current, core_id))
                continue
            # tup fields: (compute_ps, instructions, subchannel, bank,
            # row) -- see repro.cpu.trace.EntryTuple.
            issue_time, tup = core.pop_tuple()
            mc = mcs[tup[2] % num_mcs]
            if prof is None:
                data_done = mc.serve_timing(tup[3], tup[4], issue_time)[1]
            else:
                s0 = perf_counter()
                data_done = mc.serve_timing(tup[3], tup[4], issue_time)[1]
                serve_s += perf_counter() - s0
            core.complete(data_done)
            nxt = core.peek_issue_time()
            if nxt is not None:
                heappush(heap, (nxt, core_id))
        if prof is not None:
            prof.serve_s += serve_s

    def collect(self, window_ps: int) -> SimResult:
        """Assemble the :class:`SimResult` from the driven system."""
        result = SimResult(window_ps=window_ps, config=self.config)
        cycle = self.config.core_cycle_ps
        for core in self.cores:
            result.ipc.append(core.ipc(window_ps, cycle))
            result.instructions.append(core.retired_instructions)
        requests = sum(mc.total_requests for mc in self.mcs)
        hits = sum(mc.row_hits for mc in self.mcs)
        result.total_requests = requests
        result.total_activations = sum(
            mc.total_activations for mc in self.mcs)
        result.row_hit_rate = hits / requests if requests else 0.0
        result.alerts = [mc.alerts for mc in self.mcs]
        result.rfms = [mc.rfm.rfms_issued for mc in self.mcs]
        utils = [mc.bus.utilization(window_ps) for mc in self.mcs]
        result.bus_utilization = sum(utils) / len(utils) if utils else 0.0
        result.mitigations = sum(
            d.stats.mitigations_total for d in self.devices)
        result.victim_rows_refreshed = sum(
            d.stats.victim_rows_refreshed for d in self.devices)
        result.demand_rows_refreshed = sum(
            d.stats.demand_rows_refreshed for d in self.devices)
        result.max_unmitigated_acts = max(
            d.max_unmitigated_acts() for d in self.devices)
        # Per-bank exposure and tenant labels are gathered here, after
        # every backend's deferred bookkeeping has flushed, so the
        # additions stay backend-neutral for free.
        result.unmitigated_by_bank = [
            [bank.oracle.max_unmitigated for bank in d.banks]
            for d in self.devices]
        if self._tenants is not None:
            result.tenants = list(self._tenants)
        return result
