"""Trace format shared by workload generators and the core model.

A trace is an iterator of :class:`TraceEntry` -- one entry per LLC miss
(DRAM request).  Entries carry the *compute time* separating this miss
from the previous one (picoseconds of useful work at full issue rate)
and the instruction count that work represents, so IPC can be reported
without simulating individual instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

EntryTuple = Tuple[int, int, int, int, int]
"""A trace entry as a plain tuple, in :class:`TraceEntry` field order:
``(compute_ps, instructions, subchannel, bank, row)``.  The hot run
loop moves entries in this form (``TraceEntry(*tup)`` round-trips)."""

ENTRY_DTYPE = _np.dtype([
    ("compute_ps", _np.int64),
    ("instructions", _np.int64),
    ("subchannel", _np.int64),
    ("bank", _np.int64),
    ("row", _np.int64),
]) if _np is not None else None
"""Structured dtype mirroring :data:`EntryTuple` field-for-field.

The vector kernel consumes trace chunks as flat arrays of this dtype;
``None`` when numpy is unavailable (the array views are then absent,
the tuple-chunk path is unaffected)."""


def chunk_to_array(chunk: List[EntryTuple]):
    """A chunk of entry tuples as one :data:`ENTRY_DTYPE` array."""
    return _np.array(chunk, dtype=ENTRY_DTYPE)


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One DRAM request in program order."""

    compute_ps: int
    """Compute time since the previous miss (ps at full issue width)."""

    instructions: int
    """Instructions retired between the previous miss and this one."""

    subchannel: int
    bank: int
    row: int


class ChunkSource:
    """A trace delivered as preformed chunks of :data:`EntryTuple`.

    Workload generators that can emit entries in bulk wrap their chunk
    generator in this class; :class:`repro.cpu.core.Core` detects the
    ``next_chunk`` attribute and consumes tuples straight out of the
    chunk lists, skipping per-entry object construction entirely.
    """

    __slots__ = ("_gen",)

    def __init__(self, chunks: Iterator[List[EntryTuple]]) -> None:
        self._gen = chunks

    def next_chunk(self) -> Optional[List[EntryTuple]]:
        """The next non-empty chunk, or ``None`` when the trace ends."""
        return next(self._gen, None)

    def next_chunk_array(self):
        """The next chunk as an :data:`ENTRY_DTYPE` array (or ``None``).

        A view change only: generation stays entry-at-a-time (the RNG
        call sequence is the generators' contract), and the array holds
        exactly the tuples :meth:`next_chunk` would have returned.
        """
        chunk = next(self._gen, None)
        if chunk is None:
            return None
        return chunk_to_array(chunk)

    def __iter__(self) -> Iterator[TraceEntry]:
        """Entry-at-a-time view (compat with iterator consumers)."""
        for chunk in self._gen:
            for tup in chunk:
                yield TraceEntry(*tup)


def chunk_entries(trace: Iterable[TraceEntry],
                  size: int = 256) -> ChunkSource:
    """Adapt an entry-at-a-time trace into a :class:`ChunkSource`.

    Pulls up to ``size`` entries ahead of the consumer; traces must not
    depend on simulation state between pulls (all in-repo generators are
    pure functions of their own RNG, so prefetch is safe).
    """

    def generate() -> Iterator[List[EntryTuple]]:
        it = iter(trace)
        while True:
            chunk: List[EntryTuple] = []
            append = chunk.append
            for entry in it:
                append((entry.compute_ps, entry.instructions,
                        entry.subchannel, entry.bank, entry.row))
                if len(chunk) >= size:
                    break
            if not chunk:
                return
            yield chunk

    return ChunkSource(generate())


def cyclic(entries: List[TraceEntry]) -> Iterator[TraceEntry]:
    """Repeat a finite trace forever (rate-mode windows)."""
    if not entries:
        raise ValueError("cannot cycle an empty trace")

    def generate() -> Iterator[TraceEntry]:
        while True:
            for entry in entries:
                yield entry
    return generate()


def take(trace: Iterable[TraceEntry], n: int) -> List[TraceEntry]:
    """Materialise the first ``n`` entries of a trace."""
    out: List[TraceEntry] = []
    for entry in trace:
        out.append(entry)
        if len(out) >= n:
            break
    return out
