"""Trace format shared by workload generators and the core model.

A trace is an iterator of :class:`TraceEntry` -- one entry per LLC miss
(DRAM request).  Entries carry the *compute time* separating this miss
from the previous one (picoseconds of useful work at full issue rate)
and the instruction count that work represents, so IPC can be reported
without simulating individual instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class TraceEntry:
    """One DRAM request in program order."""

    compute_ps: int
    """Compute time since the previous miss (ps at full issue width)."""

    instructions: int
    """Instructions retired between the previous miss and this one."""

    subchannel: int
    bank: int
    row: int


def cyclic(entries: List[TraceEntry]) -> Iterator[TraceEntry]:
    """Repeat a finite trace forever (rate-mode windows)."""
    if not entries:
        raise ValueError("cannot cycle an empty trace")

    def generate() -> Iterator[TraceEntry]:
        while True:
            for entry in entries:
                yield entry
    return generate()


def take(trace: Iterable[TraceEntry], n: int) -> List[TraceEntry]:
    """Materialise the first ``n`` entries of a trace."""
    out: List[TraceEntry] = []
    for entry in trace:
        out.append(entry)
        if len(out) >= n:
            break
    return out
