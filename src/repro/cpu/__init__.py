"""Simplified multi-core performance model.

The paper's slowdowns are memory-stall driven, so the core model is an
MLP-limited trace consumer: each core alternates compute intervals with
DRAM misses, keeps a bounded number of misses outstanding (the ROB's
memory-level parallelism), and stalls when the oldest miss has not
returned.  Weighted speedup over a fixed simulated window is the
performance metric, as in the paper.
"""

from repro.cpu.core import Core
from repro.cpu.system import MultiCoreSystem, SimResult
from repro.cpu.trace import TraceEntry

__all__ = ["Core", "MultiCoreSystem", "SimResult", "TraceEntry"]
