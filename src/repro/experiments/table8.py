"""Table VIII: mitigation overhead of MINT vs MIRZA.

MIRZA's mitigation rate is (RCT escape probability) x (1/MINT-W);
MINT's is 1/W at the proactive window for the same threshold.  The
escape probability is measured on the benign workloads through the
activation-level CGF path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments.common import (
    CgfJob,
    cgf_scale,
    measure_cgf_many,
    selected_workloads,
)
from repro.params import SimScale
from repro.sim.runner import MINT_RFM_WINDOWS
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    2000: {"mint": 1 / 96, "escape": 1 / 751, "mirza": 1 / 12016,
           "ratio": 125},
    1000: {"mint": 1 / 48, "escape": 1 / 114, "mirza": 1 / 1368,
           "ratio": 28.5},
    500: {"mint": 1 / 24, "escape": 1 / 30, "mirza": 1 / 240,
          "ratio": 10},
}


@dataclass
class Table8Row:
    trhd: int
    mint_rate: float
    escape_probability: float
    mirza_rate: float

    @property
    def reduction(self) -> float:
        """How many times fewer mitigations MIRZA performs."""
        return self.mint_rate / self.mirza_rate if self.mirza_rate \
            else float("inf")


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds=(2000, 1000, 500),
        session: Optional[SimSession] = None) -> List[Table8Row]:
    """Execute the experiment; returns the structured results."""
    scale = scale or cgf_scale()
    specs = selected_workloads(workloads)
    configs = [MirzaConfig.paper_config(trhd) for trhd in thresholds]
    jobs = [CgfJob(spec, "strided", scale.scale_threshold(config.fth),
                   config.num_regions, scale)
            for config in configs for spec in specs]
    outcomes = iter(measure_cgf_many(jobs, session))
    rows = []
    for trhd, config in zip(thresholds, configs):
        escaped = total = 0
        for _ in specs:
            stats = next(outcomes)
            escaped += stats.escaped
            total += stats.total_acts
        # ACT-weighted pooled escape probability, as in the paper.
        escape = escaped / total if total else 0.0
        mirza_rate = escape / config.mint_window
        rows.append(Table8Row(
            trhd=trhd,
            mint_rate=1.0 / MINT_RFM_WINDOWS[trhd],
            escape_probability=escape,
            mirza_rate=mirza_rate,
        ))
    return rows


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table_rows = []
    for row in run():
        paper = PAPER[row.trhd]
        esc = (f"1/{1 / row.escape_probability:.0f}"
               if row.escape_probability else "0")
        rate = (f"1/{1 / row.mirza_rate:.0f}" if row.mirza_rate else "0")
        table_rows.append([
            row.trhd,
            f"1/{1 / row.mint_rate:.0f}",
            f"{esc} (paper 1/{1 / paper['escape']:.0f})",
            f"{rate} (paper 1/{1 / paper['mirza']:.0f})",
            f"{row.reduction:.0f}x (paper {paper['ratio']}x)",
        ])
    table = format_table(
        ["TRHD", "MINT rate", "escape prob", "MIRZA rate",
         "reduction"],
        table_rows, title="Table VIII: mitigation overhead")
    print(table)
    return table


if __name__ == "__main__":
    main()
