"""Table VIII: mitigation overhead of MINT vs MIRZA.

MIRZA's mitigation rate is (RCT escape probability) x (1/MINT-W);
MINT's is 1/W at the proactive window for the same threshold.  The
escape probability is measured on the benign workloads through the
activation-level CGF path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.common import CgfJob
from repro.experiments.framework import Cell, Check, Context
from repro.params import SimScale
from repro.sim.runner import MINT_RFM_WINDOWS
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    2000: {"mint": 1 / 96, "escape": 1 / 751, "mirza": 1 / 12016,
           "ratio": 125},
    1000: {"mint": 1 / 48, "escape": 1 / 114, "mirza": 1 / 1368,
           "ratio": 28.5},
    500: {"mint": 1 / 24, "escape": 1 / 30, "mirza": 1 / 240,
          "ratio": 10},
}

_THRESHOLDS = (2000, 1000, 500)


@dataclass
class Table8Row:
    trhd: int
    mint_rate: float
    escape_probability: float
    mirza_rate: float

    @property
    def reduction(self) -> float:
        """How many times fewer mitigations MIRZA performs."""
        return self.mint_rate / self.mirza_rate if self.mirza_rate \
            else float("inf")


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.counting_scale()
    cells = []
    for trhd in ctx.opt("thresholds", _THRESHOLDS):
        config = MirzaConfig.paper_config(trhd)
        cells.extend(
            Cell((trhd, spec.name),
                 CgfJob(spec, "strided",
                        scale.scale_threshold(config.fth),
                        config.num_regions, scale))
            for spec in ctx.specs())
    return cells


def _reduce(cells: framework.Cells) -> List[Table8Row]:
    rows = []
    for trhd in cells.ctx.opt("thresholds", _THRESHOLDS):
        config = MirzaConfig.paper_config(trhd)
        escaped = total = 0
        for spec in cells.ctx.specs():
            stats = cells[(trhd, spec.name)]
            escaped += stats.escaped
            total += stats.total_acts
        # ACT-weighted pooled escape probability, as in the paper.
        escape = escaped / total if total else 0.0
        rows.append(Table8Row(
            trhd=trhd,
            mint_rate=1.0 / MINT_RFM_WINDOWS[trhd],
            escape_probability=escape,
            mirza_rate=escape / config.mint_window,
        ))
    return rows


def _render(rows: List[Table8Row]) -> str:
    table_rows = []
    for row in rows:
        paper = PAPER[row.trhd]
        esc = (f"1/{1 / row.escape_probability:.0f}"
               if row.escape_probability else "0")
        rate = (f"1/{1 / row.mirza_rate:.0f}" if row.mirza_rate else "0")
        table_rows.append([
            row.trhd,
            f"1/{1 / row.mint_rate:.0f}",
            f"{esc} (paper 1/{1 / paper['escape']:.0f})",
            f"{rate} (paper 1/{1 / paper['mirza']:.0f})",
            f"{row.reduction:.0f}x (paper {paper['ratio']}x)",
        ])
    return format_table(
        ["TRHD", "MINT rate", "escape prob", "MIRZA rate",
         "reduction"],
        table_rows, title="Table VIII: mitigation overhead")


def _reduction_of(trhd: int):
    def measured(rows: List[Table8Row]) -> float:
        for row in rows:
            if row.trhd == trhd:
                return row.reduction
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table8",
    title="Table VIII",
    description="Mitigation overhead of MINT vs MIRZA",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("TRHD 1000 mitigation reduction x",
              PAPER[1000]["ratio"], _reduction_of(1000), rel_tol=0.9),
        Check("TRHD 500 mitigation reduction x",
              PAPER[500]["ratio"], _reduction_of(500), rel_tol=0.9),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds=_THRESHOLDS,
        session: Optional[SimSession] = None) -> List[Table8Row]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, cgf=scale,
                       thresholds=tuple(thresholds))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
