"""Figure 13: refresh-power overhead of MINT vs MIRZA.

Refresh power overhead is victim-refresh rows relative to demand-
refresh rows (Section II-F).  Both are *rates*, so the experiment
computes them from measured quantities directly:

- demand refresh covers every row once per tREFW
  (``rows_per_bank`` victims' worth of demand work);
- MINT mitigates one aggressor (4 victim rows) every W activations:
  ``acts_per_bank_per_tREFW / W * 4`` victim rows;
- MIRZA multiplies that by the measured RCT escape probability (the
  Table VIII measurement), since only escaping activations participate
  in mitigation at all.

The paper's numbers: MINT 16.4% / ~8% / 4.1% and MIRZA well under 1.5%
at TRHD 500 / 1K / 2K -- a 10x-125x reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.common import CgfJob
from repro.experiments.framework import Cell, Check, Context
from repro.params import MitigationCosts, SimScale, SystemConfig
from repro.sim.runner import MINT_RFM_WINDOWS
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean

PAPER = {
    "mint": {500: 16.4, 1000: 8.0, 2000: 4.1},
    "mirza": {500: 1.5, 1000: 0.3, 2000: 0.05},
}

_THRESHOLDS = (500, 1000, 2000)


@dataclass
class Fig13Result:
    mint_overhead: Dict[int, float] = field(default_factory=dict)
    mirza_overhead: Dict[int, float] = field(default_factory=dict)


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.counting_scale()
    cells = []
    for trhd in ctx.opt("thresholds", _THRESHOLDS):
        mirza_config = MirzaConfig.paper_config(trhd)
        cells.extend(
            Cell((trhd, spec.name),
                 CgfJob(spec, "strided",
                        scale.scale_threshold(mirza_config.fth),
                        mirza_config.num_regions, scale))
            for spec in ctx.specs())
    return cells


def _reduce(cells: framework.Cells) -> Fig13Result:
    victims = MitigationCosts().victims_per_mitigation
    config = cells.ctx.opt("config", SystemConfig())
    rows_per_bank = config.geometry.rows_per_bank
    result = Fig13Result()
    for trhd in cells.ctx.opt("thresholds", _THRESHOLDS):
        mirza_config = MirzaConfig.paper_config(trhd)
        mint_vals, mirza_vals = [], []
        for spec in cells.ctx.specs():
            acts = spec.acts_per_bank_per_window
            mint_rate = acts / MINT_RFM_WINDOWS[trhd]
            mint_vals.append(
                100.0 * mint_rate * victims / rows_per_bank)
            stats = cells[(trhd, spec.name)]
            escape = (stats.escaped / stats.total_acts
                      if stats.total_acts else 0.0)
            mirza_rate = acts * escape / mirza_config.mint_window
            mirza_vals.append(
                100.0 * mirza_rate * victims / rows_per_bank)
        result.mint_overhead[trhd] = mean(mint_vals)
        result.mirza_overhead[trhd] = mean(mirza_vals)
    return result


def _render(result: Fig13Result) -> str:
    rows = []
    for trhd in sorted(result.mint_overhead):
        rows.append([
            trhd,
            f"{result.mint_overhead[trhd]:.2f}% "
            f"(paper {PAPER['mint'][trhd]}%)",
            f"{result.mirza_overhead[trhd]:.3f}% "
            f"(paper {PAPER['mirza'][trhd]}%)",
        ])
    return format_table(
        ["TRHD", "MINT refresh power", "MIRZA refresh power"],
        rows, title="Figure 13: refresh power overhead")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="fig13",
    title="Figure 13",
    description="Refresh power of MINT vs MIRZA",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("MINT-1000 refresh power %", PAPER["mint"][1000],
              lambda r: r.mint_overhead.get(1000, float("nan")),
              rel_tol=0.75),
        Check("MIRZA-1000 refresh power %", PAPER["mirza"][1000],
              lambda r: r.mirza_overhead.get(1000, float("nan")),
              rel_tol=1.0, abs_tol=1.0),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds=_THRESHOLDS,
        config: SystemConfig = SystemConfig(),
        session: Optional[SimSession] = None) -> Fig13Result:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, cgf=scale,
                       thresholds=tuple(thresholds), config=config)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
