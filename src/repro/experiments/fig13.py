"""Figure 13: refresh-power overhead of MINT vs MIRZA.

Refresh power overhead is victim-refresh rows relative to demand-
refresh rows (Section II-F).  Both are *rates*, so the experiment
computes them from measured quantities directly:

- demand refresh covers every row once per tREFW
  (``rows_per_bank`` victims' worth of demand work);
- MINT mitigates one aggressor (4 victim rows) every W activations:
  ``acts_per_bank_per_tREFW / W * 4`` victim rows;
- MIRZA multiplies that by the measured RCT escape probability (the
  Table VIII measurement), since only escaping activations participate
  in mitigation at all.

The paper's numbers: MINT 16.4% / ~8% / 4.1% and MIRZA well under 1.5%
at TRHD 500 / 1K / 2K -- a 10x-125x reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MirzaConfig
from repro.experiments.common import (
    CgfJob,
    cgf_scale,
    measure_cgf_many,
    selected_workloads,
)
from repro.params import MitigationCosts, SimScale, SystemConfig
from repro.sim.runner import MINT_RFM_WINDOWS
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean

PAPER = {
    "mint": {500: 16.4, 1000: 8.0, 2000: 4.1},
    "mirza": {500: 1.5, 1000: 0.3, 2000: 0.05},
}


@dataclass
class Fig13Result:
    mint_overhead: Dict[int, float] = field(default_factory=dict)
    mirza_overhead: Dict[int, float] = field(default_factory=dict)


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds=(500, 1000, 2000),
        config: SystemConfig = SystemConfig(),
        session: Optional[SimSession] = None) -> Fig13Result:
    """Execute the experiment; returns the structured results."""
    scale = scale or cgf_scale()
    specs = selected_workloads(workloads)
    victims = MitigationCosts().victims_per_mitigation
    rows_per_bank = config.geometry.rows_per_bank
    result = Fig13Result()
    mirza_configs = [MirzaConfig.paper_config(trhd)
                     for trhd in thresholds]
    jobs = [CgfJob(spec, "strided",
                   scale.scale_threshold(mirza_config.fth),
                   mirza_config.num_regions, scale)
            for mirza_config in mirza_configs for spec in specs]
    outcomes = iter(measure_cgf_many(jobs, session))
    for trhd, mirza_config in zip(thresholds, mirza_configs):
        mint_vals, mirza_vals = [], []
        for spec in specs:
            acts = spec.acts_per_bank_per_window
            mint_rate = acts / MINT_RFM_WINDOWS[trhd]
            mint_vals.append(
                100.0 * mint_rate * victims / rows_per_bank)
            stats = next(outcomes)
            escape = (stats.escaped / stats.total_acts
                      if stats.total_acts else 0.0)
            mirza_rate = acts * escape / mirza_config.mint_window
            mirza_vals.append(
                100.0 * mirza_rate * victims / rows_per_bank)
        result.mint_overhead[trhd] = mean(mint_vals)
        result.mirza_overhead[trhd] = mean(mirza_vals)
    return result


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    result = run()
    rows = []
    for trhd in sorted(result.mint_overhead):
        rows.append([
            trhd,
            f"{result.mint_overhead[trhd]:.2f}% "
            f"(paper {PAPER['mint'][trhd]}%)",
            f"{result.mirza_overhead[trhd]:.3f}% "
            f"(paper {PAPER['mirza'][trhd]}%)",
        ])
    table = format_table(
        ["TRHD", "MINT refresh power", "MIRZA refresh power"],
        rows, title="Figure 13: refresh power overhead")
    print(table)
    return table


if __name__ == "__main__":
    main()
