"""Table II: TRHD tolerated by MINT and Mithril vs mitigation rate.

The MINT column is analytic (the sampling model, calibrated once
against the public MINT model).  The Mithril column is *measured*: the
feinting attack is driven against our Misra-Gries implementation in the
single-bank harness and the worst per-row unmitigated count is read off
the oracle.  To keep the measurement tractable in pure Python the
harness uses a scaled-down tracker (fewer entries); the paper's 2K-entry
row is reported analytically alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.mitigations.mithril import MithrilTracker
from repro.security.analysis import (
    acts_per_ref_interval,
    mint_trh_for_mitigation_rate,
    mithril_trh_bound,
    refresh_cannibalization,
)
from repro.security.attacks import SingleBankHarness
from repro.sim.stats import format_table
from repro.workloads.attacks import feinting_attack_stream

PAPER = {
    1: {"cannibalization": 68.0, "mint": 1500, "mithril": 1000},
    2: {"cannibalization": 34.0, "mint": 2900, "mithril": 1700},
    4: {"cannibalization": 17.0, "mint": 5800, "mithril": 2900},
    8: {"cannibalization": 8.5, "mint": 11600, "mithril": 5400},
}


@dataclass
class Table2Row:
    refs_per_mitigation: int
    cannibalization_pct: float
    mint_trhd: int
    mithril_measured: int
    mithril_bound: int


def measure_mithril_feinting(entries: int, refs_per_mitigation: int,
                             acts: int = 150_000) -> int:
    """Worst unmitigated count the feinting attack sustains."""
    tracker = MithrilTracker(entries=entries,
                             refs_per_mitigation=refs_per_mitigation)
    harness = SingleBankHarness(
        tracker, acts_per_ref=acts_per_ref_interval())
    harness.run(feinting_attack_stream(entries, acts))
    return harness.max_unmitigated


def run(mithril_entries: int = 128,
        feinting_acts: int = 150_000) -> List[Table2Row]:
    """Execute the experiment; returns the structured results."""
    rows = []
    for rate in (1, 2, 4, 8):
        rows.append(Table2Row(
            refs_per_mitigation=rate,
            cannibalization_pct=100 * refresh_cannibalization(rate),
            mint_trhd=mint_trh_for_mitigation_rate(rate),
            mithril_measured=measure_mithril_feinting(
                mithril_entries, rate, feinting_acts),
            mithril_bound=mithril_trh_bound(2048, rate),
        ))
    return rows


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    rows = run()
    table_rows = []
    for r in rows:
        paper = PAPER[r.refs_per_mitigation]
        table_rows.append([
            f"1 per {r.refs_per_mitigation} REF",
            f"{r.cannibalization_pct:.1f}%",
            f"{paper['cannibalization']}%",
            r.mint_trhd, paper["mint"],
            r.mithril_measured, paper["mithril"],
        ])
    table = format_table(
        ["Mitigation rate", "cannibal.", "paper", "MINT TRHD",
         "paper", "Mithril TRHD (128-entry, measured)", "paper (2K)"],
        table_rows,
        title="Table II: tolerated TRHD vs mitigation rate")
    print(table)
    return table


if __name__ == "__main__":
    main()
