"""Table II: TRHD tolerated by MINT and Mithril vs mitigation rate.

The MINT column is analytic (the sampling model, calibrated once
against the public MINT model).  The Mithril column is *measured*: the
feinting attack is driven against our Misra-Gries implementation in the
single-bank harness and the worst per-row unmitigated count is read off
the oracle.  To keep the measurement tractable in pure Python the
harness uses a scaled-down tracker (fewer entries); the paper's 2K-entry
row is reported analytically alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments import framework
from repro.experiments.framework import Cell, Check, Context
from repro.mitigations.mithril import MithrilTracker
from repro.security.analysis import (
    acts_per_ref_interval,
    mint_trh_for_mitigation_rate,
    mithril_trh_bound,
    refresh_cannibalization,
)
from repro.security.attacks import SingleBankHarness
from repro.sim.session import SimSession, register_job_type
from repro.sim.stats import format_table
from repro.workloads.attacks import feinting_attack_stream

PAPER = {
    1: {"cannibalization": 68.0, "mint": 1500, "mithril": 1000},
    2: {"cannibalization": 34.0, "mint": 2900, "mithril": 1700},
    4: {"cannibalization": 17.0, "mint": 5800, "mithril": 2900},
    8: {"cannibalization": 8.5, "mint": 11600, "mithril": 5400},
}

_RATES = (1, 2, 4, 8)


@dataclass
class Table2Row:
    refs_per_mitigation: int
    cannibalization_pct: float
    mint_trhd: int
    mithril_measured: int
    mithril_bound: int


def measure_mithril_feinting(entries: int, refs_per_mitigation: int,
                             acts: int = 150_000) -> int:
    """Worst unmitigated count the feinting attack sustains."""
    tracker = MithrilTracker(entries=entries,
                             refs_per_mitigation=refs_per_mitigation)
    harness = SingleBankHarness(
        tracker, acts_per_ref=acts_per_ref_interval())
    harness.run(feinting_attack_stream(entries, acts))
    return harness.max_unmitigated


@dataclass(frozen=True)
class FeintingJob:
    """One :func:`measure_mithril_feinting` run as a session job."""

    entries: int
    refs_per_mitigation: int
    acts: int = 150_000

    def execute(self) -> int:
        """Drive the feinting attack (uncached worker-process path)."""
        return measure_mithril_feinting(self.entries,
                                        self.refs_per_mitigation,
                                        self.acts)


register_job_type(FeintingJob, lambda value: value, lambda value: value)


def _grid(ctx: Context) -> List[Cell]:
    entries = ctx.opt("mithril_entries", 128)
    acts = ctx.opt("feinting_acts", 150_000)
    return [Cell(rate, FeintingJob(entries, rate, acts))
            for rate in _RATES]


def _reduce(cells: framework.Cells) -> List[Table2Row]:
    rows = []
    for rate in _RATES:
        rows.append(Table2Row(
            refs_per_mitigation=rate,
            cannibalization_pct=100 * refresh_cannibalization(rate),
            mint_trhd=mint_trh_for_mitigation_rate(rate),
            mithril_measured=cells[rate],
            mithril_bound=mithril_trh_bound(2048, rate),
        ))
    return rows


def _render(rows: List[Table2Row]) -> str:
    table_rows = []
    for r in rows:
        paper = PAPER[r.refs_per_mitigation]
        table_rows.append([
            f"1 per {r.refs_per_mitigation} REF",
            f"{r.cannibalization_pct:.1f}%",
            f"{paper['cannibalization']}%",
            r.mint_trhd, paper["mint"],
            r.mithril_measured, paper["mithril"],
        ])
    return format_table(
        ["Mitigation rate", "cannibal.", "paper", "MINT TRHD",
         "paper", "Mithril TRHD (128-entry, measured)", "paper (2K)"],
        table_rows,
        title="Table II: tolerated TRHD vs mitigation rate")


def _row_of(rate: int, attr: str):
    def measured(rows: List[Table2Row]) -> float:
        for row in rows:
            if row.refs_per_mitigation == rate:
                return getattr(row, attr)
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table2",
    title="Table II",
    description="Tolerated TRHD vs mitigation rate",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("1/4 REF cannibalization %",
              PAPER[4]["cannibalization"],
              _row_of(4, "cannibalization_pct"), rel_tol=0.25),
        Check("1/4 REF MINT TRHD", PAPER[4]["mint"],
              _row_of(4, "mint_trhd"), rel_tol=0.25),
    ),
))


def run(mithril_entries: int = 128,
        feinting_acts: int = 150_000,
        session: Optional[SimSession] = None) -> List[Table2Row]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(mithril_entries=mithril_entries,
                       feinting_acts=feinting_acts)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
