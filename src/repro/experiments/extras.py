"""Extension exhibits beyond the paper's own tables and figures.

- :func:`lifetime_table` -- what the calibrated failure exponent means
  at machine and fleet scale (the context behind Table II's security
  column).
- :func:`energy_table` -- absolute mitigation-energy per activation
  for MINT vs MIRZA (Figure 13 recast in picojoules) plus the SRAM
  power fraction of Section VIII-B.
- :func:`storage_comparison` -- every implemented tracker's SRAM bill
  at TRHD=1000 side by side.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import StridedR2SA
from repro.energy import (
    mirza_sram_power_fraction,
    mitigation_energy_per_act,
)
from repro.experiments import framework
from repro.experiments.framework import Context
from repro.mitigations.hydra import HydraTracker
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.mithril import MithrilTracker
from repro.mitigations.pride import PrideTracker
from repro.mitigations.protrr import ProTrrTracker
from repro.mitigations.trr import TrrTracker
from repro.params import DramGeometry
from repro.security.lifetime import lifetime_report
from repro.security.mint_model import MINT_FAILURE_EXPONENT
from repro.sim.runner import MINT_RFM_WINDOWS
from repro.sim.session import SimSession
from repro.sim.stats import format_table


def _lifetime_table() -> str:
    """Fleet-lifetime interpretation of candidate failure exponents.

    Note the calibrated k = 28.5 is the *simplified* model's constant
    fit to the paper's tolerated-TRH numbers; it treats every refresh
    window as an independent attack trial, which is far more
    pessimistic than the published MINT lifetime analysis.  The table
    shows how k maps to fleet risk under that pessimistic reading --
    the operative rows are the larger exponents a deployment would
    provision for.
    """
    rows = []
    for k in (MINT_FAILURE_EXPONENT, 40.0, 50.0, 60.0):
        report = lifetime_report(k)
        rows.append([
            f"{k:.1f}",
            f"{report.single_machine_mttf_years:.3g} y",
            f"{report.single_machine_failure_10y:.3g}",
            f"{report.fleet_1k_failure_10y:.3g}",
        ])
    return format_table(
        ["fail exponent k", "1-machine MTTF",
         "P(fail, 1 machine, 10y)", "P(fail, 1k fleet, 10y)"],
        rows, title="Lifetime arithmetic behind the 2^-k budgets")


def lifetime_table() -> str:
    """Print the lifetime table; returns the rendered text."""
    table = _lifetime_table()
    print(table)
    return table


def _energy_table() -> str:
    """Mitigation energy per activation, MINT vs MIRZA (pJ)."""
    escapes = {500: 1 / 30, 1000: 1 / 114, 2000: 1 / 751}
    rows = []
    for trhd in (500, 1000, 2000):
        config = MirzaConfig.paper_config(trhd)
        mint = mitigation_energy_per_act(MINT_RFM_WINDOWS[trhd], 1.0)
        mirza = mitigation_energy_per_act(config.mint_window,
                                          escapes[trhd])
        rows.append([trhd, f"{mint:.3f} pJ", f"{mirza:.5f} pJ",
                     f"{mint / mirza:.0f}x"])
    rows.append(["SRAM power",
                 f"{100 * mirza_sram_power_fraction():.2f}% of chip",
                 "(paper ~0.25%)", ""])
    return format_table(
        ["TRHD", "MINT", "MIRZA", "reduction"],
        rows, title="Mitigation energy per activation "
                    "(paper escape probabilities)")


def energy_table() -> str:
    """Print the energy table; returns the rendered text."""
    table = _energy_table()
    print(table)
    return table


def _storage_comparison(trhd: int = 1000) -> str:
    """SRAM bytes per bank for every implemented tracker."""
    geometry = DramGeometry()
    config = MirzaConfig.paper_config(trhd)
    mirza = MirzaTracker(config, geometry, StridedR2SA(geometry),
                         random.Random(0))
    trackers = [
        ("MIRZA", mirza.storage_bits()),
        ("MINT (+DMQ)", MintTracker(48).storage_bits()),
        ("PrIDE", PrideTracker().storage_bits()),
        ("TRR (insecure)", TrrTracker().storage_bits()),
        ("Hydra (SRAM part)", HydraTracker().storage_bits()),
        ("Mithril 2K", MithrilTracker().storage_bits()),
        ("ProTRR 2K", ProTrrTracker().storage_bits()),
    ]
    rows = [[name, f"{bits / 8:,.0f} B"] for name, bits in trackers]
    return format_table(
        ["Tracker", "SRAM/bank"], rows,
        title=f"Tracker storage at TRHD={trhd}")


def storage_comparison(trhd: int = 1000) -> str:
    """Print the storage comparison; returns the rendered text."""
    table = _storage_comparison(trhd)
    print(table)
    return table


def _reduce(cells: framework.Cells) -> Dict[str, str]:
    trhd = cells.ctx.opt("storage_trhd", 1000)
    return {
        "lifetime": _lifetime_table(),
        "energy": _energy_table(),
        "storage": _storage_comparison(trhd),
    }


def _render(tables: Dict[str, str]) -> str:
    return "\n\n".join([tables["lifetime"], tables["energy"],
                        tables["storage"]])


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="extras",
    title="Extras",
    description="Lifetime / energy / storage extensions",
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
))


def run(session: Optional[SimSession] = None) -> Dict[str, str]:
    """Execute the experiment; returns the three rendered tables."""
    return framework.run_experiment(EXPERIMENT, Context.make(),
                                    session=session)


def main() -> str:
    """Print the extension tables; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
