"""Extension exhibit: seeded attack-parameter fuzz sweep.

The adversarial counterpart of the paper exhibits: instead of running
the fixed attack set, sample pattern shapes from the declarative DSL
(:mod:`repro.workloads.patterns`) and sweep them against each
mitigation, ranking cells by the oracle's max per-row unmitigated ACT
count.  The declared check asserts the open-ended search earns its
keep -- at least one fuzzed pattern must strictly beat every paper-set
pattern against the insecure TRR reference.

Knobs (``Context`` options): ``fuzz_mitigations``, ``fuzz_budget``,
``fuzz_acts`` (default: a full refresh window of ACTs divided by the
time scale, floored at 12K so capacity-edge behaviour stays visible
at smoke scales).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import framework
from repro.experiments.framework import Cell, Context
from repro.params import SimScale
from repro.security.fuzz import (
    FuzzReport,
    FuzzSpec,
    default_acts,
    fuzz_jobs,
    run_fuzz,
)
from repro.sim.session import SimSession

MITIGATIONS = ("trr", "prac-1000", "mirza-1000")
"""Default mitigation axis: the broken DDR4 reference next to the
paper's secure configurations."""

BUDGET = 12
"""Default fuzzed patterns per sweep."""

DOMINANCE_TARGET = "trr"
"""The mitigation the fuzzer is expected to out-attack."""


def _spec(ctx: Context) -> FuzzSpec:
    acts = ctx.opt("fuzz_acts")
    if acts is None:
        acts = default_acts(ctx.timed_scale().time_scale)
    return FuzzSpec(
        mitigations=tuple(ctx.opt("fuzz_mitigations", MITIGATIONS)),
        budget=ctx.opt("fuzz_budget", BUDGET),
        acts=acts,
        seed=ctx.run_seed())


def _grid(ctx: Context) -> List[Cell]:
    spec = _spec(ctx)
    return [Cell((job.mitigation, origin, index), job)
            for index, (origin, job) in enumerate(fuzz_jobs(spec))]


def _reduce(cells: framework.Cells) -> FuzzReport:
    from repro.security.fuzz import FuzzEntry
    spec = _spec(cells.ctx)
    entries = [FuzzEntry(origin=key[1], outcome=cells[key])
               for key in cells]
    return FuzzReport(spec=spec, entries=entries)


def _rows(report: FuzzReport) -> List[List[str]]:
    rows = []
    for mitigation in report.spec.mitigations:
        for entry in report.ranked(mitigation)[:3]:
            o = entry.outcome
            rows.append([mitigation, entry.origin,
                         str(o.max_unmitigated), str(o.alerts),
                         str(o.mitigations), o.label])
        verdict = "dominated" if report.dominated(mitigation) \
            else "not beaten"
        rows.append([mitigation, "--", "", "", "",
                     f"paper set {verdict} by the fuzzed pool"])
    return rows


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="fuzz",
    title="Fuzz",
    description="Seeded attack-pattern fuzz sweep: max per-row "
                "escapes, fuzzed pool vs the paper attack set",
    grid=_grid,
    reduce=_reduce,
    render=framework.TableSpec(
        title="Fuzz sweep: top escapes per mitigation "
              "(max unmitigated ACTs per row, oracle ground truth)",
        columns=("Mitigation", "Origin", "Escapes", "ALERTs",
                 "Mitigations", "Pattern"),
        rows=_rows),
    checks=(
        framework.Check(
            label="fuzzed pattern dominates the paper attack set "
                  "vs TRR (1 = yes)",
            paper=1.0,
            measured=lambda r: float(r.dominated(DOMINANCE_TARGET)),
            abs_tol=0.0),
    ),
))


def run(scale: Optional[SimScale] = None,
        session: Optional[SimSession] = None,
        **options) -> FuzzReport:
    """Execute the sweep; returns the reduced report."""
    ctx = Context.make(scale=scale, **options)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the sweep table; returns the rendered text."""
    report = run()
    table = framework.render_experiment(EXPERIMENT, report)
    print(table)
    return table


if __name__ == "__main__":
    main()


__all__ = ["EXPERIMENT", "run", "main", "run_fuzz"]
