"""Figure 11: (a) slowdown of MIRZA vs PRAC; (b) ALERT rate.

Paper: MIRZA slows workloads by 1.43% / 0.36% / 0.05% on average at
TRHD 500 / 1K / 2K while PRAC+ABO sits at 6.5% everywhere.  At TRHD=1K
MIRZA raises 2.16 ALERTs per 100 tREFI per subchannel; PRAC raises
almost none (its slowdown is purely the inflated timings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments import framework
from repro.experiments.framework import Cell, Check, Context, TableSpec
from repro.params import SimScale
from repro.sim.runner import mirza_setup, prac_setup
from repro.sim.session import SimJob, SimSession
from repro.sim.stats import mean

PAPER = {
    "mirza_slowdown": {500: 1.43, 1000: 0.36, 2000: 0.05},
    "prac_slowdown": 6.5,
    "mirza_alerts_per_100_trefi_1k": 2.16,
}

_THRESHOLDS = (500, 1000, 2000)


@dataclass
class Fig11Result:
    mirza_slowdown: Dict[int, float] = field(default_factory=dict)
    mirza_alert_rate: Dict[int, float] = field(default_factory=dict)
    prac_slowdown: float = 0.0
    prac_alert_rate: float = 0.0
    per_workload: Dict[str, Dict[str, float]] = field(
        default_factory=dict)


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    cells = []
    for spec in ctx.specs():
        cells.append(Cell(("prac", spec.name),
                          SimJob(spec, prac_setup(1000), scale, seed),
                          slowdown=True))
        for trhd in ctx.opt("thresholds", _THRESHOLDS):
            cells.append(Cell(
                (f"mirza-{trhd}", spec.name),
                SimJob(spec, mirza_setup(trhd, scale), scale, seed),
                slowdown=True))
    return cells


def _reduce(cells: framework.Cells) -> Fig11Result:
    thresholds = cells.ctx.opt("thresholds", _THRESHOLDS)
    result = Fig11Result()
    prac_sd, prac_alerts = [], []
    for spec in cells.ctx.specs():
        per = {}
        sd, protected = cells[("prac", spec.name)]
        per["prac"] = sd
        prac_sd.append(sd)
        prac_alerts.append(protected.alerts_per_100_trefi())
        for trhd in thresholds:
            sd, protected = cells[(f"mirza-{trhd}", spec.name)]
            per[f"mirza-{trhd}"] = sd
            per[f"alerts-{trhd}"] = protected.alerts_per_100_trefi()
        result.per_workload[spec.name] = per
    for trhd in thresholds:
        result.mirza_slowdown[trhd] = mean(
            p[f"mirza-{trhd}"] for p in result.per_workload.values())
        result.mirza_alert_rate[trhd] = mean(
            p[f"alerts-{trhd}"] for p in result.per_workload.values())
    result.prac_slowdown = mean(prac_sd)
    result.prac_alert_rate = mean(prac_alerts)
    return result


def _rows(result: Fig11Result) -> List[List[str]]:
    rows = []
    for trhd in sorted(result.mirza_slowdown):
        rows.append([
            f"MIRZA-{trhd}",
            f"{result.mirza_slowdown[trhd]:.2f}%",
            f"{PAPER['mirza_slowdown'][trhd]}%",
            f"{result.mirza_alert_rate[trhd]:.2f}",
            f"{PAPER['mirza_alerts_per_100_trefi_1k']}"
            if trhd == 1000 else "-",
        ])
    rows.append(["PRAC+ABO", f"{result.prac_slowdown:.2f}%",
                 f"{PAPER['prac_slowdown']}%",
                 f"{result.prac_alert_rate:.2f}", "~0"])
    return rows


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="fig11",
    title="Figure 11",
    description="MIRZA vs PRAC slowdown and ALERTs",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=TableSpec(
        title="Figure 11: MIRZA vs PRAC performance and ALERTs",
        columns=("Config", "Slowdown", "paper", "ALERTs/100 tREFI",
                 "paper"),
        rows=_rows),
    checks=(
        Check("PRAC+ABO slowdown %", PAPER["prac_slowdown"],
              lambda r: r.prac_slowdown, rel_tol=0.75),
        Check("MIRZA-1000 slowdown %",
              PAPER["mirza_slowdown"][1000],
              lambda r: r.mirza_slowdown.get(1000, float("nan")),
              rel_tol=1.0, abs_tol=2.0),
        Check("MIRZA-1000 ALERTs/100 tREFI",
              PAPER["mirza_alerts_per_100_trefi_1k"],
              lambda r: r.mirza_alert_rate.get(1000, float("nan")),
              rel_tol=1.0, abs_tol=2.0),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds: Sequence[int] = _THRESHOLDS,
        session: Optional[SimSession] = None) -> Fig11Result:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, scale=scale,
                       thresholds=tuple(thresholds))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
