"""Figure 11: (a) slowdown of MIRZA vs PRAC; (b) ALERT rate.

Paper: MIRZA slows workloads by 1.43% / 0.36% / 0.05% on average at
TRHD 500 / 1K / 2K while PRAC+ABO sits at 6.5% everywhere.  At TRHD=1K
MIRZA raises 2.16 ALERTs per 100 tREFI per subchannel; PRAC raises
almost none (its slowdown is purely the inflated timings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    default_scale,
    selected_workloads,
    sweep_slowdowns,
)
from repro.params import SimScale
from repro.sim.runner import mirza_setup, prac_setup
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean

PAPER = {
    "mirza_slowdown": {500: 1.43, 1000: 0.36, 2000: 0.05},
    "prac_slowdown": 6.5,
    "mirza_alerts_per_100_trefi_1k": 2.16,
}


@dataclass
class Fig11Result:
    mirza_slowdown: Dict[int, float] = field(default_factory=dict)
    mirza_alert_rate: Dict[int, float] = field(default_factory=dict)
    prac_slowdown: float = 0.0
    prac_alert_rate: float = 0.0
    per_workload: Dict[str, Dict[str, float]] = field(
        default_factory=dict)


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds: Sequence[int] = (500, 1000, 2000),
        session: Optional[SimSession] = None) -> Fig11Result:
    """Execute the experiment; returns the structured results."""
    scale = scale or default_scale()
    specs = selected_workloads(workloads)
    result = Fig11Result()
    prac_sd, prac_alerts = [], []
    pairs = []
    for spec in specs:
        pairs.append((spec, prac_setup(1000)))
        pairs.extend((spec, mirza_setup(trhd, scale))
                     for trhd in thresholds)
    outcomes = iter(sweep_slowdowns(pairs, scale, session=session))
    for spec in specs:
        per = {}
        sd, protected = next(outcomes)
        per["prac"] = sd
        prac_sd.append(sd)
        prac_alerts.append(protected.alerts_per_100_trefi())
        for trhd in thresholds:
            sd, protected = next(outcomes)
            per[f"mirza-{trhd}"] = sd
            per[f"alerts-{trhd}"] = protected.alerts_per_100_trefi()
        result.per_workload[spec.name] = per
    for trhd in thresholds:
        result.mirza_slowdown[trhd] = mean(
            p[f"mirza-{trhd}"] for p in result.per_workload.values())
        result.mirza_alert_rate[trhd] = mean(
            p[f"alerts-{trhd}"] for p in result.per_workload.values())
    result.prac_slowdown = mean(prac_sd)
    result.prac_alert_rate = mean(prac_alerts)
    return result


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    result = run()
    rows = []
    for trhd in sorted(result.mirza_slowdown):
        rows.append([
            f"MIRZA-{trhd}",
            f"{result.mirza_slowdown[trhd]:.2f}%",
            f"{PAPER['mirza_slowdown'][trhd]}%",
            f"{result.mirza_alert_rate[trhd]:.2f}",
            f"{PAPER['mirza_alerts_per_100_trefi_1k']}"
            if trhd == 1000 else "-",
        ])
    rows.append(["PRAC+ABO", f"{result.prac_slowdown:.2f}%",
                 f"{PAPER['prac_slowdown']}%",
                 f"{result.prac_alert_rate:.2f}", "~0"])
    table = format_table(
        ["Config", "Slowdown", "paper", "ALERTs/100 tREFI", "paper"],
        rows, title="Figure 11: MIRZA vs PRAC performance and ALERTs")
    print(table)
    return table


if __name__ == "__main__":
    main()
