"""Figure 6: average ACTs per subarray per tREFW vs the worst case.

Benign workloads average 100-1500 activations per subarray per refresh
window; a worst-case single-bank pattern can deliver ~621K, all focused
on one subarray -- a 423x divergence that is the entire headroom
coarse-grained filtering exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import (
    SubarrayStatsJob,
    cgf_scale,
    selected_workloads,
    subarray_stats_many,
)
from repro.params import SimScale, max_acts_per_bank_per_trefw
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean


@dataclass
class Fig6Result:
    per_workload: Dict[str, float]
    worst_case: int

    @property
    def average(self) -> float:
        return mean(self.per_workload.values())

    @property
    def divergence(self) -> float:
        """How far the worst case sits above the workload average."""
        return self.worst_case / self.average if self.average else 0.0


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        session: Optional[SimSession] = None) -> Fig6Result:
    """Execute the experiment; returns the structured results."""
    scale = scale or cgf_scale()
    specs = selected_workloads(workloads)
    stats = subarray_stats_many(
        [SubarrayStatsJob(spec, scale) for spec in specs], session)
    per_workload = {}
    for spec, (measured_mean, _) in zip(specs, stats):
        per_workload[spec.name] = measured_mean * scale.time_scale
    return Fig6Result(per_workload=per_workload,
                      worst_case=max_acts_per_bank_per_trefw())


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    result = run()
    from repro.workloads.specs import workload_by_name
    rows = [[name, f"{value:.0f}",
             workload_by_name(name).acts_per_subarray_mean]
            for name, value in result.per_workload.items()]
    rows.append(["worst-case (one subarray)", result.worst_case,
                 "621K"])
    rows.append(["divergence vs avg", f"{result.divergence:.0f}x",
                 "~423x"])
    table = format_table(
        ["Workload", "ACTs/subarray/tREFW (measured)", "paper"],
        rows, title="Figure 6: benign vs worst-case ACT density")
    print(table)
    return table


if __name__ == "__main__":
    main()
