"""Figure 6: average ACTs per subarray per tREFW vs the worst case.

Benign workloads average 100-1500 activations per subarray per refresh
window; a worst-case single-bank pattern can deliver ~621K, all focused
on one subarray -- a 423x divergence that is the entire headroom
coarse-grained filtering exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments import framework
from repro.experiments.common import SubarrayStatsJob
from repro.experiments.framework import Cell, Check, Context
from repro.params import SimScale, max_acts_per_bank_per_trefw
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean


@dataclass
class Fig6Result:
    per_workload: Dict[str, float]
    worst_case: int

    @property
    def average(self) -> float:
        return mean(self.per_workload.values())

    @property
    def divergence(self) -> float:
        """How far the worst case sits above the workload average."""
        return self.worst_case / self.average if self.average else 0.0


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.counting_scale()
    return [Cell(spec.name, SubarrayStatsJob(spec, scale))
            for spec in ctx.specs()]


def _reduce(cells: framework.Cells) -> Fig6Result:
    scale = cells.ctx.counting_scale()
    per_workload = {}
    for spec in cells.ctx.specs():
        measured_mean, _ = cells[spec.name]
        per_workload[spec.name] = measured_mean * scale.time_scale
    return Fig6Result(per_workload=per_workload,
                      worst_case=max_acts_per_bank_per_trefw())


def _render(result: Fig6Result) -> str:
    from repro.workloads.specs import workload_by_name
    rows = [[name, f"{value:.0f}",
             workload_by_name(name).acts_per_subarray_mean]
            for name, value in result.per_workload.items()]
    rows.append(["worst-case (one subarray)", result.worst_case,
                 "621K"])
    rows.append(["divergence vs avg", f"{result.divergence:.0f}x",
                 "~423x"])
    return format_table(
        ["Workload", "ACTs/subarray/tREFW (measured)", "paper"],
        rows, title="Figure 6: benign vs worst-case ACT density")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="fig6",
    title="Figure 6",
    description="Benign vs worst-case ACT density",
    paper={"worst_case": 621_000, "divergence": 423},
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("worst-case/average divergence x", 423,
              lambda r: r.divergence, rel_tol=0.9),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        session: Optional[SimSession] = None) -> Fig6Result:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, cgf=scale)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
