"""Table XII: storage and mitigation overheads at today's TRHD (4.8K).

At the current threshold all three trackers are cheap in SRAM, but TRR
is insecure, and both TRR and MINT cannibalise REF time for proactive
mitigations; MIRZA performs no victim refresh under REF at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.security.area import (
    mint_storage_bytes_per_bank,
    mirza_storage_bytes_per_bank,
    trr_storage_bytes_per_bank,
)
from repro.security.analysis import refresh_cannibalization
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    "TRR": {"storage": 84, "secure": False, "cannibalization": 17.0},
    "MINT": {"storage": 20, "secure": True, "cannibalization": 23.0},
    "MIRZA": {"storage": 72, "secure": True, "cannibalization": 0.0},
}


@dataclass
class Table12Row:
    tracker: str
    storage_bytes: float
    secure: bool
    cannibalization_pct: float


def _reduce(cells: framework.Cells) -> List[Table12Row]:
    # TRR: 28 entries, one mitigation per 4 REF.
    trr = Table12Row(
        tracker="TRR",
        storage_bytes=trr_storage_bytes_per_bank(),
        secure=False,
        cannibalization_pct=100 * refresh_cannibalization(4))
    # MINT with a Delayed Mitigation Queue, one mitigation per 3 REF.
    mint = Table12Row(
        tracker="MINT",
        storage_bytes=mint_storage_bytes_per_bank(),
        secure=True,
        cannibalization_pct=100 * refresh_cannibalization(3))
    # MIRZA at TRHD 4.8K: 32 regions (CGT), zero REF cannibalisation.
    # At so relaxed a threshold a wide MINT window (48) suffices; the
    # solver then gives a 13-bit FTH, matching the paper's 72 bytes.
    from repro.security.mirza_model import solve_fth
    fth_48k = solve_fth(4800, mint_window=48)
    mirza = Table12Row(
        tracker="MIRZA",
        storage_bytes=mirza_storage_bytes_per_bank(32, fth_48k),
        secure=True,
        cannibalization_pct=0.0)
    return [trr, mint, mirza]


def _render(rows: List[Table12Row]) -> str:
    table_rows = []
    for row in rows:
        paper = PAPER[row.tracker]
        table_rows.append([
            row.tracker,
            f"{row.storage_bytes:.0f}B (paper {paper['storage']}B)",
            "yes" if row.secure else "NO",
            f"{row.cannibalization_pct:.0f}% "
            f"(paper {paper['cannibalization']:.0f}%)",
        ])
    return format_table(
        ["Tracker", "Storage/bank", "Secure?",
         "Refresh cannibalization"],
        table_rows, title="Table XII: overheads at TRHD=4.8K")


def _storage_of(tracker: str):
    def measured(rows: List[Table12Row]) -> float:
        for row in rows:
            if row.tracker == tracker:
                return row.storage_bytes
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table12",
    title="Table XII",
    description="Overheads at TRHD=4.8K",
    paper=PAPER,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    checks=(
        Check("MIRZA storage bytes/bank", PAPER["MIRZA"]["storage"],
              _storage_of("MIRZA"), rel_tol=0.25),
        Check("MINT storage bytes/bank", PAPER["MINT"]["storage"],
              _storage_of("MINT"), rel_tol=0.5),
    ),
))


def run(session: Optional[SimSession] = None) -> List[Table12Row]:
    """Execute the experiment; returns the structured results."""
    return framework.run_experiment(EXPERIMENT, Context.make(),
                                    session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
