"""Table X: relative silicon area of MIRZA vs PRAC per subarray."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.security.area import AreaModel
from repro.security.mirza_model import solve_fth
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    1000: {"mirza_bits": 11, "prac_bits": 10 * 1024, "ratio": 45.0},
    500: {"mirza_bits": 20, "prac_bits": 9 * 1024, "ratio": 22.5},
    250: {"mirza_bits": 36, "prac_bits": 8 * 1024, "ratio": 11.2},
}

_THRESHOLDS = (1000, 500, 250)


@dataclass
class Table10Row:
    trhd: int
    mirza_bits_per_subarray: int
    prac_bits_per_subarray: int
    area_ratio: float


def _config_for(trhd: int) -> MirzaConfig:
    if trhd in (500, 1000, 2000):
        return MirzaConfig.paper_config(trhd)
    # TRHD=250: continue the paper's scaling (regions double, window
    # shrinks as the threshold halves).
    window = 4
    fth = solve_fth(trhd, window)
    return MirzaConfig(trhd=trhd, fth=fth, mint_window=window,
                       num_regions=512)


def _reduce(cells: framework.Cells) -> List[Table10Row]:
    model = AreaModel()
    rows = []
    for trhd in cells.ctx.opt("thresholds", _THRESHOLDS):
        config = _config_for(trhd)
        rows.append(Table10Row(
            trhd=trhd,
            mirza_bits_per_subarray=model.mirza_bits_per_subarray(
                config.num_regions, config.fth),
            prac_bits_per_subarray=model.prac_bits_per_subarray(trhd),
            area_ratio=model.prac_to_mirza_ratio(
                trhd, config.num_regions, config.fth),
        ))
    return rows


def _render(rows: List[Table10Row]) -> str:
    table_rows = []
    for row in rows:
        paper = PAPER[row.trhd]
        table_rows.append([
            row.trhd,
            f"{row.mirza_bits_per_subarray}b SRAM "
            f"(paper {paper['mirza_bits']}b)",
            f"{row.prac_bits_per_subarray // 1024}Kb DRAM "
            f"(paper {paper['prac_bits'] // 1024}Kb)",
            f"{row.area_ratio:.1f}x (paper {paper['ratio']}x)",
        ])
    return format_table(
        ["TRHD", "MIRZA per subarray", "PRAC per subarray",
         "PRAC/MIRZA area"],
        table_rows, title="Table X: relative area per subarray")


def _ratio_of(trhd: int):
    def measured(rows: List[Table10Row]) -> float:
        for row in rows:
            if row.trhd == trhd:
                return row.area_ratio
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table10",
    title="Table X",
    description="Relative area per subarray",
    paper=PAPER,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    checks=(
        Check("PRAC/MIRZA area ratio at TRHD=1000",
              PAPER[1000]["ratio"], _ratio_of(1000), rel_tol=0.5),
        Check("PRAC/MIRZA area ratio at TRHD=500",
              PAPER[500]["ratio"], _ratio_of(500), rel_tol=0.5),
    ),
))


def run(thresholds=_THRESHOLDS,
        session: Optional[SimSession] = None) -> List[Table10Row]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(thresholds=tuple(thresholds))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
