"""Table X: relative silicon area of MIRZA vs PRAC per subarray."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import MirzaConfig
from repro.security.area import AreaModel
from repro.security.mirza_model import solve_fth
from repro.sim.stats import format_table

PAPER = {
    1000: {"mirza_bits": 11, "prac_bits": 10 * 1024, "ratio": 45.0},
    500: {"mirza_bits": 20, "prac_bits": 9 * 1024, "ratio": 22.5},
    250: {"mirza_bits": 36, "prac_bits": 8 * 1024, "ratio": 11.2},
}


@dataclass
class Table10Row:
    trhd: int
    mirza_bits_per_subarray: int
    prac_bits_per_subarray: int
    area_ratio: float


def _config_for(trhd: int) -> MirzaConfig:
    if trhd in (500, 1000, 2000):
        return MirzaConfig.paper_config(trhd)
    # TRHD=250: continue the paper's scaling (regions double, window
    # shrinks as the threshold halves).
    window = 4
    fth = solve_fth(trhd, window)
    return MirzaConfig(trhd=trhd, fth=fth, mint_window=window,
                       num_regions=512)


def run(thresholds=(1000, 500, 250)) -> List[Table10Row]:
    """Execute the experiment; returns the structured results."""
    model = AreaModel()
    rows = []
    for trhd in thresholds:
        config = _config_for(trhd)
        rows.append(Table10Row(
            trhd=trhd,
            mirza_bits_per_subarray=model.mirza_bits_per_subarray(
                config.num_regions, config.fth),
            prac_bits_per_subarray=model.prac_bits_per_subarray(trhd),
            area_ratio=model.prac_to_mirza_ratio(
                trhd, config.num_regions, config.fth),
        ))
    return rows


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table_rows = []
    for row in run():
        paper = PAPER[row.trhd]
        table_rows.append([
            row.trhd,
            f"{row.mirza_bits_per_subarray}b SRAM "
            f"(paper {paper['mirza_bits']}b)",
            f"{row.prac_bits_per_subarray // 1024}Kb DRAM "
            f"(paper {paper['prac_bits'] // 1024}Kb)",
            f"{row.area_ratio:.1f}x (paper {paper['ratio']}x)",
        ])
    table = format_table(
        ["TRHD", "MIRZA per subarray", "PRAC per subarray",
         "PRAC/MIRZA area"],
        table_rows, title="Table X: relative area per subarray")
    print(table)
    return table


if __name__ == "__main__":
    main()
