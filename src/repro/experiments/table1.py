"""Table I: DRAM timings (DDR5 specs for 6000AN) and the PRAC column."""

from __future__ import annotations

from typing import Dict

from repro.params import DramTimings, ns
from repro.sim.stats import format_table

PAPER_ROWS = {
    "tRCD": (14, 14),
    "tRP": (14, 36),
    "tRAS": (32, 16),
    "tRC": (46, 52),
}
"""Parameter -> (DDR5 ns, PRAC ns)."""


def run() -> Dict[str, Dict[str, int]]:
    """Return the modelled timing values in nanoseconds."""
    base = DramTimings()
    prac = base.with_prac()
    out = {}
    for name in PAPER_ROWS:
        out[name] = {
            "ddr5_ns": getattr(base, name) // ns(1),
            "prac_ns": getattr(prac, name) // ns(1),
        }
    out["tREFW"] = {"ddr5_ns": base.tREFW // ns(1), "prac_ns": None}
    out["tREFI"] = {"ddr5_ns": base.tREFI // ns(1), "prac_ns": None}
    out["tRFC"] = {"ddr5_ns": base.tRFC // ns(1), "prac_ns": None}
    return out


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    values = run()
    rows = []
    for name, cells in values.items():
        paper = PAPER_ROWS.get(name)
        rows.append([
            name,
            cells["ddr5_ns"],
            cells["prac_ns"] if cells["prac_ns"] is not None else "-",
            paper[0] if paper else cells["ddr5_ns"],
            paper[1] if paper else "-",
        ])
    table = format_table(
        ["Param", "model DDR5", "model PRAC", "paper DDR5",
         "paper PRAC"],
        rows, title="Table I: DRAM timings (ns)")
    print(table)
    return table


if __name__ == "__main__":
    main()
