"""Table I: DRAM timings (DDR5 specs for 6000AN) and the PRAC column."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.params import DramTimings, ns
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER_ROWS = {
    "tRCD": (14, 14),
    "tRP": (14, 36),
    "tRAS": (32, 16),
    "tRC": (46, 52),
}
"""Parameter -> (DDR5 ns, PRAC ns)."""


def _reduce(cells: framework.Cells) -> Dict[str, Dict[str, int]]:
    base = DramTimings()
    prac = base.with_prac()
    out = {}
    for name in PAPER_ROWS:
        out[name] = {
            "ddr5_ns": getattr(base, name) // ns(1),
            "prac_ns": getattr(prac, name) // ns(1),
        }
    out["tREFW"] = {"ddr5_ns": base.tREFW // ns(1), "prac_ns": None}
    out["tREFI"] = {"ddr5_ns": base.tREFI // ns(1), "prac_ns": None}
    out["tRFC"] = {"ddr5_ns": base.tRFC // ns(1), "prac_ns": None}
    return out


def _render(values: Dict[str, Dict[str, int]]) -> str:
    rows = []
    for name, cells in values.items():
        paper = PAPER_ROWS.get(name)
        rows.append([
            name,
            cells["ddr5_ns"],
            cells["prac_ns"] if cells["prac_ns"] is not None else "-",
            paper[0] if paper else cells["ddr5_ns"],
            paper[1] if paper else "-",
        ])
    return format_table(
        ["Param", "model DDR5", "model PRAC", "paper DDR5",
         "paper PRAC"],
        rows, title="Table I: DRAM timings (ns)")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table1",
    title="Table I",
    description="DRAM timings",
    paper=PAPER_ROWS,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    checks=(
        Check("PRAC tRC ns", PAPER_ROWS["tRC"][1],
              lambda r: r["tRC"]["prac_ns"], rel_tol=0.0),
        Check("DDR5 tRC ns", PAPER_ROWS["tRC"][0],
              lambda r: r["tRC"]["ddr5_ns"], rel_tol=0.0),
    ),
))


def run(session: Optional[SimSession] = None
        ) -> Dict[str, Dict[str, int]]:
    """Return the modelled timing values in nanoseconds."""
    return framework.run_experiment(EXPERIMENT, Context.make(),
                                    session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
