"""Figure 3: slowdown and refresh power of MINT+RFM vs PRAC+ABO.

The paper reports, averaged over the 24 workloads:

- MINT+RFM slowdown 11.1% / 5.81% / 2.9% at TRHD 500 / 1K / 2K;
- MINT+RFM refresh-power overhead 16.4% / ~8% / 4.1%;
- PRAC+ABO slowdown 6.5% at every threshold (timing inflation only)
  with 0% refresh-power overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.params import SimScale
from repro.sim.runner import mint_rfm_setup, prac_setup
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean
from repro.experiments.common import (
    default_scale,
    selected_workloads,
    sweep_slowdowns,
)

PAPER = {
    "mint_slowdown": {500: 11.1, 1000: 5.81, 2000: 3.08},
    "mint_refresh_power": {500: 16.4, 1000: 8.0, 2000: 4.1},
    "prac_slowdown": 6.5,
}


@dataclass
class Fig3Result:
    mint_slowdown: Dict[int, float] = field(default_factory=dict)
    mint_refresh_power: Dict[int, float] = field(default_factory=dict)
    prac_slowdown: float = 0.0
    per_workload: Dict[str, Dict[str, float]] = field(
        default_factory=dict)


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds=(500, 1000, 2000),
        session: Optional[SimSession] = None) -> Fig3Result:
    """Execute the experiment; returns the structured results."""
    scale = scale or default_scale()
    specs = selected_workloads(workloads)
    result = Fig3Result()
    prac_slowdowns = []
    pairs = []
    for spec in specs:
        pairs.append((spec, prac_setup(1000)))
        pairs.extend((spec, mint_rfm_setup(trhd))
                     for trhd in thresholds)
    outcomes = iter(sweep_slowdowns(pairs, scale, session=session))
    for spec in specs:
        per = {}
        sd, _ = next(outcomes)
        per["prac"] = sd
        prac_slowdowns.append(sd)
        for trhd in thresholds:
            sd, protected = next(outcomes)
            per[f"mint-{trhd}"] = sd
            # Scale the victim/demand ratio back to the full tREFW:
            # the demand sweep covers all rows once per window at any
            # time scale (see Figure 13's module docstring).
            per[f"mint-rp-{trhd}"] = \
                protected.refresh_power_overhead_pct() \
                * scale.time_scale
        result.per_workload[spec.name] = per
    for trhd in thresholds:
        result.mint_slowdown[trhd] = mean(
            p[f"mint-{trhd}"] for p in result.per_workload.values())
        result.mint_refresh_power[trhd] = mean(
            p[f"mint-rp-{trhd}"] for p in result.per_workload.values())
    result.prac_slowdown = mean(prac_slowdowns)
    return result


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    result = run()
    rows = []
    for trhd in sorted(result.mint_slowdown):
        rows.append([
            trhd,
            f"{result.mint_slowdown[trhd]:.2f}%",
            f"{PAPER['mint_slowdown'][trhd]}%",
            f"{result.mint_refresh_power[trhd]:.2f}%",
            f"{PAPER['mint_refresh_power'][trhd]}%",
        ])
    rows.append(["PRAC (any)", f"{result.prac_slowdown:.2f}%",
                 f"{PAPER['prac_slowdown']}%", "0%", "0%"])
    table = format_table(
        ["TRHD", "MINT+RFM slowdown", "paper",
         "MINT+RFM refresh power", "paper"],
        rows, title="Figure 3: proactive mitigation overheads")
    print(table)
    return table


if __name__ == "__main__":
    main()
