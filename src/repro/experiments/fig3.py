"""Figure 3: slowdown and refresh power of MINT+RFM vs PRAC+ABO.

The paper reports, averaged over the 24 workloads:

- MINT+RFM slowdown 11.1% / 5.81% / 2.9% at TRHD 500 / 1K / 2K;
- MINT+RFM refresh-power overhead 16.4% / ~8% / 4.1%;
- PRAC+ABO slowdown 6.5% at every threshold (timing inflation only)
  with 0% refresh-power overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments import framework
from repro.experiments.framework import Cell, Check, Context, TableSpec
from repro.params import SimScale
from repro.sim.runner import mint_rfm_setup, prac_setup
from repro.sim.session import SimJob, SimSession
from repro.sim.stats import mean

PAPER = {
    "mint_slowdown": {500: 11.1, 1000: 5.81, 2000: 3.08},
    "mint_refresh_power": {500: 16.4, 1000: 8.0, 2000: 4.1},
    "prac_slowdown": 6.5,
}

_THRESHOLDS = (500, 1000, 2000)


@dataclass
class Fig3Result:
    mint_slowdown: Dict[int, float] = field(default_factory=dict)
    mint_refresh_power: Dict[int, float] = field(default_factory=dict)
    prac_slowdown: float = 0.0
    per_workload: Dict[str, Dict[str, float]] = field(
        default_factory=dict)


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    cells = []
    for spec in ctx.specs():
        cells.append(Cell(("prac", spec.name),
                          SimJob(spec, prac_setup(1000), scale, seed),
                          slowdown=True))
        for trhd in ctx.opt("thresholds", _THRESHOLDS):
            cells.append(Cell(
                (f"mint-{trhd}", spec.name),
                SimJob(spec, mint_rfm_setup(trhd), scale, seed),
                slowdown=True))
    return cells


def _reduce(cells: framework.Cells) -> Fig3Result:
    thresholds = cells.ctx.opt("thresholds", _THRESHOLDS)
    time_scale = cells.ctx.timed_scale().time_scale
    result = Fig3Result()
    prac_slowdowns = []
    for spec in cells.ctx.specs():
        per = {}
        sd, _ = cells[("prac", spec.name)]
        per["prac"] = sd
        prac_slowdowns.append(sd)
        for trhd in thresholds:
            sd, protected = cells[(f"mint-{trhd}", spec.name)]
            per[f"mint-{trhd}"] = sd
            # Scale the victim/demand ratio back to the full tREFW:
            # the demand sweep covers all rows once per window at any
            # time scale (see Figure 13's module docstring).
            per[f"mint-rp-{trhd}"] = \
                protected.refresh_power_overhead_pct() * time_scale
        result.per_workload[spec.name] = per
    for trhd in thresholds:
        result.mint_slowdown[trhd] = mean(
            p[f"mint-{trhd}"] for p in result.per_workload.values())
        result.mint_refresh_power[trhd] = mean(
            p[f"mint-rp-{trhd}"] for p in result.per_workload.values())
    result.prac_slowdown = mean(prac_slowdowns)
    return result


def _rows(result: Fig3Result) -> List[List[str]]:
    rows = []
    for trhd in sorted(result.mint_slowdown):
        rows.append([
            trhd,
            f"{result.mint_slowdown[trhd]:.2f}%",
            f"{PAPER['mint_slowdown'][trhd]}%",
            f"{result.mint_refresh_power[trhd]:.2f}%",
            f"{PAPER['mint_refresh_power'][trhd]}%",
        ])
    rows.append(["PRAC (any)", f"{result.prac_slowdown:.2f}%",
                 f"{PAPER['prac_slowdown']}%", "0%", "0%"])
    return rows


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="fig3",
    title="Figure 3",
    description="MINT+RFM vs PRAC overheads",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=TableSpec(
        title="Figure 3: proactive mitigation overheads",
        columns=("TRHD", "MINT+RFM slowdown", "paper",
                 "MINT+RFM refresh power", "paper"),
        rows=_rows),
    checks=(
        Check("PRAC+ABO slowdown %", PAPER["prac_slowdown"],
              lambda r: r.prac_slowdown, rel_tol=0.75),
        Check("MINT+RFM-1000 slowdown %",
              PAPER["mint_slowdown"][1000],
              lambda r: r.mint_slowdown.get(1000, float("nan")),
              rel_tol=0.75),
        Check("MINT+RFM-1000 refresh power %",
              PAPER["mint_refresh_power"][1000],
              lambda r: r.mint_refresh_power.get(1000, float("nan")),
              rel_tol=0.75),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        thresholds: Sequence[int] = _THRESHOLDS,
        session: Optional[SimSession] = None) -> Fig3Result:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, scale=scale,
                       thresholds=tuple(thresholds))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
