"""Declarative experiment framework: declaration -> plan -> reduce.

Every table/figure in this repository is an :class:`Experiment`
*declaration*: a grid of :class:`Cell` jobs (``SimJob``, ``CgfJob``,
``SubarrayStatsJob``, or any session-runnable job type), a pure
``reduce(cells) -> Result`` that folds the cell results into the
module's structured result object, a render schema (usually a
:class:`TableSpec`), and the paper's reference values with declared
tolerances (:class:`Check`).  Declarations register themselves in a
process-wide registry mirroring :mod:`repro.sim.registry`.

The payoff is the **planner**: :func:`plan` flattens the grids of any
set of experiments -- plus their declared dependencies (``needs``) --
into one job list, derives the unprotected baselines slowdown cells
need, and submits the whole thing as a *single*
:meth:`~repro.sim.session.SimSession.run_many` batch.  Cells shared
between experiments (the PRAC runs of Figure 3 and Figure 11, the
baselines nearly every experiment references, the CGF measurements
Table XIII transitively re-uses) are keyed by the session's content
tokens and therefore planned exactly once.  Results fan back out to
each experiment's reducer in dependency order.

Example -- a complete experiment in ~30 lines::

    from repro.experiments import framework
    from repro.sim.runner import mirza_setup
    from repro.sim.session import SimJob

    def _grid(ctx):
        scale = ctx.timed_scale()
        return [framework.Cell(spec.name,
                               SimJob(spec, mirza_setup(1000, scale),
                                      scale, ctx.run_seed()),
                               slowdown=True)
                for spec in ctx.specs()]

    def _reduce(cells):
        return {spec.name: cells[spec.name][0]
                for spec in cells.ctx.specs()}

    EXPERIMENT = framework.Experiment(
        name="demo", title="Demo", description="MIRZA-1K slowdowns",
        grid=_grid, reduce=_reduce,
        render=framework.TableSpec(
            title="Demo", columns=("Workload", "Slowdown"),
            rows=lambda r: [[n, f"{s:.2f}%"] for n, s in r.items()]))
    framework.register_experiment(EXPERIMENT)

Reducers must be **pure**: the same cell values must produce the same
Result bit for bit, regardless of worker count or cache state.  That
is what lets the planner serve a cell computed for one experiment to
every other experiment that declares it.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.params import SimScale
from repro.sim.session import (
    BatchStats,
    JobFailure,
    SimSession,
    get_default_session,
    is_failure,
    job_token,
)
from repro.workloads.specs import WorkloadSpec


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Context:
    """Resolved runtime knobs an experiment grid is built against.

    ``None`` fields fall back to the environment defaults
    (``REPRO_WORKLOADS``, ``REPRO_TIME_SCALE``, ``REPRO_CGF_SCALE``,
    ``REPRO_SEED``) at *use* time, so a default ``Context`` is cheap to
    build and always reflects the current environment.  ``options``
    carries per-experiment overrides (threshold sweeps, queue sizes,
    ...) as a frozen, hashable key/value tuple; contexts are compared
    by value so the planner can recognise "same experiment, same
    knobs" across dependency edges.
    """

    workloads: Optional[Tuple[str, ...]] = None
    scale: Optional[SimScale] = None
    cgf: Optional[SimScale] = None
    seed: Optional[int] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, workloads: Optional[Sequence[str]] = None,
             scale: Optional[SimScale] = None,
             cgf: Optional[SimScale] = None,
             seed: Optional[int] = None,
             **options: Any) -> "Context":
        """Build a context; keyword extras become ``options`` entries."""
        if workloads is not None:
            workloads = tuple(
                spec.name if isinstance(spec, WorkloadSpec) else spec
                for spec in workloads)
        return cls(workloads=workloads, scale=scale, cgf=cgf, seed=seed,
                   options=tuple(sorted(
                       (key, value) for key, value in options.items()
                       if value is not None)))

    def specs(self) -> List[WorkloadSpec]:
        """The workload list this context selects."""
        from repro.experiments.common import selected_workloads
        return selected_workloads(self.workloads)

    def timed_scale(self) -> SimScale:
        """Window divisor for timed simulation cells."""
        from repro.experiments.common import default_scale
        return self.scale if self.scale is not None else default_scale()

    def counting_scale(self) -> SimScale:
        """Window divisor for activation-counting cells."""
        from repro.experiments.common import cgf_scale
        return self.cgf if self.cgf is not None else cgf_scale()

    def run_seed(self) -> int:
        """Base RNG seed for the context's cells."""
        from repro.experiments.common import default_seed
        return self.seed if self.seed is not None else default_seed()

    def opt(self, key: str, default: Any = None) -> Any:
        """Look up a per-experiment option with a declared default."""
        for name, value in self.options:
            if name == key:
                return value
        return default


# ----------------------------------------------------------------------
# Declaration pieces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One planned measurement of an experiment's grid.

    ``key`` names the cell within its experiment (any hashable; the
    reducer indexes results by it).  ``job`` is a session-runnable job.
    ``slowdown=True`` asks the planner to derive and batch the matching
    unprotected baseline and deliver ``(slowdown_pct, result)`` instead
    of the bare result -- exactly the
    :meth:`~repro.sim.session.SimSession.slowdowns` contract.
    """

    key: Any
    job: Any
    slowdown: bool = False


@dataclass(frozen=True)
class Check:
    """One paper-reference comparison with a declared tolerance.

    The reproduction *deviates* on this check when the measured value
    sits further from ``paper`` than ``max(abs_tol, rel_tol * |paper|)``.
    Tolerances are declarative documentation of the expected
    scale-induced spread, not assertions -- the report flags them, it
    never fails on them.
    """

    label: str
    paper: float
    measured: Callable[[Any], float]
    rel_tol: float = 0.5
    abs_tol: float = 0.0


@dataclass(frozen=True)
class Deviation:
    """An evaluated :class:`Check`: measured vs paper, flagged.

    ``degraded=True`` marks a check that could not be evaluated at all
    because the exhibit's cells failed (see :class:`DegradedResult`);
    its ``measured`` is NaN and its flag renders as ``DEGRADED``.
    """

    label: str
    measured: float
    paper: float
    within: bool
    degraded: bool = False

    @property
    def flag(self) -> str:
        if self.degraded:
            return "DEGRADED"
        return "ok" if self.within else "DEV"


@dataclass(frozen=True)
class DegradedResult:
    """The Result slot of an exhibit whose cells permanently failed.

    Produced by :meth:`Plan.execute` when a session batch running
    under :obj:`~repro.sim.session.FailurePolicy.KEEP_GOING` returned
    :class:`~repro.sim.session.JobFailure` records for some of the
    exhibit's cells (or their derived baselines), or when a declared
    dependency's Result is itself degraded.  The reducer is *not*
    called -- reducers are pure folds over complete grids -- and the
    report renders this record's failure summary in place of the
    table, flagged ``DEGRADED``, instead of crashing.
    """

    experiment: str
    failures: Tuple[JobFailure, ...] = ()
    missing_cells: Tuple[Any, ...] = ()
    degraded_deps: Tuple[str, ...] = ()

    def summary(self) -> str:
        """Multi-line failure account rendered in place of the table."""
        lines = [f"DEGRADED: {len(self.missing_cells)} cell(s) of "
                 f"{self.experiment!r} failed permanently "
                 f"({', '.join(repr(k) for k in self.missing_cells)})."]
        for failure in self.failures:
            lines.append(f"  - {failure.describe()}")
        for name in self.degraded_deps:
            lines.append(f"  - dependency {name!r} is itself degraded")
        lines.append("Completed sibling cells were cached as they "
                     "finished; a re-run resumes from there.")
        return "\n".join(lines)


def is_degraded(result: Any) -> bool:
    """True when an experiment Result is a :class:`DegradedResult`."""
    return isinstance(result, DegradedResult)


@dataclass(frozen=True, eq=False)
class TableSpec:
    """Declarative render schema: one paper-style table per experiment.

    ``rows`` maps the experiment's Result to the table body;
    ``columns`` and ``title`` feed
    :func:`repro.sim.stats.format_table` unchanged.
    """

    title: str
    columns: Tuple[str, ...]
    rows: Callable[[Any], Sequence[Sequence[Any]]]


Renderer = Union[TableSpec, Callable[[Any], str]]


@dataclass(frozen=True, eq=False)
class Experiment:
    """A declarative table/figure: grid + reduce + render + references.

    ``grid(ctx)`` yields the cell grid (empty for analytic exhibits);
    ``reduce(cells)`` is a pure fold from cell results (and declared
    dependency results, via ``cells.dep(name)``) to the module's Result
    object; ``render`` turns a Result into the paper-style table;
    ``checks`` compare the Result against the paper's numbers.
    ``needs`` names experiments whose Results the reducer consumes --
    the planner plans their grids into the same batch, which is where
    cross-experiment cell dedup comes from.
    """

    name: str
    title: str
    description: str
    grid: Callable[[Context], Sequence[Cell]]
    reduce: Callable[["Cells"], Any]
    render: Renderer
    paper: Mapping[Any, Any] = field(default_factory=dict)
    needs: Tuple[str, ...] = ()
    checks: Tuple[Check, ...] = ()


class Cells:
    """The reducer's view of one experiment's resolved cell results."""

    def __init__(self, ctx: Context, values: Dict[Any, Any],
                 deps: Dict[str, Any]) -> None:
        self.ctx = ctx
        self._values = values
        self._deps = deps

    def __getitem__(self, key: Any) -> Any:
        return self._values[key]

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def dep(self, name: str) -> Any:
        """The Result of a dependency declared in ``Experiment.needs``."""
        return self._deps[name]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_ROMAN = {"i": "1", "ii": "2", "iii": "3", "iv": "4", "v": "5",
          "vi": "6", "vii": "7", "viii": "8", "ix": "9", "x": "10",
          "xi": "11", "xii": "12", "xiii": "13"}


def canonical_name(name: str) -> str:
    """Normalise an exhibit name: 'Table X' == 'table10' == 'tableX'."""
    flat = name.lower().replace(" ", "").replace("_", "")
    for prefix in ("table", "figure", "fig"):
        if flat.startswith(prefix):
            suffix = flat[len(prefix):]
            kind = "figure" if prefix.startswith("f") else "table"
            return kind + _ROMAN.get(suffix, suffix)
    return flat


_REGISTRY: "OrderedDict[str, Experiment]" = OrderedDict()
_ALIASES: Dict[str, str] = {}


def register_experiment(experiment: Experiment,
                        replace: bool = False) -> Experiment:
    """Register a declaration; its title becomes a lookup alias.

    Refuses to shadow an existing name unless ``replace=True``, so
    typos in extension code fail loudly instead of silently redefining
    a paper exhibit.  Returns the experiment for decorator-style use.
    """
    key = canonical_name(experiment.name)
    if not replace and key in _REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} is already "
                         f"registered; pass replace=True to override")
    _REGISTRY[key] = experiment
    _ALIASES[canonical_name(experiment.title)] = key
    return experiment


def _ensure_declarations_loaded() -> None:
    """Import the experiment package so every module registers."""
    import repro.experiments  # noqa: F401


def available_experiments() -> List[Experiment]:
    """Registered declarations, in registration order."""
    _ensure_declarations_loaded()
    return list(_REGISTRY.values())


def experiment_by_name(name: str) -> Experiment:
    """Look an experiment up by module name or paper title.

    ``"fig11"``, ``"Figure 11"``, ``"table10"``, and ``"Table X"`` all
    resolve to the same declaration.  Raises ``KeyError`` listing the
    known names when ``name`` is unknown.
    """
    _ensure_declarations_loaded()
    key = canonical_name(name)
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(e.name for e in _REGISTRY.values())
        raise KeyError(
            f"unknown exhibit {name!r}; known: {known}") from None


# ----------------------------------------------------------------------
# Planning and execution
# ----------------------------------------------------------------------
@dataclass
class PlanStats:
    """How much work a plan declared vs what it actually submitted."""

    experiments: int = 0
    planned_cells: int = 0
    """Grid cells plus derived baselines, before any deduplication."""

    unique_jobs: int = 0
    """Distinct content tokens among the planned jobs (untokened jobs
    each count as unique -- they can never deduplicate)."""

    @property
    def deduplicated(self) -> int:
        """Planned jobs whose content another planned job covers."""
        return self.planned_cells - self.unique_jobs


@dataclass
class _Entry:
    experiment: Experiment
    ctx: Context
    cells: Tuple[Cell, ...]


class Plan:
    """A batched execution of one or more experiment declarations.

    Built by :func:`plan`; :meth:`execute` submits every planned job as
    a single session batch and reduces each experiment.  ``stats``
    holds the plan-level dedup numbers, ``batch`` the session's
    :class:`~repro.sim.session.BatchStats` for the submitted batch, and
    ``wall_time`` the end-to-end execution seconds.
    """

    def __init__(self, entries: "OrderedDict[str, _Entry]",
                 session: SimSession) -> None:
        self.session = session
        self._entries = entries
        self.stats = PlanStats(experiments=len(entries))
        self.batch: Optional[BatchStats] = None
        self.results: Dict[str, Any] = {}
        self.wall_time = 0.0
        self._jobs: List[Any] = []
        # name -> [(cell, job index, baseline index or None), ...]
        self._layout: Dict[str, List[Tuple[Cell, int, Optional[int]]]] \
            = {}
        self._lay_out()

    def _lay_out(self) -> None:
        from repro.sim.runner import baseline_setup
        setup = baseline_setup()
        for name, entry in self._entries.items():
            slots: List[Tuple[Cell, int, Optional[int]]] = []
            seen_keys = set()
            for cell in entry.cells:
                if cell.key in seen_keys:
                    raise ValueError(
                        f"experiment {name!r} declared duplicate cell "
                        f"key {cell.key!r}")
                seen_keys.add(cell.key)
                job = (cell.job.resolved()
                       if hasattr(cell.job, "resolved") else cell.job)
                index = len(self._jobs)
                self._jobs.append(job)
                baseline_index = None
                if cell.slowdown:
                    baseline_index = len(self._jobs)
                    self._jobs.append(
                        dataclasses.replace(job, setup=setup))
                slots.append((cell, index, baseline_index))
            self._layout[name] = slots
        tokens = [job_token(job) for job in self._jobs]
        self.stats.planned_cells = len(self._jobs)
        self.stats.unique_jobs = (
            len({t for t in tokens if t is not None})
            + sum(1 for t in tokens if t is None))

    def experiments(self) -> List[Experiment]:
        """The planned declarations, in reduce (dependency) order."""
        return [entry.experiment for entry in self._entries.values()]

    def cell_count(self, name: str) -> int:
        """Planned jobs (cells + baselines) for one experiment."""
        entry = self._entries[canonical_name(name)]
        return sum(2 if cell.slowdown else 1 for cell in entry.cells)

    def execute(self) -> Dict[str, Any]:
        """Run the single batch and reduce every planned experiment.

        Returns ``{experiment.name: Result}`` for every experiment in
        the plan (dependencies included).  Idempotent: a second call
        re-reduces from the session cache.

        Under :obj:`~repro.sim.session.FailurePolicy.KEEP_GOING` a
        permanently-failed cell does not abort the plan: the exhibits
        it belongs to (and their dependents) resolve to
        :class:`DegradedResult` records while every unaffected exhibit
        reduces normally from the surviving cells.
        """
        start = time.perf_counter()
        results = (self.session.run_many(self._jobs)
                   if self._jobs else [])
        self.batch = self.session.last_batch if self._jobs else None
        out: Dict[str, Any] = {}
        for name, entry in self._entries.items():
            values: Dict[Any, Any] = {}
            failures: List[JobFailure] = []
            missing: List[Any] = []
            for cell, index, baseline_index in self._layout[name]:
                protected = results[index]
                baseline = (results[baseline_index]
                            if baseline_index is not None else None)
                if is_failure(protected) or is_failure(baseline):
                    failures.extend(f for f in (protected, baseline)
                                    if is_failure(f))
                    missing.append(cell.key)
                elif baseline_index is None:
                    values[cell.key] = protected
                else:
                    values[cell.key] = (
                        protected.slowdown_pct(baseline), protected)
            deps = {need: out[canonical_name(need)]
                    for need in entry.experiment.needs}
            degraded_deps = tuple(
                need for need in entry.experiment.needs
                if is_degraded(deps[need]))
            if missing or degraded_deps:
                out[name] = DegradedResult(
                    experiment=entry.experiment.name,
                    failures=tuple(failures),
                    missing_cells=tuple(missing),
                    degraded_deps=degraded_deps)
            else:
                out[name] = entry.experiment.reduce(
                    Cells(entry.ctx, values, deps))
        self.results = {entry.experiment.name: out[name]
                        for name, entry in self._entries.items()}
        self.wall_time = time.perf_counter() - start
        return self.results

    def degraded(self) -> List[str]:
        """Names of planned experiments whose Result is degraded."""
        return [name for name, result in self.results.items()
                if is_degraded(result)]


def plan(experiments: Sequence[Union[str, Experiment]],
         ctx: Optional[Context] = None,
         session: Optional[SimSession] = None) -> Plan:
    """Lay out a deduplicated batch over ``experiments`` and their
    dependencies.

    Dependencies run under the *same* context as the experiment that
    pulled them in, and an experiment reached through several paths is
    planned once.  The returned :class:`Plan` has not executed yet, so
    its ``stats`` can be inspected (and tested) without simulating.
    """
    ctx = ctx if ctx is not None else Context.make()
    session = session or get_default_session()
    entries: "OrderedDict[str, _Entry]" = OrderedDict()

    def add(experiment: Experiment, context: Context) -> None:
        key = canonical_name(experiment.name)
        if key in entries:
            if entries[key].ctx != context:
                raise ValueError(
                    f"experiment {experiment.name!r} planned twice "
                    f"with different contexts")
            return
        for need in experiment.needs:
            add(experiment_by_name(need), context)
        entries[key] = _Entry(experiment, context,
                              tuple(experiment.grid(context)))

    for item in experiments:
        add(item if isinstance(item, Experiment)
            else experiment_by_name(item), ctx)
    return Plan(entries, session)


def run_experiment(experiment: Union[str, Experiment],
                   ctx: Optional[Context] = None,
                   session: Optional[SimSession] = None) -> Any:
    """Plan and execute one experiment; returns its Result.

    This is what the legacy per-module ``run()`` wrappers call: one
    declaration, its dependencies batched alongside, one fan-out.
    """
    if not isinstance(experiment, Experiment):
        experiment = experiment_by_name(experiment)
    return plan([experiment], ctx=ctx,
                session=session).execute()[experiment.name]


# ----------------------------------------------------------------------
# Rendering and reference checks
# ----------------------------------------------------------------------
def render_experiment(experiment: Union[str, Experiment],
                      result: Any) -> str:
    """Render a Result through the experiment's declared schema.

    A :class:`DegradedResult` renders as its failure summary instead
    of going through the declared schema (whose ``rows`` callable
    expects a complete Result).
    """
    if not isinstance(experiment, Experiment):
        experiment = experiment_by_name(experiment)
    if is_degraded(result):
        return result.summary()
    renderer = experiment.render
    if isinstance(renderer, TableSpec):
        from repro.sim.stats import format_table
        return format_table(list(renderer.columns),
                            [list(row) for row in
                             renderer.rows(result)],
                            title=renderer.title)
    return renderer(result)


def evaluate_checks(experiment: Union[str, Experiment],
                    result: Any) -> List[Deviation]:
    """Compare a Result against the declared paper references.

    A :class:`DegradedResult` cannot be measured: every declared check
    (or, when none are declared, one synthetic entry) comes back as a
    ``DEGRADED`` :class:`Deviation` with a NaN measurement, so the
    report's summary table flags the exhibit instead of crashing on
    the checks' accessors.
    """
    if not isinstance(experiment, Experiment):
        experiment = experiment_by_name(experiment)
    if is_degraded(result):
        nan = float("nan")
        if not experiment.checks:
            return [Deviation(label="cells failed", measured=nan,
                              paper=nan, within=False, degraded=True)]
        return [Deviation(label=check.label, measured=nan,
                          paper=check.paper, within=False,
                          degraded=True)
                for check in experiment.checks]
    deviations = []
    for check in experiment.checks:
        measured = float(check.measured(result))
        allowed = max(check.abs_tol, check.rel_tol * abs(check.paper))
        deviations.append(Deviation(
            label=check.label, measured=measured, paper=check.paper,
            within=abs(measured - check.paper) <= allowed))
    return deviations
