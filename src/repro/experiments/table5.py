"""Table V: Naive MIRZA slowdown vs MIRZA-Q size.

The paper sweeps MINT-W in {24, 48, 96} (TRHD 500/1K/2K) and queue
sizes {1, 2, 4, 8}; buffering across banks makes each channel-wide
ALERT serve many banks, collapsing the slowdown from >60% (1 entry) to
a few percent (4 entries) -- but even the best naive design stays in
RFM territory, which motivates filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import framework
from repro.experiments.framework import Cell, Check, Context
from repro.params import SimScale
from repro.sim.runner import naive_mirza_setup
from repro.sim.session import SimJob, SimSession
from repro.sim.stats import format_table, mean

PAPER = {
    (24, 1): 151.83, (24, 2): 14.21, (24, 4): 10.95, (24, 8): 10.49,
    (48, 1): 102.18, (48, 2): 7.02, (48, 4): 5.81, (48, 8): 5.62,
    (96, 1): 64.07, (96, 2): 3.52, (96, 4): 3.08, (96, 8): 3.01,
}

_WINDOWS = (24, 48, 96)
_QUEUE_SIZES = (1, 2, 4, 8)


@dataclass
class Table5Result:
    slowdown: Dict[Tuple[int, int], float] = field(default_factory=dict)
    """(MINT-W, queue entries) -> average slowdown %"""


def _points(ctx: Context) -> List[Tuple[int, int]]:
    return [(window, entries)
            for window in ctx.opt("windows", _WINDOWS)
            for entries in ctx.opt("queue_sizes", _QUEUE_SIZES)]


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    return [Cell(((window, entries), spec.name),
                 SimJob(spec,
                        naive_mirza_setup(window, queue_entries=entries),
                        scale, seed),
                 slowdown=True)
            for window, entries in _points(ctx)
            for spec in ctx.specs()]


def _reduce(cells: framework.Cells) -> Table5Result:
    result = Table5Result()
    for point in _points(cells.ctx):
        result.slowdown[point] = mean(
            cells[(point, spec.name)][0]
            for spec in cells.ctx.specs())
    return result


def _render(result: Table5Result) -> str:
    windows = sorted({w for w, _ in result.slowdown})
    queues = sorted({q for _, q in result.slowdown})
    rows = []
    for window in windows:
        row = [f"MINT-W {window}"]
        for q in queues:
            measured = result.slowdown[(window, q)]
            paper = PAPER.get((window, q), "-")
            row.append(f"{measured:.2f}% ({paper}%)")
        rows.append(row)
    return format_table(
        ["Window"] + [f"Q={q} (paper)" for q in queues], rows,
        title="Table V: Naive MIRZA slowdown vs MIRZA-Q size")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table5",
    title="Table V",
    description="Naive MIRZA slowdown vs queue size",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("MINT-W 48, Q=1 slowdown %", PAPER[(48, 1)],
              lambda r: r.slowdown.get((48, 1), float("nan")),
              rel_tol=0.9),
        Check("MINT-W 48, Q=4 slowdown %", PAPER[(48, 4)],
              lambda r: r.slowdown.get((48, 4), float("nan")),
              rel_tol=1.0, abs_tol=3.0),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        windows: Sequence[int] = _WINDOWS,
        queue_sizes: Sequence[int] = _QUEUE_SIZES,
        session: Optional[SimSession] = None) -> Table5Result:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, scale=scale,
                       windows=tuple(windows),
                       queue_sizes=tuple(queue_sizes))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
