"""Table V: Naive MIRZA slowdown vs MIRZA-Q size.

The paper sweeps MINT-W in {24, 48, 96} (TRHD 500/1K/2K) and queue
sizes {1, 2, 4, 8}; buffering across banks makes each channel-wide
ALERT serve many banks, collapsing the slowdown from >60% (1 entry) to
a few percent (4 entries) -- but even the best naive design stays in
RFM territory, which motivates filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    default_scale,
    selected_workloads,
    sweep_slowdowns,
)
from repro.params import SimScale
from repro.sim.runner import naive_mirza_setup
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean

PAPER = {
    (24, 1): 151.83, (24, 2): 14.21, (24, 4): 10.95, (24, 8): 10.49,
    (48, 1): 102.18, (48, 2): 7.02, (48, 4): 5.81, (48, 8): 5.62,
    (96, 1): 64.07, (96, 2): 3.52, (96, 4): 3.08, (96, 8): 3.01,
}


@dataclass
class Table5Result:
    slowdown: Dict[Tuple[int, int], float] = field(default_factory=dict)
    """(MINT-W, queue entries) -> average slowdown %"""


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        windows: Sequence[int] = (24, 48, 96),
        queue_sizes: Sequence[int] = (1, 2, 4, 8),
        session: Optional[SimSession] = None) -> Table5Result:
    """Execute the experiment; returns the structured results."""
    scale = scale or default_scale()
    specs = selected_workloads(workloads)
    result = Table5Result()
    grid = [(window, entries) for window in windows
            for entries in queue_sizes]
    pairs = [(spec, naive_mirza_setup(window, queue_entries=entries))
             for window, entries in grid for spec in specs]
    outcomes = iter(sweep_slowdowns(pairs, scale, session=session))
    for window, entries in grid:
        slowdowns = [next(outcomes)[0] for _ in specs]
        result.slowdown[(window, entries)] = mean(slowdowns)
    return result


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    result = run()
    windows = sorted({w for w, _ in result.slowdown})
    queues = sorted({q for _, q in result.slowdown})
    rows = []
    for window in windows:
        row = [f"MINT-W {window}"]
        for q in queues:
            measured = result.slowdown[(window, q)]
            paper = PAPER.get((window, q), "-")
            row.append(f"{measured:.2f}% ({paper}%)")
        rows.append(row)
    table = format_table(
        ["Window"] + [f"Q={q} (paper)" for q in queues], rows,
        title="Table V: Naive MIRZA slowdown vs MIRZA-Q size")
    print(table)
    return table


if __name__ == "__main__":
    main()
