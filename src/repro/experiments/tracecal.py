"""Trace-calibration exhibit: replay an ingested trace, check Table IV.

Closes the ingestion loop: a native trace (converted from a DRAMSim3
command trace or a litex row list via ``repro trace convert``) claims
to represent a Table IV workload through its ``# workload:`` metadata;
this exhibit replays it through the unprotected baseline and checks
the measured MPKI and ACT-PKI against that spec.

Two modes share one grid shape:

* ``trace_path`` option (or ``REPRO_TRACE_PATH``) set -- replay that
  file, one :class:`~repro.sim.session.TraceReplayJob` cell keyed by
  its claimed workload.
* default -- self-contained: for each selected workload, synthesize a
  finite trace from the calibrated generator and replay it, which
  validates the shard-replay path itself (capture -> replay must
  round-trip the workload's characteristics).

The declared ``Check``s pin the ``tc`` cell (MPKI 87.8, ACT-PKI 40.7)
at the framework's standard 50% tolerance; when ``tc`` is not in the
selection the checks fall back to the paper values (vacuously ok)
since check tuples are static declarations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments import framework
from repro.experiments.framework import Cell, Context
from repro.params import SimScale
from repro.sim.runner import baseline_setup
from repro.sim.session import SimSession, TraceReplayJob
from repro.workloads.specs import workload_by_name
from repro.workloads.tracefile import calibration_report


@dataclass
class TraceCalibration:
    """Replay measurements for one trace against its claimed spec."""

    workload: str
    mpki: float
    act_pki: float
    mpki_paper: float
    act_pki_paper: float
    mpki_ok: bool
    act_pki_ok: bool

    @property
    def ok(self) -> bool:
        return self.mpki_ok and self.act_pki_ok


def _trace_path(ctx: Context) -> Optional[str]:
    return ctx.opt("trace_path", os.environ.get("REPRO_TRACE_PATH"))


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    path = _trace_path(ctx)
    if path:
        job = TraceReplayJob.for_path(path, baseline_setup(), scale,
                                      seed)
        if job.workload is None:
            raise ValueError(
                f"{path} carries no '# workload:' metadata; convert "
                f"it with --workload or set one to calibrate against")
        return [Cell(job.workload, job)]
    return [Cell(spec.name,
                 TraceReplayJob(None, spec.name, baseline_setup(),
                                scale, seed))
            for spec in ctx.specs()]


def _reduce(cells: framework.Cells) -> Dict[str, TraceCalibration]:
    out: Dict[str, TraceCalibration] = {}
    for key in cells:
        result = cells[key]
        spec = workload_by_name(key)
        rows = {label: (measured, paper, ok) for label, measured,
                paper, ok in calibration_report(result, spec)}
        mpki, mpki_paper, mpki_ok = rows["MPKI"]
        act, act_paper, act_ok = rows["ACT-PKI"]
        out[key] = TraceCalibration(
            workload=key, mpki=mpki, act_pki=act,
            mpki_paper=mpki_paper, act_pki_paper=act_paper,
            mpki_ok=mpki_ok, act_pki_ok=act_ok)
    return out


def _rows(results: Dict[str, TraceCalibration]) -> List[List[str]]:
    return [[
        c.workload,
        f"{c.mpki:.1f}/{c.mpki_paper}",
        f"{c.act_pki:.1f}/{c.act_pki_paper}",
        "ok" if c.ok else "DEV",
    ] for c in results.values()]


def _measured(attr: str, fallback: float):
    """A Check accessor for the ``tc`` cell, tolerant of its absence.

    Check tuples are static while the workload selection is not; when
    ``tc`` was not replayed the check reports the paper value itself
    (vacuously within tolerance) instead of crashing the report.
    """
    def accessor(results: Dict[str, TraceCalibration]) -> float:
        cell = results.get("tc")
        return getattr(cell, attr) if cell is not None else fallback
    return accessor


_TC = workload_by_name("tc")

EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="tracecal",
    title="Trace calibration",
    description="Ingested-trace replay vs Table IV characteristics",
    grid=_grid,
    reduce=_reduce,
    render=framework.TableSpec(
        title="Trace calibration: replayed trace vs claimed "
              "Table IV spec (meas/paper)",
        columns=("Workload", "MPKI", "ACT-PKI", "Check"),
        rows=_rows),
    checks=(
        framework.Check(
            label="tc trace MPKI",
            paper=_TC.l3_mpki,
            measured=_measured("mpki", _TC.l3_mpki)),
        framework.Check(
            label="tc trace ACT-PKI",
            paper=_TC.act_pki,
            measured=_measured("act_pki", _TC.act_pki)),
    ),
))


def run(scale: Optional[SimScale] = None,
        trace_path: Optional[str] = None,
        workloads: Optional[List[str]] = None,
        session: Optional[SimSession] = None
        ) -> Dict[str, TraceCalibration]:
    """Execute the calibration replay; returns the structured
    results."""
    ctx = Context.make(workloads=workloads, scale=scale,
                       trace_path=trace_path)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the calibration table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
