"""Table VII: MIRZA configurations for target TRHD.

Both the paper's published presets and the configurations derived from
the security model are reported; the solver lands within 1% of every
published FTH and reproduces the SRAM/bank column exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    2000: {"fth": 3330, "window": 16, "regions": 64, "sram": 116},
    1000: {"fth": 1500, "window": 12, "regions": 128, "sram": 196},
    500: {"fth": 660, "window": 8, "regions": 256, "sram": 340},
}


@dataclass
class Table7Row:
    trhd: int
    preset: MirzaConfig
    solved: MirzaConfig


def _reduce(cells: framework.Cells) -> List[Table7Row]:
    rows = []
    for trhd in (2000, 1000, 500):
        preset = MirzaConfig.paper_config(trhd)
        solved = MirzaConfig.solve(trhd,
                                   mint_window=preset.mint_window)
        rows.append(Table7Row(trhd=trhd, preset=preset, solved=solved))
    return rows


def _render(rows: List[Table7Row]) -> str:
    table_rows = []
    for row in rows:
        paper = PAPER[row.trhd]
        table_rows.append([
            row.trhd,
            f"{row.preset.fth} (solved {row.solved.fth}, "
            f"paper {paper['fth']})",
            row.preset.mint_window,
            row.preset.num_regions,
            f"{row.preset.storage_bytes_per_bank:.0f} "
            f"(paper {paper['sram']})",
            "yes" if row.solved.is_safe() else "NO",
        ])
    return format_table(
        ["TRHD", "FTH", "MINT-W", "Regions/bank", "SRAM/bank (B)",
         "model-safe"],
        table_rows, title="Table VII: MIRZA configurations")


def _solved_fth_of(trhd: int):
    def measured(rows: List[Table7Row]) -> float:
        for row in rows:
            if row.trhd == trhd:
                return row.solved.fth
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table7",
    title="Table VII",
    description="MIRZA configurations",
    paper=PAPER,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    checks=(
        Check("solved FTH at TRHD=1000", PAPER[1000]["fth"],
              _solved_fth_of(1000), rel_tol=0.01),
        Check("solved FTH at TRHD=500", PAPER[500]["fth"],
              _solved_fth_of(500), rel_tol=0.01),
    ),
))


def run(session: Optional[SimSession] = None) -> List[Table7Row]:
    """Execute the experiment; returns the structured results."""
    return framework.run_experiment(EXPERIMENT, Context.make(),
                                    session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
