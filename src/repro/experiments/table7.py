"""Table VII: MIRZA configurations for target TRHD.

Both the paper's published presets and the configurations derived from
the security model are reported; the solver lands within 1% of every
published FTH and reproduces the SRAM/bank column exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import MirzaConfig
from repro.sim.stats import format_table

PAPER = {
    2000: {"fth": 3330, "window": 16, "regions": 64, "sram": 116},
    1000: {"fth": 1500, "window": 12, "regions": 128, "sram": 196},
    500: {"fth": 660, "window": 8, "regions": 256, "sram": 340},
}


@dataclass
class Table7Row:
    trhd: int
    preset: MirzaConfig
    solved: MirzaConfig


def run() -> List[Table7Row]:
    """Execute the experiment; returns the structured results."""
    rows = []
    for trhd in (2000, 1000, 500):
        preset = MirzaConfig.paper_config(trhd)
        solved = MirzaConfig.solve(trhd,
                                   mint_window=preset.mint_window)
        rows.append(Table7Row(trhd=trhd, preset=preset, solved=solved))
    return rows


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table_rows = []
    for row in run():
        paper = PAPER[row.trhd]
        table_rows.append([
            row.trhd,
            f"{row.preset.fth} (solved {row.solved.fth}, "
            f"paper {paper['fth']})",
            row.preset.mint_window,
            row.preset.num_regions,
            f"{row.preset.storage_bytes_per_bank:.0f} "
            f"(paper {paper['sram']})",
            "yes" if row.solved.is_safe() else "NO",
        ])
    table = format_table(
        ["TRHD", "FTH", "MINT-W", "Regions/bank", "SRAM/bank (B)",
         "model-safe"],
        table_rows, title="Table VII: MIRZA configurations")
    print(table)
    return table


if __name__ == "__main__":
    main()
