"""Table IV: workload characteristics, paper vs measured.

The generator is *calibrated* to these statistics, so this experiment
is the closed-loop check: run the unprotected baseline and measure
L3-MPKI (from retired instructions and requests), ACT-PKI, bus
utilisation, and the per-subarray activation mean/std under strided
row-to-subarray mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments import framework
from repro.experiments.common import SubarrayStatsJob
from repro.experiments.framework import Cell, Context
from repro.params import SimScale
from repro.sim.runner import baseline_setup
from repro.sim.session import SimJob, SimSession
from repro.sim.stats import format_table


@dataclass
class WorkloadMeasurement:
    name: str
    mpki: float
    act_pki: float
    bus_util_pct: float
    acts_per_subarray_mean: float
    acts_per_subarray_std: float


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    cells = []
    for spec in ctx.specs():
        cells.append(Cell(("base", spec.name),
                          SimJob(spec, baseline_setup(), scale, seed)))
        cells.append(Cell(("sa", spec.name),
                          SubarrayStatsJob(spec, scale, seed=seed)))
    return cells


def _reduce(cells: framework.Cells) -> Dict[str, WorkloadMeasurement]:
    scale = cells.ctx.timed_scale()
    out = {}
    for spec in cells.ctx.specs():
        result = cells[("base", spec.name)]
        mean, std = cells[("sa", spec.name)]
        instructions = sum(result.instructions)
        kilo = instructions / 1000.0 if instructions else 1.0
        # Scale per-subarray stats back up to the full 32 ms window for
        # a like-for-like comparison with the paper's numbers.
        s = scale.time_scale
        out[spec.name] = WorkloadMeasurement(
            name=spec.name,
            mpki=result.total_requests / kilo,
            act_pki=result.total_activations / kilo,
            bus_util_pct=100.0 * result.bus_utilization,
            acts_per_subarray_mean=mean * s,
            acts_per_subarray_std=std * s,
        )
    return out


def _render(measurements: Dict[str, WorkloadMeasurement]) -> str:
    from repro.workloads.specs import workload_by_name
    rows = []
    for name, m in measurements.items():
        spec = workload_by_name(name)
        rows.append([
            name,
            f"{m.mpki:.1f}/{spec.l3_mpki}",
            f"{m.act_pki:.1f}/{spec.act_pki}",
            f"{m.bus_util_pct:.0f}/{spec.bus_util_pct}",
            f"{m.acts_per_subarray_mean:.0f}/"
            f"{spec.acts_per_subarray_mean}",
            f"{m.acts_per_subarray_std:.0f}/"
            f"{spec.acts_per_subarray_std}",
        ])
    return format_table(
        ["Workload", "MPKI (meas/paper)", "ACT-PKI", "Bus util %",
         "ACT/subarray mean", "ACT/subarray std"],
        rows, title="Table IV: workload characteristics")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table4",
    title="Table IV",
    description="Workload characteristics",
    grid=_grid,
    reduce=_reduce,
    render=_render,
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        session: Optional[SimSession] = None
        ) -> Dict[str, WorkloadMeasurement]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, scale=scale)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
