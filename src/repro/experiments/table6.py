"""Table VI: effectiveness of CGF under Sequential vs Strided mapping.

The same logical activation streams are filtered through the RCT with
the two row-to-subarray mappings.  Under Sequential, workload locality
(contiguous pages) concentrates activations into a handful of
subarrays and only ~5% of ACTs are filtered; under Strided, locality
spreads over all 128 subarrays and >98% of ACTs are filtered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    CgfJob,
    cgf_scale,
    measure_cgf_many,
    selected_workloads,
)
from repro.params import SimScale
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    (1400, "sequential"): 5.16, (1400, "strided"): 98.34,
    (1500, "sequential"): 5.55, (1500, "strided"): 99.12,
    (1600, "sequential"): 5.94, (1600, "strided"): 99.62,
    (1700, "sequential"): 6.31, (1700, "strided"): 99.85,
}
"""(FTH, mapping) -> % of ACTs filtered."""


@dataclass
class Table6Result:
    filtered_pct: Dict[Tuple[int, str], float] = field(
        default_factory=dict)
    """(full-scale FTH, mapping) -> average % of ACTs filtered."""


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        fths: Sequence[int] = (1400, 1500, 1600, 1700),
        num_regions: int = 128,
        session: Optional[SimSession] = None) -> Table6Result:
    """Execute the experiment; returns the structured results."""
    scale = scale or cgf_scale()
    specs = selected_workloads(workloads)
    result = Table6Result()
    grid = [(fth, mapping) for fth in fths
            for mapping in ("sequential", "strided")]
    jobs = [CgfJob(spec, mapping, scale.scale_threshold(fth),
                   num_regions, scale)
            for fth, mapping in grid for spec in specs]
    outcomes = iter(measure_cgf_many(jobs, session))
    for fth, mapping in grid:
        filtered = total = 0
        for _ in specs:
            stats = next(outcomes)
            filtered += stats.filtered
            total += stats.total_acts
        # ACT-weighted aggregate: the paper's percentages are over
        # the pooled activation stream, so heavy workloads dominate.
        result.filtered_pct[(fth, mapping)] = \
            100.0 * filtered / total if total else 0.0
    return result


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    result = run()
    fths = sorted({f for f, _ in result.filtered_pct})
    rows = []
    for fth in fths:
        seq = result.filtered_pct[(fth, "sequential")]
        str_ = result.filtered_pct[(fth, "strided")]
        rows.append([
            fth,
            f"{seq:.2f}% ({PAPER[(fth, 'sequential')]}%)",
            f"{100 - seq:.2f}%",
            f"{str_:.2f}% ({PAPER[(fth, 'strided')]}%)",
            f"{100 - str_:.2f}%",
        ])
    table = format_table(
        ["FTH", "Sequential filtered (paper)", "Seq remaining",
         "Strided filtered (paper)", "Strided remaining"],
        rows, title="Table VI: CGF effectiveness by R2SA mapping")
    print(table)
    return table


if __name__ == "__main__":
    main()
