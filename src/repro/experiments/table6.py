"""Table VI: effectiveness of CGF under Sequential vs Strided mapping.

The same logical activation streams are filtered through the RCT with
the two row-to-subarray mappings.  Under Sequential, workload locality
(contiguous pages) concentrates activations into a handful of
subarrays and only ~5% of ACTs are filtered; under Strided, locality
spreads over all 128 subarrays and >98% of ACTs are filtered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import framework
from repro.experiments.common import CgfJob
from repro.experiments.framework import Cell, Check, Context
from repro.params import SimScale
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    (1400, "sequential"): 5.16, (1400, "strided"): 98.34,
    (1500, "sequential"): 5.55, (1500, "strided"): 99.12,
    (1600, "sequential"): 5.94, (1600, "strided"): 99.62,
    (1700, "sequential"): 6.31, (1700, "strided"): 99.85,
}
"""(FTH, mapping) -> % of ACTs filtered."""

_FTHS = (1400, 1500, 1600, 1700)
_NUM_REGIONS = 128


@dataclass
class Table6Result:
    filtered_pct: Dict[Tuple[int, str], float] = field(
        default_factory=dict)
    """(full-scale FTH, mapping) -> average % of ACTs filtered."""


def _points(ctx: Context) -> List[Tuple[int, str]]:
    return [(fth, mapping) for fth in ctx.opt("fths", _FTHS)
            for mapping in ("sequential", "strided")]


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.counting_scale()
    num_regions = ctx.opt("num_regions", _NUM_REGIONS)
    return [Cell(((fth, mapping), spec.name),
                 CgfJob(spec, mapping, scale.scale_threshold(fth),
                        num_regions, scale))
            for fth, mapping in _points(ctx)
            for spec in ctx.specs()]


def _reduce(cells: framework.Cells) -> Table6Result:
    result = Table6Result()
    for point in _points(cells.ctx):
        filtered = total = 0
        for spec in cells.ctx.specs():
            stats = cells[(point, spec.name)]
            filtered += stats.filtered
            total += stats.total_acts
        # ACT-weighted aggregate: the paper's percentages are over
        # the pooled activation stream, so heavy workloads dominate.
        result.filtered_pct[point] = \
            100.0 * filtered / total if total else 0.0
    return result


def _render(result: Table6Result) -> str:
    fths = sorted({f for f, _ in result.filtered_pct})
    rows = []
    for fth in fths:
        seq = result.filtered_pct[(fth, "sequential")]
        str_ = result.filtered_pct[(fth, "strided")]
        rows.append([
            fth,
            f"{seq:.2f}% ({PAPER[(fth, 'sequential')]}%)",
            f"{100 - seq:.2f}%",
            f"{str_:.2f}% ({PAPER[(fth, 'strided')]}%)",
            f"{100 - str_:.2f}%",
        ])
    return format_table(
        ["FTH", "Sequential filtered (paper)", "Seq remaining",
         "Strided filtered (paper)", "Strided remaining"],
        rows, title="Table VI: CGF effectiveness by R2SA mapping")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table6",
    title="Table VI",
    description="CGF effectiveness by mapping",
    paper=PAPER,
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("FTH 1500 strided filtered %",
              PAPER[(1500, "strided")],
              lambda r: r.filtered_pct.get((1500, "strided"),
                                           float("nan")),
              rel_tol=0.15),
        Check("FTH 1500 sequential filtered %",
              PAPER[(1500, "sequential")],
              lambda r: r.filtered_pct.get((1500, "sequential"),
                                           float("nan")),
              rel_tol=1.0, abs_tol=15.0),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        fths: Sequence[int] = _FTHS,
        num_regions: int = _NUM_REGIONS,
        session: Optional[SimSession] = None) -> Table6Result:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, cgf=scale,
                       fths=tuple(fths), num_regions=num_regions)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
