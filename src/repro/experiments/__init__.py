"""One module per table/figure of the paper's evaluation.

Every module is a declarative :class:`~repro.experiments.framework.
Experiment` registration plus a thin ``run(...)`` compatibility wrapper
returning the structured results and a ``main()`` that prints the
paper-style table with the published numbers alongside the reproduced
ones.  The benchmark harness under ``benchmarks/`` calls the ``run``
functions; the report generator plans every registered declaration as
one deduplicated session batch; EXPERIMENTS.md records the
paper-vs-measured comparison.

Experiment scope knobs (environment variables, also accepted as
arguments):

- ``REPRO_TIME_SCALE``: the :class:`repro.params.SimScale` divisor
  (default 512 for quick runs; 1 reproduces the paper's full 32 ms
  windows).
- ``REPRO_WORKLOADS``: comma-separated workload names or ``all``
  (default: a 6-workload representative subset).
"""

from repro.experiments import (  # noqa: F401
    extras,
    fig1,
    fig3,
    fig6,
    fig11,
    fig13,
    framework,
    fuzz,
    intervm,
    table1,
    table2,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
    table11,
    table12,
    table13,
    tracecal,
)

__all__ = [
    "extras", "framework", "fuzz", "intervm", "tracecal",
    "fig1", "fig3", "fig6", "fig11", "fig13",
    "table1", "table2", "table4", "table5", "table6", "table7",
    "table8", "table9", "table10", "table11", "table12", "table13",
]
