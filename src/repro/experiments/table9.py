"""Table IX: MINT-W / FTH sensitivity at TRHD = 1000.

The security bound trades the two knobs off: a larger MINT window
needs a lower FTH (less filtering, more escapes) but raises ALERTs
less often per escape.  The paper's sweep (W, FTH) = (4, 1820),
(8, 1660), (12, 1500), (16, 1350) shows slowdown growing with W
because the unfiltered-ACT growth dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import MirzaConfig
from repro.experiments.common import (
    CgfJob,
    default_scale,
    measure_cgf_many,
    selected_workloads,
    sweep_slowdowns,
)
from repro.params import SimScale
from repro.sim.runner import mirza_setup
from repro.sim.session import SimSession
from repro.sim.stats import format_table, mean

PAPER_POINTS = [(4, 1820), (8, 1660), (12, 1500), (16, 1350)]
PAPER_SLOWDOWN = {4: 0.1, 8: 0.13, 12: 0.36, 16: 0.6}
PAPER_REMAINING = {4: 0.06, 8: 0.21, 12: 0.88, 16: 2.29}


@dataclass
class Table9Row:
    mint_window: int
    fth: int
    slowdown_pct: float
    remaining_acts_pct: float
    sram_bytes: float


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        points: Sequence[Tuple[int, int]] = tuple(PAPER_POINTS),
        session: Optional[SimSession] = None) -> List[Table9Row]:
    """Execute the experiment; returns the structured results."""
    scale = scale or default_scale()
    specs = selected_workloads(workloads)
    configs = [MirzaConfig(trhd=1000, fth=fth, mint_window=window,
                           num_regions=128)
               for window, fth in points]
    pairs = [(spec, mirza_setup(1000, scale, config=config))
             for config in configs for spec in specs]
    outcomes = iter(sweep_slowdowns(pairs, scale, session=session))
    cgf_jobs = [CgfJob(spec, "strided", scale.scale_threshold(fth),
                       128, scale)
                for window, fth in points for spec in specs]
    cgf_stats = iter(measure_cgf_many(cgf_jobs, session))
    rows = []
    for (window, fth), config in zip(points, configs):
        slowdowns = [next(outcomes)[0] for _ in specs]
        remaining = [next(cgf_stats).remaining_pct for _ in specs]
        rows.append(Table9Row(
            mint_window=window, fth=fth,
            slowdown_pct=mean(slowdowns),
            remaining_acts_pct=mean(remaining),
            sram_bytes=config.storage_bytes_per_bank,
        ))
    return rows


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table_rows = []
    for row in run():
        table_rows.append([
            row.mint_window,
            row.fth,
            f"{row.sram_bytes:.0f}",
            f"{row.slowdown_pct:.2f}% "
            f"(paper {PAPER_SLOWDOWN[row.mint_window]}%)",
            f"{row.remaining_acts_pct:.2f}% "
            f"(paper {PAPER_REMAINING[row.mint_window]}%)",
        ])
    table = format_table(
        ["MINT-W", "FTH", "SRAM/bank", "Slowdown", "Remaining ACTs"],
        table_rows,
        title="Table IX: FTH vs MINT-W sensitivity at TRHD=1K")
    print(table)
    return table


if __name__ == "__main__":
    main()
