"""Table IX: MINT-W / FTH sensitivity at TRHD = 1000.

The security bound trades the two knobs off: a larger MINT window
needs a lower FTH (less filtering, more escapes) but raises ALERTs
less often per escape.  The paper's sweep (W, FTH) = (4, 1820),
(8, 1660), (12, 1500), (16, 1350) shows slowdown growing with W
because the unfiltered-ACT growth dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.common import CgfJob
from repro.experiments.framework import Cell, Check, Context
from repro.params import SimScale
from repro.sim.runner import mirza_setup
from repro.sim.session import SimJob, SimSession
from repro.sim.stats import format_table, mean

PAPER_POINTS = [(4, 1820), (8, 1660), (12, 1500), (16, 1350)]
PAPER_SLOWDOWN = {4: 0.1, 8: 0.13, 12: 0.36, 16: 0.6}
PAPER_REMAINING = {4: 0.06, 8: 0.21, 12: 0.88, 16: 2.29}


@dataclass
class Table9Row:
    mint_window: int
    fth: int
    slowdown_pct: float
    remaining_acts_pct: float
    sram_bytes: float


def _points(ctx: Context) -> List[Tuple[int, int]]:
    return list(ctx.opt("points", tuple(PAPER_POINTS)))


def _config(window: int, fth: int) -> MirzaConfig:
    return MirzaConfig(trhd=1000, fth=fth, mint_window=window,
                       num_regions=128)


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    cells = []
    for window, fth in _points(ctx):
        config = _config(window, fth)
        for spec in ctx.specs():
            cells.append(Cell(
                ("sd", (window, fth), spec.name),
                SimJob(spec, mirza_setup(1000, scale, config=config),
                       scale, seed),
                slowdown=True))
            cells.append(Cell(
                ("cgf", (window, fth), spec.name),
                CgfJob(spec, "strided", scale.scale_threshold(fth),
                       128, scale)))
    return cells


def _reduce(cells: framework.Cells) -> List[Table9Row]:
    rows = []
    for window, fth in _points(cells.ctx):
        specs = cells.ctx.specs()
        slowdowns = [cells[("sd", (window, fth), spec.name)][0]
                     for spec in specs]
        remaining = [cells[("cgf", (window, fth),
                            spec.name)].remaining_pct
                     for spec in specs]
        rows.append(Table9Row(
            mint_window=window, fth=fth,
            slowdown_pct=mean(slowdowns),
            remaining_acts_pct=mean(remaining),
            sram_bytes=_config(window, fth).storage_bytes_per_bank,
        ))
    return rows


def _render(rows: List[Table9Row]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append([
            row.mint_window,
            row.fth,
            f"{row.sram_bytes:.0f}",
            f"{row.slowdown_pct:.2f}% "
            f"(paper {PAPER_SLOWDOWN[row.mint_window]}%)",
            f"{row.remaining_acts_pct:.2f}% "
            f"(paper {PAPER_REMAINING[row.mint_window]}%)",
        ])
    return format_table(
        ["MINT-W", "FTH", "SRAM/bank", "Slowdown", "Remaining ACTs"],
        table_rows,
        title="Table IX: FTH vs MINT-W sensitivity at TRHD=1K")


def _row_for(rows: List[Table9Row], window: int) -> Optional[Table9Row]:
    for row in rows:
        if row.mint_window == window:
            return row
    return None


def _slowdown_of(window: int):
    def measured(rows: List[Table9Row]) -> float:
        row = _row_for(rows, window)
        return row.slowdown_pct if row else float("nan")
    return measured


def _remaining_of(window: int):
    def measured(rows: List[Table9Row]) -> float:
        row = _row_for(rows, window)
        return row.remaining_acts_pct if row else float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table9",
    title="Table IX",
    description="FTH vs MINT-W sensitivity",
    paper={"slowdown": PAPER_SLOWDOWN, "remaining": PAPER_REMAINING},
    grid=_grid,
    reduce=_reduce,
    render=_render,
    checks=(
        Check("W=12 slowdown %", PAPER_SLOWDOWN[12],
              _slowdown_of(12), rel_tol=1.0, abs_tol=2.0),
        Check("W=12 remaining ACTs %", PAPER_REMAINING[12],
              _remaining_of(12), rel_tol=1.0, abs_tol=2.0),
        Check("W=16 remaining ACTs %", PAPER_REMAINING[16],
              _remaining_of(16), rel_tol=1.0, abs_tol=3.0),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        points: Sequence[Tuple[int, int]] = tuple(PAPER_POINTS),
        session: Optional[SimSession] = None) -> List[Table9Row]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, scale=scale,
                       points=tuple(points))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
