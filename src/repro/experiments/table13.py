"""Table XIII: average vs worst-case slowdown for PRAC, MINT, MIRZA.

Average slowdowns come from the benign-workload simulations (Figures 3
and 11); worst-case (performance-attack) slowdowns come from the
Section IX analytic throughput model for MIRZA and the paper's
reported factors for PRAC/MINT (whose attack surface is an MC-level
bandwidth question, not a tracker question).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.experiments.table11 import attack_relative_throughput
from repro.params import SimScale
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {
    (500, "PRAC+ABO"): (1.2, 6.5), (500, "MINT+RFM"): (1.4, 10.95),
    (500, "MIRZA"): (2.25, 1.43),
    (1000, "PRAC+ABO"): (1.1, 6.5), (1000, "MINT+RFM"): (1.2, 5.81),
    (1000, "MIRZA"): (1.8, 0.36),
    (2000, "PRAC+ABO"): (1.05, 6.5), (2000, "MINT+RFM"): (1.1, 3.08),
    (2000, "MIRZA"): (1.6, 0.05),
}
"""(TRHD, tracker) -> (perf-attack slowdown x, average slowdown %)."""


@dataclass
class Table13Row:
    trhd: int
    tracker: str
    attack_slowdown_x: float
    average_slowdown_pct: float


def _reduce(cells: framework.Cells) -> List[Table13Row]:
    benign_rfm = cells.dep("fig3")
    benign_mirza = cells.dep("fig11")
    rows = []
    for trhd in (500, 1000, 2000):
        window = MirzaConfig.paper_config(trhd).mint_window
        attack_x = 100.0 / attack_relative_throughput(window)
        rows.extend([
            Table13Row(trhd, "PRAC+ABO",
                       PAPER[(trhd, "PRAC+ABO")][0],
                       benign_mirza.prac_slowdown),
            Table13Row(trhd, "MINT+RFM",
                       PAPER[(trhd, "MINT+RFM")][0],
                       benign_rfm.mint_slowdown[trhd]),
            Table13Row(trhd, "MIRZA", attack_x,
                       benign_mirza.mirza_slowdown[trhd]),
        ])
    return rows


def _render(rows: List[Table13Row]) -> str:
    table_rows = []
    for row in rows:
        paper_attack, paper_avg = PAPER[(row.trhd, row.tracker)]
        table_rows.append([
            row.trhd, row.tracker,
            f"{row.attack_slowdown_x:.2f}x (paper {paper_attack}x)",
            f"{row.average_slowdown_pct:.2f}% (paper {paper_avg}%)",
        ])
    return format_table(
        ["TRHD", "Tracker", "Perf-attack slowdown",
         "Average slowdown"],
        table_rows,
        title="Table XIII: average vs worst-case slowdown")


def _attack_of(trhd: int, tracker: str):
    def measured(rows: List[Table13Row]) -> float:
        for row in rows:
            if row.trhd == trhd and row.tracker == tracker:
                return row.attack_slowdown_x
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table13",
    title="Table XIII",
    description="Average vs worst-case slowdown",
    paper=PAPER,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    needs=("fig3", "fig11"),
    checks=(
        Check("MIRZA-1000 perf-attack slowdown x",
              PAPER[(1000, "MIRZA")][0],
              _attack_of(1000, "MIRZA"), rel_tol=0.5),
        Check("MIRZA-500 perf-attack slowdown x",
              PAPER[(500, "MIRZA")][0],
              _attack_of(500, "MIRZA"), rel_tol=0.5),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        session: Optional[SimSession] = None) -> List[Table13Row]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, scale=scale)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
