"""Table XI / Figure 12: the performance (DoS) attack on MIRZA.

Section IX-A's analytic model: a benign application striping reads
over 16 banks sustains one ACT per tBURST (3 ns).  An attacker primes
one RCT region past FTH with a circular K-row pattern, after which
every MINT window of W escaped ACTs produces one queued selection and
one ALERT.  Per ALERT cycle the attacker lands 3 ACTs in the prologue
and W-3 outside, so the benign application gets

    usable = (prologue - tRC) + (W - 3) * tRC   of every
    cycle  = alert_latency  + (W - 3) * tRC.

The paper reports relative throughput 63.4% / 55.9% / 44.5% (slowdown
1.6x / 1.8x / 2.25x) for MINT-W 16 / 12 / 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.params import AboTimings, DramTimings
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {16: (63.4, 1.6), 12: (55.9, 1.8), 8: (44.5, 2.25)}

_WINDOWS = (16, 12, 8)


@dataclass
class Table11Row:
    mint_window: int
    relative_throughput_pct: float

    @property
    def slowdown_factor(self) -> float:
        return 100.0 / self.relative_throughput_pct


def attack_relative_throughput(mint_window: int,
                               timings: DramTimings = DramTimings(),
                               abo: AboTimings = AboTimings()) -> float:
    """Benign ACT throughput under attack, relative to unattacked."""
    if mint_window < abo.acts_during_prologue + abo.epilogue_acts:
        raise ValueError("MINT window below the ABO protocol minimum")
    outside_acts = mint_window - abo.acts_during_prologue
    outside_time = outside_acts * timings.tRC
    usable = (abo.prologue - timings.tRC) + outside_time
    cycle = abo.latency + outside_time
    return 100.0 * usable / cycle


def _reduce(cells: framework.Cells) -> List[Table11Row]:
    return [Table11Row(w, attack_relative_throughput(w))
            for w in cells.ctx.opt("windows", _WINDOWS)]


def _render(rows: List[Table11Row]) -> str:
    table_rows = []
    for row in rows:
        paper_tp, paper_sd = PAPER[row.mint_window]
        table_rows.append([
            row.mint_window,
            f"{row.relative_throughput_pct:.1f}% (paper {paper_tp}%)",
            f"{row.slowdown_factor:.2f}x (paper {paper_sd}x)",
        ])
    return format_table(
        ["MINT-W", "ACT throughput", "Slowdown"],
        table_rows, title="Table XI: performance attack on MIRZA")


def _throughput_of(window: int):
    def measured(rows: List[Table11Row]) -> float:
        for row in rows:
            if row.mint_window == window:
                return row.relative_throughput_pct
        return float("nan")
    return measured


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="table11",
    title="Table XI",
    description="Performance attack",
    paper=PAPER,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    checks=(
        Check("W=12 relative throughput %", PAPER[12][0],
              _throughput_of(12), rel_tol=0.25),
        Check("W=8 relative throughput %", PAPER[8][0],
              _throughput_of(8), rel_tol=0.25),
    ),
))


def run(windows: Sequence[int] = _WINDOWS,
        session: Optional[SimSession] = None) -> List[Table11Row]:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(windows=tuple(windows))
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
