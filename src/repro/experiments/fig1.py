"""Figure 1(c): the headline numbers.

MIRZA needs ~28x fewer mitigations than MINT (Table VIII at TRHD=1K)
and ~45x less area than PRAC (Table X at TRHD=1K), at 196 bytes of
SRAM per bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import table8, table10
from repro.params import SimScale
from repro.sim.stats import format_table

PAPER = {"mitigation_reduction": 28.5, "area_reduction": 45.0,
         "sram_bytes": 196}


@dataclass
class Fig1Summary:
    mitigation_reduction: float
    area_reduction: float
    sram_bytes_per_bank: float


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None) -> Fig1Summary:
    """Execute the experiment; returns the structured results."""
    overhead = [r for r in table8.run(workloads, scale)
                if r.trhd == 1000][0]
    area = [r for r in table10.run() if r.trhd == 1000][0]
    config = MirzaConfig.paper_config(1000)
    return Fig1Summary(
        mitigation_reduction=overhead.reduction,
        area_reduction=area.area_ratio,
        sram_bytes_per_bank=config.storage_bytes_per_bank,
    )


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    summary = run()
    rows = [
        ["mitigations vs MINT",
         f"{summary.mitigation_reduction:.1f}x fewer",
         f"{PAPER['mitigation_reduction']}x"],
        ["area vs PRAC", f"{summary.area_reduction:.1f}x lower",
         f"{PAPER['area_reduction']}x"],
        ["SRAM per bank", f"{summary.sram_bytes_per_bank:.0f} B",
         f"{PAPER['sram_bytes']} B"],
    ]
    table = format_table(["Metric", "measured", "paper"], rows,
                         title="Figure 1(c): headline summary "
                               "(TRHD=1K)")
    print(table)
    return table


if __name__ == "__main__":
    main()
