"""Figure 1(c): the headline numbers.

MIRZA needs ~28x fewer mitigations than MINT (Table VIII at TRHD=1K)
and ~45x less area than PRAC (Table X at TRHD=1K), at 196 bytes of
SRAM per bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MirzaConfig
from repro.experiments import framework
from repro.experiments.framework import Check, Context
from repro.params import SimScale
from repro.sim.session import SimSession
from repro.sim.stats import format_table

PAPER = {"mitigation_reduction": 28.5, "area_reduction": 45.0,
         "sram_bytes": 196}


@dataclass
class Fig1Summary:
    mitigation_reduction: float
    area_reduction: float
    sram_bytes_per_bank: float


def _reduce(cells: framework.Cells) -> Fig1Summary:
    overhead = [r for r in cells.dep("table8") if r.trhd == 1000][0]
    area = [r for r in cells.dep("table10") if r.trhd == 1000][0]
    config = MirzaConfig.paper_config(1000)
    return Fig1Summary(
        mitigation_reduction=overhead.reduction,
        area_reduction=area.area_ratio,
        sram_bytes_per_bank=config.storage_bytes_per_bank,
    )


def _render(summary: Fig1Summary) -> str:
    rows = [
        ["mitigations vs MINT",
         f"{summary.mitigation_reduction:.1f}x fewer",
         f"{PAPER['mitigation_reduction']}x"],
        ["area vs PRAC", f"{summary.area_reduction:.1f}x lower",
         f"{PAPER['area_reduction']}x"],
        ["SRAM per bank", f"{summary.sram_bytes_per_bank:.0f} B",
         f"{PAPER['sram_bytes']} B"],
    ]
    return format_table(["Metric", "measured", "paper"], rows,
                        title="Figure 1(c): headline summary "
                              "(TRHD=1K)")


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="fig1",
    title="Figure 1c",
    description="Headline summary",
    paper=PAPER,
    grid=lambda ctx: (),
    reduce=_reduce,
    render=_render,
    needs=("table8", "table10"),
    checks=(
        Check("mitigation reduction x", PAPER["mitigation_reduction"],
              lambda r: r.mitigation_reduction, rel_tol=0.9),
        Check("area reduction x", PAPER["area_reduction"],
              lambda r: r.area_reduction, rel_tol=0.5),
        Check("SRAM bytes per bank", PAPER["sram_bytes"],
              lambda r: r.sram_bytes_per_bank, rel_tol=0.1),
    ),
))


def run(workloads: Optional[List[str]] = None,
        scale: Optional[SimScale] = None,
        session: Optional[SimSession] = None) -> Fig1Summary:
    """Execute the experiment; returns the structured results."""
    ctx = Context.make(workloads=workloads, cgf=scale)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the paper-style table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
