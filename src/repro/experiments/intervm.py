"""Inter-VM extension exhibit: attacker pressure x mitigation.

A co-located attacker VM (two cores running the Figure 12 performance
kernel, behind its own seeded-permutation address space) shares the
device with a victim VM running a Table IV workload on the remaining
cores.  The sweep crosses attacker pressure (the kernel's K, 0 = idle
attacker) with mitigation setups and reports, per cell, the victim
tenant's IPC, its slowdown against the unprotected/no-attacker
reference cell, and each tenant's *escape exposure* -- the worst
unmitigated-ACT count inside the banks that tenant can reach.

This is the evaluation shape of the inter-VM RowHammer framework
literature, expressed through the same declarative experiment
machinery as the paper exhibits: one deduplicated grid of
:class:`~repro.sim.session.TenantJob` cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import framework
from repro.experiments.framework import Cell, Context
from repro.params import SimScale
from repro.sim.registry import setup_by_name
from repro.sim.session import SimSession, TenantJob
from repro.workloads.tenants import intervm_scenario, \
    scenario_footprints

SETUPS = ("baseline", "prac-1000", "mint-rfm-1000", "mirza-1000")
"""Mitigation axis of the sweep (registry names)."""

PRESSURES = (0, 4, 32)
"""Attacker-pressure axis: K rows per attacking core (0 = idle)."""

REFERENCE = ("baseline", 0)
"""The cell victim slowdowns are measured against: unprotected, no
attacker."""


@dataclass
class InterVmPoint:
    """One (setup, pressure) cell of the sweep, reduced."""

    setup: str
    pressure: int
    victim_ipc: float
    victim_slowdown_pct: float
    victim_exposure: int
    attacker_exposure: int
    alerts: int


def _scenario(ctx: Context, pressure: int):
    return intervm_scenario(
        attack_rows=pressure,
        victim=ctx.opt("victim", "mcf"),
        attacker_cores=ctx.opt("attacker_cores", 2))


def _grid(ctx: Context) -> List[Cell]:
    scale = ctx.timed_scale()
    seed = ctx.run_seed()
    cells = []
    for setup_name in ctx.opt("setups", SETUPS):
        setup = setup_by_name(setup_name, scale)
        for pressure in ctx.opt("pressures", PRESSURES):
            cells.append(Cell(
                (setup_name, pressure),
                TenantJob(_scenario(ctx, pressure), setup, scale,
                          seed)))
    return cells


def _reduce(cells: framework.Cells
            ) -> Dict[Tuple[str, int], InterVmPoint]:
    ctx = cells.ctx
    setups = ctx.opt("setups", SETUPS)
    pressures = ctx.opt("pressures", PRESSURES)
    reference = cells[REFERENCE] if REFERENCE[0] in setups \
        and REFERENCE[1] in pressures else None
    out: Dict[Tuple[str, int], InterVmPoint] = {}
    for setup_name in setups:
        for pressure in pressures:
            result = cells[(setup_name, pressure)]
            footprints = scenario_footprints(
                _scenario(ctx, pressure), result.config)
            exposure = result.tenant_exposure(footprints)
            slowdown = result.tenant_slowdown_pct(
                reference, "victim") if reference is not None else 0.0
            out[(setup_name, pressure)] = InterVmPoint(
                setup=setup_name,
                pressure=pressure,
                victim_ipc=result.tenant_ipc().get("victim", 0.0),
                victim_slowdown_pct=slowdown,
                victim_exposure=exposure.get("victim", 0),
                attacker_exposure=exposure.get("attacker", 0),
                alerts=sum(result.alerts),
            )
    return out


def _rows(points: Dict[Tuple[str, int], InterVmPoint]
          ) -> List[List[str]]:
    return [[
        p.setup,
        str(p.pressure),
        f"{p.victim_ipc:.3f}",
        f"{p.victim_slowdown_pct:.1f}%",
        str(p.victim_exposure),
        str(p.attacker_exposure),
        str(p.alerts),
    ] for p in points.values()]


EXPERIMENT = framework.register_experiment(framework.Experiment(
    name="intervm",
    title="Inter-VM",
    description="Attacker pressure x mitigation: victim slowdown "
                "and escape exposure",
    grid=_grid,
    reduce=_reduce,
    render=framework.TableSpec(
        title="Inter-VM: victim slowdown and escape exposure "
              "(slowdown vs unprotected/no-attacker)",
        columns=("Setup", "K rows/core", "Victim IPC",
                 "Victim slowdown", "Victim exposure",
                 "Attacker-bank exposure", "ALERTs"),
        rows=_rows),
    checks=(
        framework.Check(
            label="victim slowdown, unprotected, no attacker (%)",
            paper=0.0,
            measured=lambda r: r[REFERENCE].victim_slowdown_pct,
            abs_tol=0.5),
    ),
))


def run(scale: Optional[SimScale] = None,
        victim: Optional[str] = None,
        session: Optional[SimSession] = None
        ) -> Dict[Tuple[str, int], InterVmPoint]:
    """Execute the sweep; returns the structured results."""
    ctx = Context.make(scale=scale, victim=victim)
    return framework.run_experiment(EXPERIMENT, ctx, session=session)


def main() -> str:
    """Print the sweep table; returns the rendered text."""
    table = framework.render_experiment(EXPERIMENT, run())
    print(table)
    return table


if __name__ == "__main__":
    main()
