"""Shared plumbing for the experiment modules.

Besides the environment knobs (scales, workload subsets, seed) and the
activation-level measurement kernels (:func:`measure_cgf`,
:func:`acts_per_subarray_for`), this module defines the *session job*
wrappers the experiment sweeps submit to a
:class:`~repro.sim.session.SimSession`: :class:`CgfJob` and
:class:`SubarrayStatsJob` make the counting measurements cacheable and
process-pool dispatchable exactly like the timed ``SimJob`` runs.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.rct import RegionCountTable
from repro.dram.mapping import (
    RowToSubarrayMapping,
    SequentialR2SA,
    StridedR2SA,
)
from repro.dram.refresh import RefreshScheduler
from repro.params import SimScale, SystemConfig
from repro.sim.runner import MitigationSetup
from repro.sim.session import (
    SimJob,
    SimSession,
    get_default_session,
    register_job_type,
)
from repro.workloads.specs import ALL_WORKLOADS, WorkloadSpec, \
    workload_by_name
from repro.workloads.synthetic import SyntheticWorkload

DEFAULT_SUBSET = ["cc", "fotonik3d", "tc", "blender", "mcf", "bc"]
"""Representative subset: the heaviest GAP/SPEC workloads plus light
ones, spanning the full range of ACT intensity and spread."""


def default_scale() -> SimScale:
    """Simulation window divisor (REPRO_TIME_SCALE, default 512)."""
    return SimScale(int(os.environ.get("REPRO_TIME_SCALE", "512")))


def cgf_scale() -> SimScale:
    """Window divisor for activation-level CGF measurements.

    Counting experiments are orders of magnitude cheaper than timed
    simulation, and the filter's escape probability is sensitive to the
    count-to-FTH granularity, so they run at a much milder scale
    (REPRO_CGF_SCALE, default 16: per-region counts of ~50-100 against
    an FTH of ~94 at TRHD=1K).
    """
    return SimScale(int(os.environ.get("REPRO_CGF_SCALE", "16")))


def default_seed() -> int:
    """Base RNG seed for simulation sweeps (REPRO_SEED, default 0)."""
    return int(os.environ.get("REPRO_SEED", "0"))


def selected_workloads(names: Optional[Iterable[str]] = None
                       ) -> List[WorkloadSpec]:
    """Workload list from the argument or REPRO_WORKLOADS."""
    if names is None:
        raw = os.environ.get("REPRO_WORKLOADS", "")
        if raw.strip().lower() == "all":
            return list(ALL_WORKLOADS)
        names = [n for n in raw.split(",") if n.strip()] or DEFAULT_SUBSET
    return [workload_by_name(n.strip()) for n in names]


def sweep_slowdowns(pairs: Sequence[Tuple[WorkloadSpec,
                                          MitigationSetup]],
                    scale: SimScale,
                    seed: Optional[int] = None,
                    session: Optional[SimSession] = None
                    ) -> List[Tuple[float, "object"]]:
    """(slowdown %, protected result) for each (workload, setup) pair.

    The whole sweep -- protected runs plus their deduplicated
    unprotected baselines -- is submitted to the session as one batch,
    so it fans out over worker processes when the session (or the CLI's
    ``--jobs`` flag) allows, with output identical to a serial sweep.
    """
    session = session or get_default_session()
    seed = default_seed() if seed is None else seed
    jobs = [SimJob(spec, setup, scale, seed) for spec, setup in pairs]
    return session.slowdowns(jobs)


@dataclass
class CgfStats:
    """Activation-level coarse-grained-filtering measurement."""

    total_acts: int
    filtered: int
    escaped: int

    @property
    def filtered_pct(self) -> float:
        return 100.0 * self.filtered / self.total_acts \
            if self.total_acts else 0.0

    @property
    def remaining_pct(self) -> float:
        return 100.0 * self.escaped / self.total_acts \
            if self.total_acts else 0.0


def measure_cgf(spec: WorkloadSpec,
                mapping_kind: str,
                fth: int,
                num_regions: int = 128,
                scale: SimScale = SimScale(512),
                config: SystemConfig = SystemConfig(),
                seed: int = 0) -> CgfStats:
    """Replay one window of activations through per-bank RCTs.

    This is the fast activation-level path (no command timing): the
    workload generator's row visits are fed straight into a Region
    Count Table per bank, with the refresh sweep advanced at the
    equivalent per-bank ACT cadence.  Used for Table VI and the
    escape-probability column of Table VIII.
    """
    geometry = config.geometry
    mapping: RowToSubarrayMapping = (
        StridedR2SA(geometry) if mapping_kind == "strided"
        else SequentialR2SA(geometry))
    synthetic = SyntheticWorkload(spec, config, scale, seed=seed)
    acts_per_bank = scale.scale_count(spec.acts_per_bank_per_window)
    total_acts = int(acts_per_bank * geometry.total_banks)

    refs_per_window = scale.scaled_refs_per_window(config.timings)
    rcts: Dict[Tuple[int, int], RegionCountTable] = {}
    schedulers: Dict[Tuple[int, int], RefreshScheduler] = {}
    acts_seen: Dict[Tuple[int, int], int] = {}
    acts_per_ref = max(1, int(acts_per_bank / refs_per_window))

    filtered = escaped = emitted = 0
    # Round-robin the per-core traces so bank interleaving matches the
    # timed simulation's.
    traces = [synthetic.trace(core) for core in range(config.num_cores)]
    core = 0
    while emitted < total_acts:
        entry = next(traces[core])
        core = (core + 1) % len(traces)
        key = (entry.subchannel, entry.bank)
        if key not in rcts:
            rcts[key] = RegionCountTable(num_regions, fth, geometry)
            schedulers[key] = RefreshScheduler(
                geometry, mapping, refs_per_window)
            acts_seen[key] = 0
        physical = mapping.physical_index(entry.row)
        if rcts[key].on_activate(physical):
            escaped += 1
        else:
            filtered += 1
        emitted += 1
        acts_seen[key] += 1
        if acts_seen[key] % acts_per_ref == 0:
            rcts[key].on_ref_slice(schedulers[key].advance())
    return CgfStats(total_acts=emitted, filtered=filtered,
                    escaped=escaped)


def acts_per_subarray_for(spec: WorkloadSpec,
                          scale: SimScale = SimScale(512),
                          config: SystemConfig = SystemConfig(),
                          seed: int = 0) -> Tuple[float, float]:
    """(mean, std) activations per subarray per window under strided
    mapping -- the Figure 6 / Table IV measurement, activation-level."""
    geometry = config.geometry
    mapping = StridedR2SA(geometry)
    synthetic = SyntheticWorkload(spec, config, scale, seed=seed)
    acts_per_bank = scale.scale_count(spec.acts_per_bank_per_window)
    total_acts = int(acts_per_bank * geometry.total_banks)
    counts: Dict[Tuple[int, int, int], int] = {}
    traces = [synthetic.trace(core) for core in range(config.num_cores)]
    emitted, core = 0, 0
    while emitted < total_acts:
        entry = next(traces[core])
        core = (core + 1) % len(traces)
        sa = mapping.subarray_of(entry.row)
        key = (entry.subchannel, entry.bank, sa)
        counts[key] = counts.get(key, 0) + 1
        emitted += 1
    values = []
    for subch in range(geometry.subchannels):
        for bank in range(geometry.banks_per_subchannel):
            for sa in range(geometry.subarrays_per_bank):
                values.append(counts.get((subch, bank, sa), 0))
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, var ** 0.5


# ----------------------------------------------------------------------
# Session jobs for the counting measurements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CgfJob:
    """One :func:`measure_cgf` call as a cacheable session job."""

    spec: WorkloadSpec
    mapping_kind: str
    fth: int
    num_regions: int = 128
    scale: SimScale = SimScale(512)
    config: SystemConfig = SystemConfig()
    seed: int = 0

    def execute(self) -> CgfStats:
        """Run the measurement (uncached; the worker-process path)."""
        return measure_cgf(self.spec, self.mapping_kind, self.fth,
                           self.num_regions, self.scale, self.config,
                           self.seed)


@dataclass(frozen=True)
class SubarrayStatsJob:
    """One :func:`acts_per_subarray_for` call as a session job."""

    spec: WorkloadSpec
    scale: SimScale = SimScale(512)
    config: SystemConfig = SystemConfig()
    seed: int = 0

    def execute(self) -> Tuple[float, float]:
        """Run the measurement (uncached; the worker-process path)."""
        return acts_per_subarray_for(self.spec, self.scale,
                                     self.config, self.seed)


register_job_type(CgfJob, dataclasses.asdict,
                  lambda payload: CgfStats(**payload))
register_job_type(SubarrayStatsJob, list, tuple)


def measure_cgf_many(jobs: Sequence[CgfJob],
                     session: Optional[SimSession] = None
                     ) -> List[CgfStats]:
    """Run a batch of :class:`CgfJob` through the (default) session."""
    session = session or get_default_session()
    return session.run_many(jobs)


def subarray_stats_many(jobs: Sequence[SubarrayStatsJob],
                        session: Optional[SimSession] = None
                        ) -> List[Tuple[float, float]]:
    """Run :class:`SubarrayStatsJob` batches through the session."""
    session = session or get_default_session()
    return session.run_many(jobs)
