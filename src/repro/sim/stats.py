"""Small statistics and table-formatting helpers for experiments."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Iterable[float]) -> float:
    """Population standard deviation."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Iterable[float], p: float) -> float:
    """The ``p``-th percentile (linear interpolation, ``p`` in [0, 100]).

    Documented semantics: ``numpy.percentile``'s default ("linear")
    method; returns 0.0 for an empty input.  When numpy is importable
    the computation *is* ``numpy.percentile``; otherwise the pure-Python
    implementation (:func:`_percentile_py`, kept tested either way)
    produces the same values.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    values = list(values)
    if not values:
        return 0.0
    if _np is not None:
        return float(_np.percentile(values, p))
    return _percentile_py(values, p)


def _percentile_py(values: List[float], p: float) -> float:
    """Pure-Python "linear" percentile (non-empty, validated input).

    The fallback when numpy is absent; the stats test suite pins it
    against :func:`percentile` so the two paths cannot drift.
    """
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    frac = rank - lower
    if frac == 0.0 or lower + 1 >= len(ordered):
        return ordered[lower]
    return ordered[lower] * (1.0 - frac) + ordered[lower + 1] * frac


def histogram(values: Iterable[float], bins: int = 10
              ) -> Tuple[List[int], List[float]]:
    """Equal-width histogram: ``(counts, edges)``.

    ``edges`` has ``bins + 1`` entries spanning [min, max]; a value on
    an interior edge lands in the higher bin (the last bin is closed on
    both sides), matching ``numpy.histogram``.  Empty input yields all
    zero counts over [0, 1]; constant input yields one occupied bin
    over ``[c, c + 1]``.

    Varied input delegates to ``numpy.histogram`` when numpy is
    importable; empty and constant inputs always take the Python path,
    because numpy's constant-input range ``(c - 0.5, c + 0.5)`` differs
    from the documented ``[c, c + 1]`` edges.
    """
    if bins < 1:
        raise ValueError("need at least one bin")
    values = list(values)
    if not values:
        return [0] * bins, [i / bins for i in range(bins + 1)]
    low, high = min(values), max(values)
    if _np is not None and low != high:
        counts, edges = _np.histogram(values, bins=bins)
        return [int(c) for c in counts], [float(e) for e in edges]
    if low == high:
        high = low + 1.0
    width = (high - low) / bins
    edges = [low + i * width for i in range(bins + 1)]
    edges[-1] = high
    counts = [0] * bins
    for value in values:
        index = int((value - low) / width)
        if index >= bins:
            index = bins - 1
        counts[index] += 1
    return counts, edges


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table in the style of the paper's tables."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            text = f"{cell:,.0f}"
        elif abs(cell) >= 10:
            text = f"{cell:.1f}"
        else:
            text = f"{cell:.3f}"
        # A value that rounds to zero at the chosen precision must not
        # surface as "-0.000" (or "-0"): normalise it to plain "0".
        if float(text.replace(",", "")) == 0:
            return "0"
        return text
    return str(cell)
