"""Small statistics and table-formatting helpers for experiments."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std(values: Iterable[float]) -> float:
    """Population standard deviation."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table in the style of the paper's tables."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
