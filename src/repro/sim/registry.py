"""Named mitigation-setup registry.

Maps stable names ("mirza-1000", "prac-500", ...) to setup factories so
CLIs, config files, and sweep scripts can refer to the paper's
configurations without importing constructor functions:

>>> from repro.sim import setup_by_name, available_setups
>>> setup_by_name("mirza-1000").mapping
'strided'
>>> "mint-rfm-500" in available_setups()
True

Factories take the :class:`~repro.params.SimScale` the run will use, so
setups with per-window thresholds (MIRZA's FTH) scale consistently with
the simulation window.  Downstream code can extend the namespace with
:func:`register_setup`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.params import SimScale
from repro.sim.runner import (
    MINT_RFM_WINDOWS,
    MitigationSetup,
    baseline_setup,
    mint_rfm_setup,
    mirza_setup,
    mist_setup,
    naive_mirza_setup,
    prac_setup,
)

SetupFactory = Callable[[SimScale], MitigationSetup]
"""A registered factory: ``scale -> MitigationSetup``."""

_REGISTRY: Dict[str, SetupFactory] = {}


def register_setup(name: str, factory: SetupFactory,
                   replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Refuses to shadow an existing name unless ``replace=True``, so
    typos in extension code fail loudly instead of silently redefining
    a paper configuration.
    """
    if not replace and name in _REGISTRY:
        raise ValueError(f"setup {name!r} is already registered; "
                         f"pass replace=True to override")
    _REGISTRY[name] = factory


def available_setups() -> List[str]:
    """Registered setup names, in registration order."""
    return list(_REGISTRY)


def setup_by_name(name: str,
                  scale: Optional[SimScale] = None) -> MitigationSetup:
    """Instantiate the registered mitigation setup called ``name``.

    ``scale`` feeds factories whose setups carry per-window thresholds
    (e.g. MIRZA's FTH); scale-independent setups ignore it.  A bare
    family name (``"mirza"``, ``"prac"``, ...) is shorthand for its
    TRHD-1000 configuration.  Raises ``KeyError`` listing the known
    names when ``name`` is unknown.
    """
    key = name
    if key not in _REGISTRY and f"{key}-1000" in _REGISTRY:
        key = f"{key}-1000"
    try:
        factory = _REGISTRY[key]
    except KeyError:
        known = ", ".join(available_setups())
        raise KeyError(
            f"unknown setup {name!r}; known: {known}") from None
    return factory(scale if scale is not None else SimScale())


def setups_from_names(names, scale: Optional[SimScale] = None
                      ) -> List[MitigationSetup]:
    """Instantiate several registered setups at one scale.

    The sweep-shaped twin of :func:`setup_by_name`: mitigation-axis
    exhibits (the inter-VM sweep, ad-hoc CLI lists) resolve their
    whole setup list in one call, with the same bare-name shorthand.
    """
    return [setup_by_name(name, scale) for name in names]


register_setup("baseline", lambda scale: baseline_setup())
for _trhd in (500, 1000, 2000):
    register_setup(f"prac-{_trhd}",
                   lambda scale, trhd=_trhd: prac_setup(trhd))
    register_setup(f"mint-rfm-{_trhd}",
                   lambda scale, trhd=_trhd: mint_rfm_setup(trhd))
    register_setup(
        f"naive-mirza-{_trhd}",
        lambda scale, trhd=_trhd: naive_mirza_setup(
            MINT_RFM_WINDOWS[trhd]))
    register_setup(f"mist-{_trhd}",
                   lambda scale, trhd=_trhd: mist_setup(trhd))
    register_setup(f"mirza-{_trhd}",
                   lambda scale, trhd=_trhd: mirza_setup(trhd, scale))
del _trhd
