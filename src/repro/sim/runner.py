"""Builds and runs (workload x mitigation) simulations.

Every experiment module ultimately goes through :func:`simulate`: it
wires a :class:`repro.cpu.system.MultiCoreSystem` for the requested
mitigation setup, drives one scaled refresh window, and returns the
:class:`repro.cpu.system.SimResult`.  The public entry points
(:func:`run_workload`, :func:`run_baseline`, :func:`slowdown_for`) are
thin wrappers that route through the default
:class:`repro.sim.session.SimSession`, which memoises results by a
content hash of (workload, setup, scale, seed, config) and can fan
independent runs out over worker processes.

Mitigation setups mirror the paper's configurations:

- ``baseline_setup``    -- unprotected, normal DDR5 timings.
- ``prac_setup``        -- PRAC+ABO (MOAT): per-row counters *and* the
  inflated PRAC timings of Table I.
- ``mint_rfm_setup``    -- proactive MINT with RFM every W activations
  (W = 24/48/96 for TRHD 500/1000/2000, Figure 3).
- ``naive_mirza_setup`` -- MINT+ABO with a MIRZA-Q but no filtering
  (Table V).
- ``mist_setup``        -- MC-side DRFM sampling (Section X extension).
- ``mirza_setup``       -- the full mechanism with strided
  row-to-subarray mapping (Figure 11).

The tracker/DRFM factories inside a setup are small frozen dataclasses
rather than closures, so a :class:`MitigationSetup` is both *picklable*
(it can cross a process-pool boundary) and *hashable by content* (the
session can cache its results).  A setup built around a hand-rolled
closure still works -- it just runs in-process and uncached.
"""

from __future__ import annotations

import os
import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Union

from repro import _env
from repro import obs as _obs
from repro.core.config import MirzaConfig
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans
from repro.sim import backend as _backend
from repro.sim.backend import KernelBackend
from repro.core.mirza import MirzaTracker
from repro.cpu.system import MultiCoreSystem, SimResult
from repro.dram.mapping import (
    RowToSubarrayMapping,
    SequentialR2SA,
    StridedR2SA,
)
from repro.mitigations.base import BankTracker
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.naive_mirza import NaiveMirzaTracker
from repro.mitigations.prac import PracTracker
from repro.params import DramGeometry, SimScale, SystemConfig
from repro.workloads.specs import WorkloadSpec, workload_by_name
from repro.workloads.synthetic import SyntheticWorkload

MINT_RFM_WINDOWS = {500: 24, 1000: 48, 2000: 96}
"""Figure 3: RFM every 24/48/96 activations for TRHD 500/1K/2K."""


@dataclass(frozen=True)
class MitigationSetup:
    """Everything that distinguishes one protected system from another."""

    name: str
    tracker_factory: Optional[Callable[[int, int, int], BankTracker]] = None
    """(seed, subchannel, bank) -> tracker; None = no tracker."""

    use_prac_timings: bool = False
    rfm_bat: Optional[int] = None
    mapping: str = "sequential"
    drfm_factory: Optional[Callable[[int, int], object]] = None
    """(seed, subchannel) -> DrfmEngine; None = no MC-side DRFM."""

    extra: dict = field(default_factory=dict, compare=False)

    def make_mapping(self, config: SystemConfig) -> RowToSubarrayMapping:
        """Instantiate this setup's row-to-subarray mapping."""
        if self.mapping == "strided":
            return StridedR2SA(config.geometry)
        return SequentialR2SA(config.geometry)


# ----------------------------------------------------------------------
# Picklable tracker/DRFM factories
# ----------------------------------------------------------------------
def _bank_rng(seed: int, subch: int, bank: int) -> random.Random:
    """The per-(seed, subchannel, bank) RNG every tracker derives from."""
    return random.Random(seed * 100_003 + subch * 257 + bank)


@dataclass(frozen=True)
class _PracFactory:
    """Per-row PRAC counter trackers (no randomness)."""

    trhd: int

    def __call__(self, seed: int, subch: int, bank: int) -> BankTracker:
        return PracTracker(self.trhd)


@dataclass(frozen=True)
class _MintFactory:
    """Proactive MINT trackers paced by an RFM window."""

    window: int

    def __call__(self, seed: int, subch: int, bank: int) -> BankTracker:
        return MintTracker(self.window, refs_per_mitigation=0,
                           rng=_bank_rng(seed, subch, bank))


@dataclass(frozen=True)
class _NaiveMirzaFactory:
    """MINT + MIRZA-Q trackers without coarse-grained filtering."""

    window: int
    queue_entries: int
    qth: int

    def __call__(self, seed: int, subch: int, bank: int) -> BankTracker:
        return NaiveMirzaTracker(self.window, self.queue_entries,
                                 self.qth,
                                 rng=_bank_rng(seed, subch, bank))


@dataclass(frozen=True)
class _MirzaFactory:
    """Full MIRZA trackers for one (already scaled) configuration."""

    config: MirzaConfig
    mapping: str = "strided"

    def __call__(self, seed: int, subch: int, bank: int) -> BankTracker:
        geometry = DramGeometry()
        r2sa = (StridedR2SA(geometry) if self.mapping == "strided"
                else SequentialR2SA(geometry))
        return MirzaTracker(self.config, geometry, r2sa,
                            _bank_rng(seed, subch, bank))


@dataclass(frozen=True)
class _MistDrfmFactory:
    """MC-side DRFM engines (MIST-style sampling, Section X)."""

    sample_window: int
    acts_per_drfm: int
    min_samples: int = 1

    def __call__(self, seed: int, subch: int):
        from repro.mc.drfm import DrfmEngine
        rng = random.Random(seed * 7919 + subch * 31 + 5)
        return DrfmEngine(DramGeometry().banks_per_subchannel,
                          sample_window=self.sample_window,
                          acts_per_drfm=self.acts_per_drfm,
                          min_samples=self.min_samples, rng=rng)


# ----------------------------------------------------------------------
# Setup constructors
# ----------------------------------------------------------------------
def baseline_setup(mapping: str = "sequential") -> MitigationSetup:
    """The unprotected baseline system."""
    return MitigationSetup(name="baseline", mapping=mapping)


def prac_setup(trhd: int) -> MitigationSetup:
    """PRAC+ABO with the inflated Table I timings."""
    return MitigationSetup(name=f"prac-{trhd}",
                           tracker_factory=_PracFactory(trhd),
                           use_prac_timings=True,
                           extra={"trhd": trhd})


def mint_rfm_setup(trhd: int,
                   window: Optional[int] = None) -> MitigationSetup:
    """Proactive MINT paced by RFM every ``window`` activations."""
    if window is None:
        window = MINT_RFM_WINDOWS[trhd]
    return MitigationSetup(name=f"mint-rfm-{trhd}",
                           tracker_factory=_MintFactory(window),
                           rfm_bat=window,
                           extra={"trhd": trhd, "window": window})


def naive_mirza_setup(mint_window: int,
                      queue_entries: int = 4,
                      qth: int = 16) -> MitigationSetup:
    """MINT + ABO with a queue but no filtering (Section IV-A)."""
    return MitigationSetup(
        name=f"naive-mirza-w{mint_window}-q{queue_entries}",
        tracker_factory=_NaiveMirzaFactory(mint_window, queue_entries,
                                           qth),
        extra={"window": mint_window, "queue": queue_entries})


def mist_setup(trhd: int, sample_window: Optional[int] = None,
               acts_per_drfm: Optional[int] = None,
               min_samples: int = 1) -> MitigationSetup:
    """MC-side DRFM defence (MIST-style sampling, Section X).

    Defaults pace one DRFM per ``window`` channel activations with a
    per-bank MINT-style sample window sized like the MINT+RFM baseline
    for the same threshold.
    """
    window = (sample_window if sample_window is not None
              else MINT_RFM_WINDOWS[trhd])
    cadence = (acts_per_drfm if acts_per_drfm is not None
               else window * DramGeometry().banks_per_subchannel // 8)
    return MitigationSetup(
        name=f"mist-{trhd}",
        drfm_factory=_MistDrfmFactory(window, cadence, min_samples),
        extra={"trhd": trhd, "window": window})


def mirza_setup(trhd: int, scale: SimScale = SimScale(),
                config: Optional[MirzaConfig] = None,
                mapping: str = "strided") -> MitigationSetup:
    """The full MIRZA design at a Table VII operating point."""
    mirza_config = (config if config is not None
                    else MirzaConfig.paper_config(trhd))
    scaled = mirza_config.scaled(scale.time_scale)
    return MitigationSetup(name=f"mirza-{trhd}",
                           tracker_factory=_MirzaFactory(scaled,
                                                         mapping),
                           mapping=mapping,
                           extra={"trhd": trhd, "config": scaled})


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
_WORKLOAD_CACHE: "OrderedDict[Tuple, int]" = OrderedDict()
"""LRU map of (workload, scale, seed, config) -> calibrated
``compute_per_miss_ps``.  Only the calibrated *value* is cached, never
the :class:`SyntheticWorkload` object itself: every call gets a fresh
workload, so a caller mutating its copy can't corrupt later hits."""


def _workload_cache_cap() -> int:
    """Entry bound for the calibration cache (REPRO_WORKLOAD_CACHE).

    A malformed value warns once and falls back to the default instead
    of raising deep inside a sweep.
    """
    return _env.env_int("REPRO_WORKLOAD_CACHE", 64, minimum=1)


def _resolve(workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
    if isinstance(workload, str):
        return workload_by_name(workload)
    return workload


def calibrated_workload(workload: Union[str, WorkloadSpec],
                        scale: SimScale = SimScale(64),
                        seed: int = 0,
                        config: SystemConfig = SystemConfig()
                        ) -> SyntheticWorkload:
    """A :class:`SyntheticWorkload` whose pacing hits the Table IV rate.

    The open-loop pacing guess assumes a fixed loaded latency; queueing
    makes the realised activation rate drift from the target by up to
    ~2x.  This helper closes the loop: it runs short unprotected probe
    windows and adjusts the per-miss compute budget until the measured
    activations per bank per window are within 8% of the workload's
    published mean (cached per (workload, scale, seed, config)).  The
    whole procedure is deterministic, so worker processes converge on
    exactly the calibration the parent would have computed."""
    spec = _resolve(workload)
    key = (spec.name, scale.time_scale, seed, config)
    synthetic = SyntheticWorkload(spec, config, scale, seed=seed)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        _WORKLOAD_CACHE.move_to_end(key)
        synthetic.compute_per_miss_ps = cached
        return synthetic
    window = scale.scaled_trefw(config.timings)
    probe = max(config.timings.tREFI * 4, window // 8)
    target_acts = (scale.scale_count(spec.acts_per_bank_per_window)
                   * config.geometry.total_banks) * (probe / window)
    for _ in range(4):
        system = MultiCoreSystem(
            config, synthetic.trace_factory(), mlp=synthetic.mlp,
            refs_per_window=scale.scaled_refs_per_window(config.timings))
        result = system.run(probe)
        if result.total_requests == 0:
            break
        ratio = result.total_activations / max(1.0, target_acts)
        if 0.92 < ratio < 1.08:
            break
        # The realised inter-miss time is the compute budget plus the
        # (unknown) exposed memory time; shift the budget by the error.
        measured_inter = (probe * config.num_cores
                          / result.total_requests)
        wanted_inter = measured_inter * ratio
        synthetic.compute_per_miss_ps = max(
            250, int(synthetic.compute_per_miss_ps
                     + (wanted_inter - measured_inter)))
    _WORKLOAD_CACHE[key] = synthetic.compute_per_miss_ps
    while len(_WORKLOAD_CACHE) > _workload_cache_cap():
        _WORKLOAD_CACHE.popitem(last=False)
    return synthetic


def simulate(workload: Union[str, WorkloadSpec],
             setup: MitigationSetup,
             scale: SimScale = SimScale(64),
             seed: int = 0,
             config: SystemConfig = SystemConfig(),
             backend: Union[str, "KernelBackend", None] = None
             ) -> SimResult:
    """Simulate one scaled refresh window -- always fresh, never cached.

    This is the pure compute kernel underneath the session: a
    deterministic function of its arguments that both the in-process
    path and the process-pool workers call.  Use :func:`run_workload`
    (or a :class:`~repro.sim.session.SimSession`) unless you
    specifically need to bypass result caching.

    ``backend`` selects the kernel backend (see
    :mod:`repro.sim.backend`): a registered name (``"event"``,
    ``"array"``, or ``"vector"``), a
    :class:`~repro.sim.backend.KernelBackend` object, or ``None`` to
    defer to ``REPRO_KERNEL_BACKEND`` (default ``event``).  Backends
    are bit-identical by contract, so the choice never changes the
    result -- only how fast it is produced.  ``"vector"`` needs
    ``numpy>=1.24`` at run time and raises a clear ImportError when it
    is missing, too old, or disabled via ``REPRO_DISABLE_VECTOR``.

    When observability is requested (an installed registry/trace buffer
    or the ``REPRO_METRICS`` / ``REPRO_TRACE`` knobs), collection is
    scoped over system *construction and the run only* -- calibration
    probes are excluded -- and the snapshot/events are attached to the
    returned :class:`SimResult`.  Scoping after calibration is what
    keeps snapshots identical between serial and process-pool execution:
    a worker always calibrates fresh while a warm parent reuses the
    cached workload, so probe traffic must never be counted.
    """
    spec = _resolve(workload)
    # Calibration must run with the sinks *uninstalled*, not merely
    # outside the collecting scope in _run_kernel: probe systems would
    # otherwise prefetch the caller's registry and count their traffic
    # into it (only in-process -- pool workers calibrate with no
    # sink), which would break the serial/parallel snapshot identity.
    with _obs.suppressed():
        synthetic = calibrated_workload(spec, scale, seed, config)
    return simulate_source(synthetic, setup, scale, seed=seed,
                           config=config, backend=backend)


def simulate_source(source, setup: MitigationSetup,
                    scale: SimScale = SimScale(64),
                    seed: int = 0,
                    config: SystemConfig = SystemConfig(),
                    backend: Union[str, "KernelBackend", None] = None,
                    tenants=None) -> SimResult:
    """Simulate one window of an arbitrary ``WorkloadSource``.

    The source-agnostic half of :func:`simulate`: wires the system for
    ``setup`` around ``source`` (anything satisfying the
    :class:`~repro.workloads.WorkloadSource` seam -- calibrated
    synthetics, trace files, tenant compositions) and hands it to the
    kernel backend under the same observability scoping.  ``tenants``
    is the optional per-core tenant label list threaded into the
    system and back out on the result.
    """
    sys_config = (config.with_prac_timings() if setup.use_prac_timings
                  else config)
    tracker_factory = None
    if setup.tracker_factory is not None:
        tracker_factory = (  # noqa: E731
            lambda subch, bank: setup.tracker_factory(seed, subch, bank))
    drfm_factory = None
    if setup.drfm_factory is not None:
        drfm_factory = (  # noqa: E731
            lambda subch: setup.drfm_factory(seed, subch))

    def build() -> MultiCoreSystem:
        return MultiCoreSystem(
            sys_config,
            trace_factory=source.trace_factory(),
            tracker_factory=tracker_factory,
            mapping_factory=lambda: setup.make_mapping(sys_config),
            rfm_bat=setup.rfm_bat,
            refs_per_window=scale.scaled_refs_per_window(config.timings),
            mlp=source.mlp,
            drfm_factory=drfm_factory,
            tenants=tenants,
        )

    window = scale.scaled_trefw(config.timings)
    return _run_kernel(build, window, backend)


def _run_kernel(build: Callable[[], MultiCoreSystem], window: int,
                backend: Union[str, "KernelBackend", None]
                ) -> SimResult:
    """Resolve the backend and run ``build()`` over ``window``.

    The shared execution tail of every simulate entry point: when
    observability is requested, collection is scoped over system
    construction and the run only, and the snapshot/events/spans are
    attached to the result.
    """
    kernel = _backend.resolve_backend(backend)
    collect_metrics = _obs.metrics_requested()
    collect_trace = _obs.trace_requested()
    collect_spans = _obs.spans_requested()
    if not (collect_metrics or collect_trace or collect_spans):
        result = kernel.run(build(), window)
        result.backend = kernel.name
        return result
    with _obs.collecting(metrics=collect_metrics,
                         trace=collect_trace,
                         spans=collect_spans) as col:
        if col.spans is not None:
            with col.spans.span(_spans.TRACK_WORKER,
                                f"kernel:{kernel.name}",
                                {"pid": os.getpid()}) as attrs:
                result = kernel.run(build(), window)
                attrs["requests"] = result.total_requests
                attrs["activations"] = result.total_activations
        else:
            result = kernel.run(build(), window)
        reg = _metrics._ACTIVE
        if reg is not None:
            reg.counter(f"sim.backend.{kernel.name}").value += 1
    result.backend = kernel.name
    result.metrics = col.metrics_snapshot()
    result.trace_events = col.trace_events()
    result.spans = col.spans_list()
    return result


def synthesize_trace(workload: Union[str, WorkloadSpec],
                     scale: SimScale = SimScale(64),
                     seed: int = 0,
                     config: SystemConfig = SystemConfig(),
                     entries: Optional[int] = None):
    """A finite native trace sampled from a calibrated workload.

    Materialises roughly one window's worth of core-0 entries (or
    exactly ``entries`` of them) from the calibrated synthetic
    generator -- the repo's own stand-in for an externally recorded
    trace, used by the trace-calibration exhibit to close the loop
    ingestion -> replay -> Table IV check without shipping large
    fixtures.
    """
    from repro.cpu.trace import take
    spec = _resolve(workload)
    with _obs.suppressed():
        synthetic = calibrated_workload(spec, scale, seed, config)
    if entries is None:
        # Expected in-window misses across the machine: the per-bank
        # activation budget times banks, deflated by ACTs-per-miss.
        acts = (scale.scale_count(spec.acts_per_bank_per_window)
                * config.geometry.total_banks)
        entries = max(64, int(acts * spec.l3_mpki
                              / max(spec.act_pki, 1e-9)))
    return take(synthetic.trace(0), entries)


def simulate_trace(trace, setup: MitigationSetup,
                   scale: SimScale = SimScale(64),
                   seed: int = 0,
                   config: SystemConfig = SystemConfig(),
                   backend: Union[str, "KernelBackend", None] = None,
                   mlp: int = 8,
                   address_space=None) -> SimResult:
    """Replay an ingested trace through one simulated window.

    ``trace`` is a native trace path (``.gz``-aware), a list of
    :class:`~repro.cpu.trace.TraceEntry`, or a prebuilt
    :class:`~repro.workloads.tracefile.TraceFileWorkload`.  Paths and
    entry lists are wrapped in shard mode -- each core replays a
    contiguous slice -- so a converted trace's MPKI/ACT-PKI structure
    survives multi-core replay.  Coordinates are routed through
    ``address_space`` when given.
    """
    from repro.workloads.tracefile import TraceFileWorkload
    if isinstance(trace, TraceFileWorkload):
        source = trace
    else:
        source = TraceFileWorkload(
            trace, mlp=mlp, per_core="shard",
            address_space=address_space,
            geometry=config.geometry,
            shard_cores=config.num_cores)
    return simulate_source(source, setup, scale, seed=seed,
                           config=config, backend=backend)


def simulate_tenants(scenario, setup: MitigationSetup,
                     scale: SimScale = SimScale(64),
                     seed: int = 0,
                     config: SystemConfig = SystemConfig(),
                     backend: Union[str, "KernelBackend", None] = None
                     ) -> SimResult:
    """Simulate a multi-tenant scenario through one window.

    Victim tenants get *calibrated* synthetic sources (same closed
    loop as :func:`simulate`), attackers run their hammer kernels, and
    every tenant's stream is routed through its own address space.
    The result carries per-core tenant labels, so per-tenant IPC,
    slowdown, and escape exposure read straight off it.
    """
    from repro.workloads.tenants import TenantWorkload
    with _obs.suppressed():
        sources = {
            tenant.name: calibrated_workload(tenant.workload, scale,
                                             seed, config)
            for tenant in scenario.tenants if tenant.workload}
    workload = TenantWorkload(scenario, config, scale, seed=seed,
                              sources=sources)
    return simulate_source(
        workload, setup, scale, seed=seed, config=config,
        backend=backend,
        tenants=workload.tenant_labels(config.num_cores))


def run_workload(workload: Union[str, WorkloadSpec],
                 setup: MitigationSetup,
                 scale: SimScale = SimScale(64),
                 seed: int = 0,
                 config: SystemConfig = SystemConfig()) -> SimResult:
    """Simulate one scaled refresh window of ``workload`` under ``setup``.

    Routes through the default :class:`~repro.sim.session.SimSession`,
    so identical runs are served from the content-addressed result
    cache.  Setups built from the library factories cache and fan out;
    ad-hoc closure setups silently fall back to fresh in-process runs.
    """
    from repro.sim.session import SimJob, get_default_session
    return get_default_session().run(
        SimJob(workload, setup, scale, seed, config))


def run_baseline(workload: Union[str, WorkloadSpec],
                 scale: SimScale = SimScale(64),
                 seed: int = 0,
                 config: SystemConfig = SystemConfig()) -> SimResult:
    """Cached unprotected baseline for slowdown comparisons.

    The cache key is the session's content hash over (workload, scale,
    seed, *and every field of* ``config``) -- two different
    ``SystemConfig`` values never collide, unlike the historical
    ``id(type(config))`` key.
    """
    from repro.sim.session import SimJob, get_default_session
    return get_default_session().run(
        SimJob(workload, baseline_setup(), scale, seed, config))


def slowdown_for(workload: Union[str, WorkloadSpec],
                 setup: MitigationSetup,
                 scale: SimScale = SimScale(64),
                 seed: int = 0,
                 config: SystemConfig = SystemConfig()
                 ) -> Tuple[float, SimResult]:
    """(percent slowdown vs baseline, protected-run result)."""
    from repro.sim.session import SimJob, get_default_session
    return get_default_session().slowdown(
        SimJob(workload, setup, scale, seed, config))
