"""Simulation sessions: parallel fan-out + a persistent result cache.

A :class:`SimSession` is the execution substrate every sweep in this
repository runs on.  It owns two things:

1. **A content-addressed result cache.**  Every job (a
   :class:`SimJob`, or any registered job type such as the counting
   jobs in :mod:`repro.experiments.common`) is hashed into a stable
   token derived from the *values* of its workload spec, mitigation
   setup, scale, seed, and system configuration -- never from object
   identities.  Results are memoised in memory and, when enabled,
   serialized to JSON under a cache directory (``REPRO_CACHE_DIR`` or
   ``~/.cache/repro``), so repeated invocations of the report or the
   benchmarks skip work they have already done.

2. **A process-pool fan-out API.**  :meth:`SimSession.run_many`
   dispatches independent jobs to worker processes and merges the
   results back in submission order.  Every job is a pure function of
   its content (traces are freshly seeded per run), so parallel output
   is byte-identical to a serial run.

The legacy entry points (:func:`repro.sim.runner.run_workload`,
``run_baseline``, ``slowdown_for``) are thin wrappers over a default
session; :func:`using_session` scopes a differently-configured session
(e.g. the CLI's ``--jobs``/``--cache-dir`` one) over a region of code.

Example::

    from repro.sim import SimJob, SimSession, mirza_setup
    from repro.params import SimScale

    session = SimSession(max_workers=4)
    scale = SimScale(512)
    jobs = [SimJob("tc", mirza_setup(trhd, scale), scale)
            for trhd in (500, 1000, 2000)]
    for slowdown, result in session.slowdowns(jobs):
        print(slowdown, result.alerts_per_100_trefi())
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro import _profile
from repro.cpu.system import SimResult
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.params import (
    AboTimings,
    DramGeometry,
    DramTimings,
    MitigationCosts,
    SimScale,
    SystemConfig,
)
from repro.workloads.specs import WorkloadSpec, workload_by_name

CACHE_FORMAT = 2
"""Bump when job hashing or result serialization changes shape.

Format 2: :class:`SimResult` grew optional ``metrics`` and
``trace_events`` fields (PR 3's observability subsystem).
"""

_MISS = object()
"""Internal sentinel distinguishing 'no cached value' from any result."""


@dataclasses.dataclass
class BatchStats:
    """Plan-level dedup statistics for one :meth:`SimSession.run_many`.

    ``submitted`` counts the jobs handed to the batch, ``unique`` the
    distinct content tokens among them (plus any untokened jobs, which
    can never deduplicate), ``cache_hits`` the submitted jobs served
    from a pre-batch cache, and ``computed`` the jobs actually
    executed.  ``deduplicated`` is the work the batch *planned away*:
    jobs whose content another job in the same batch already covers.
    """

    submitted: int = 0
    unique: int = 0
    cache_hits: int = 0
    computed: int = 0

    @property
    def deduplicated(self) -> int:
        return self.submitted - self.unique


def _observability_satisfied(result: Any) -> bool:
    """True unless ``result`` lacks observability data being requested.

    A :class:`SimResult` cached before metrics/tracing were turned on
    carries ``None`` in those fields; serving it would silently drop
    the requested data, so the lookup treats it as a miss and the job
    recomputes (overwriting the cache entry with a complete one).
    """
    if not isinstance(result, SimResult):
        return True
    if _obs_metrics.requested() and result.metrics is None:
        return False
    if _obs_trace.requested() and result.trace_events is None:
        return False
    return True


class Undescribable(TypeError):
    """Raised when a job holds state with no canonical description.

    Typical cause: a :class:`~repro.sim.runner.MitigationSetup` built
    around an ad-hoc closure instead of the library's picklable factory
    objects.  Such jobs still *run* -- they are simply executed fresh,
    in-process, and never cached.
    """


def describe(obj: Any) -> Any:
    """Canonical JSON-able description of a job component.

    Dataclasses map to ``{"__class__": name, field: value, ...}`` over
    their *comparison* fields (``compare=False`` fields, like
    ``MitigationSetup.extra``, are deliberately excluded); containers
    and primitives map to themselves.  Anything else -- closures, open
    files, arbitrary objects -- raises :class:`Undescribable`.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        description: Dict[str, Any] = {
            "__class__": type(obj).__qualname__}
        for field in dataclasses.fields(obj):
            if not field.compare:
                continue
            description[field.name] = describe(getattr(obj, field.name))
        return description
    if isinstance(obj, (list, tuple)):
        return [describe(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): describe(obj[key])
                for key in sorted(obj, key=str)}
    raise Undescribable(f"no canonical description for {obj!r}")


def job_token(job: Any) -> Optional[str]:
    """Stable content hash of a job, or ``None`` if it has none.

    The token is a SHA-256 over the canonical JSON description plus the
    cache format version: equal-valued jobs built independently hash
    identically, and *any* differing field -- including individual
    ``SystemConfig`` values, which the old ``run_baseline`` key
    (``id(type(config))``) conflated -- yields a different token.
    """
    try:
        payload = {"format": CACHE_FORMAT, "job": describe(job)}
    except Undescribable:
        return None
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Jobs and result codecs
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SimJob:
    """One independent (workload, mitigation, scale, seed, config) run."""

    workload: Union[str, WorkloadSpec]
    setup: Any  # a repro.sim.runner.MitigationSetup
    scale: SimScale = SimScale(64)
    seed: int = 0
    config: SystemConfig = SystemConfig()

    def resolved(self) -> "SimJob":
        """The same job with a workload *name* resolved to its spec."""
        if isinstance(self.workload, str):
            return dataclasses.replace(
                self, workload=workload_by_name(self.workload))
        return self

    def execute(self) -> SimResult:
        """Run the simulation, uncached (the worker-process path)."""
        from repro.sim.runner import simulate
        return simulate(self.workload, self.setup, self.scale,
                        self.seed, self.config)


_CODECS: Dict[type, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] \
    = {}


def register_job_type(job_type: type,
                      encode: Callable[[Any], Any],
                      decode: Callable[[Any], Any]) -> None:
    """Register the disk-cache codec for one job class's results.

    ``encode`` maps a result to a JSON-able payload; ``decode`` inverts
    it.  Job types without a codec still run and memoise in memory --
    they just never persist to disk.
    """
    _CODECS[job_type] = (encode, decode)


def _system_config_from(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``asdict`` payload."""
    kwargs = dict(data)
    kwargs["timings"] = DramTimings(**kwargs["timings"])
    kwargs["abo"] = AboTimings(**kwargs["abo"])
    kwargs["geometry"] = DramGeometry(**kwargs["geometry"])
    kwargs["costs"] = MitigationCosts(**kwargs["costs"])
    return SystemConfig(**kwargs)


def encode_sim_result(result: SimResult) -> Dict[str, Any]:
    """Serialize a :class:`SimResult` to a JSON-able dict."""
    return dataclasses.asdict(result)


def decode_sim_result(payload: Dict[str, Any]) -> SimResult:
    """Inverse of :func:`encode_sim_result` (floats round-trip exactly)."""
    data = dict(payload)
    data["config"] = _system_config_from(data["config"])
    return SimResult(**data)


register_job_type(SimJob, encode_sim_result, decode_sim_result)


def _execute(job: Any) -> Any:
    """Process-pool entry point: run one job, return its result."""
    return job.execute()


def _pool_env_overrides() -> Dict[str, str]:
    """Env vars that carry the parent's observability requests to
    workers.

    A parent that enabled collection *programmatically* (an installed
    registry/buffer rather than an env knob) would otherwise fan out to
    workers that collect nothing.
    """
    env: Dict[str, str] = {}
    if _obs_metrics.requested():
        env["REPRO_METRICS"] = "1"
    if _obs_trace.requested():
        env["REPRO_TRACE"] = "1"
        buffer = _obs_trace._ACTIVE
        if buffer is not None:
            env["REPRO_TRACE_LIMIT"] = str(buffer.limit)
    return env


def _execute_job(payload: Tuple[Any, Dict[str, str], bool]
                 ) -> Tuple[Any, Optional[dict]]:
    """Pool entry point carrying observability/profiling context.

    Returns ``(result, profile_dict)`` where ``profile_dict`` is the
    worker-side :class:`~repro._profile.KernelProfile` in dict form
    (``None`` unless the parent asked for profiling).
    """
    job, env, want_profile = payload
    for key, value in env.items():
        os.environ[key] = value
    if not want_profile:
        return job.execute(), None
    with _profile.profiling() as prof:
        result = job.execute()
    return result, prof.to_dict()


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
def default_cache_dir() -> str:
    """The on-disk cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class SimSession:
    """Owns result caching and parallel fan-out for simulation jobs.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent JSON result cache.  ``None``
        resolves ``REPRO_CACHE_DIR`` and then ``~/.cache/repro``.
    disk_cache:
        ``True``/``False`` force the on-disk cache on or off; ``None``
        (the library default) enables it only when a ``cache_dir`` was
        given explicitly or ``REPRO_CACHE_DIR`` is set, so plain
        library use stays memory-only.
    max_workers:
        Default process fan-out for :meth:`run_many`.  ``None`` falls
        back to the ``REPRO_JOBS`` environment variable, then to 1
        (serial).  Parallel runs produce byte-identical results to
        serial ones; the knob only trades wall-clock for cores.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 disk_cache: Optional[bool] = None,
                 max_workers: Optional[int] = None) -> None:
        if disk_cache is None:
            disk_cache = (cache_dir is not None
                          or bool(os.environ.get("REPRO_CACHE_DIR")))
        self.cache_dir = str(cache_dir) if cache_dir \
            else default_cache_dir()
        self.disk_cache = bool(disk_cache)
        self.max_workers = max_workers
        self._memory: Dict[str, Any] = {}
        self.stats: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0,
            "planned": 0, "unique": 0, "baseline_dedup": 0}
        self.last_batch: Optional[BatchStats] = None

    # -- public API ----------------------------------------------------
    def run(self, job: Any) -> Any:
        """Run (or fetch from cache) a single job."""
        return self.run_many([job])[0]

    def run_many(self, jobs: Iterable[Any],
                 max_workers: Optional[int] = None) -> List[Any]:
        """Run a batch of independent jobs; results in submission order.

        Cache hits are served without computing; distinct jobs with
        identical content are computed once.  With more than one worker
        the cache misses fan out over a ``ProcessPoolExecutor``; the
        merged output is identical to a serial run because every job is
        a pure function of its content.
        """
        jobs = [job.resolved() if hasattr(job, "resolved") else job
                for job in jobs]
        tokens = [job_token(job) for job in jobs]
        results: List[Any] = [_MISS] * len(jobs)
        pending: Dict[str, Any] = {}
        untokened: List[int] = []
        seen_tokens = set()
        hits = 0
        for index, (job, token) in enumerate(zip(jobs, tokens)):
            if token is None:
                untokened.append(index)
                continue
            seen_tokens.add(token)
            hit = self._lookup(token, type(job))
            if hit is not _MISS:
                results[index] = hit
                hits += 1
            elif token not in pending:
                pending[token] = job
        unique = list(pending.items())
        workers = self._effective_workers(max_workers, len(unique))
        if workers > 1 and len(unique) > 1:
            env = _pool_env_overrides()
            want_profile = _profile._ACTIVE is not None
            payloads = [(job, env, want_profile) for _, job in unique]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = []
                for result, prof_dict in pool.map(_execute_job,
                                                  payloads):
                    if prof_dict is not None \
                            and _profile._ACTIVE is not None:
                        _profile._ACTIVE.merge(prof_dict)
                    # A worker's collection scope merged into *its*
                    # process's sinks; fold the shipped snapshot/events
                    # into the parent's so pooled runs aggregate exactly
                    # like serial in-process ones.
                    self._absorb_observability(result)
                    computed.append(result)
        else:
            computed = [job.execute() for _, job in unique]
        self.stats["misses"] += len(unique) + len(untokened)
        self.last_batch = BatchStats(
            submitted=len(jobs),
            unique=len(seen_tokens) + len(untokened),
            cache_hits=hits,
            computed=len(unique) + len(untokened))
        self.stats["planned"] += self.last_batch.submitted
        self.stats["unique"] += self.last_batch.unique
        for (token, job), result in zip(unique, computed):
            self._store(token, type(job), result)
        for index, token in enumerate(tokens):
            if results[index] is _MISS and token is not None:
                results[index] = self._memory[token]
        for index in untokened:
            results[index] = jobs[index].execute()
        return results

    def slowdown(self, job: SimJob) -> Tuple[float, SimResult]:
        """(percent slowdown vs unprotected baseline, protected run)."""
        return self.slowdowns([job])[0]

    def slowdowns(self, jobs: Iterable[SimJob],
                  max_workers: Optional[int] = None
                  ) -> List[Tuple[float, SimResult]]:
        """Batched :meth:`slowdown`: one fan-out for the whole sweep.

        The matching unprotected baseline jobs are derived, deduplicated
        *before submission* (each distinct (workload, scale, seed,
        config) baseline is planned once per batch no matter how many
        protected jobs reference it -- the removed duplicates are
        tallied in ``stats["baseline_dedup"]``), and executed in the
        same process-pool batch as the protected runs.
        """
        from repro.sim.runner import baseline_setup
        jobs = [job.resolved() for job in jobs]
        setup = baseline_setup()
        baselines: List[SimJob] = []
        baseline_of: List[int] = []
        seen: Dict[str, int] = {}
        for job in jobs:
            baseline = dataclasses.replace(job, setup=setup)
            token = job_token(baseline)
            index = seen.get(token) if token is not None else None
            if index is None:
                index = len(baselines)
                baselines.append(baseline)
                if token is not None:
                    seen[token] = index
            baseline_of.append(index)
        self.stats["baseline_dedup"] += len(jobs) - len(baselines)
        results = self.run_many(baselines + jobs,
                                max_workers=max_workers)
        count = len(baselines)
        return [(protected.slowdown_pct(results[baseline_of[i]]),
                 protected)
                for i, protected in enumerate(results[count:])]

    def clear(self, memory: bool = True, disk: bool = False) -> None:
        """Drop cached results (the in-memory map, optionally disk)."""
        if memory:
            self._memory.clear()
        if disk and self.disk_cache and os.path.isdir(self.cache_dir):
            for shard in os.listdir(self.cache_dir):
                shard_dir = os.path.join(self.cache_dir, shard)
                if len(shard) != 2 or not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if name.endswith(".json"):
                        try:
                            os.unlink(os.path.join(shard_dir, name))
                        except OSError:
                            pass

    # -- internals -----------------------------------------------------
    def _effective_workers(self, override: Optional[int],
                           pending_count: int) -> int:
        """Resolve the worker count: arg > session > REPRO_JOBS > 1."""
        workers = override if override is not None else self.max_workers
        if workers is None:
            workers = int(os.environ.get("REPRO_JOBS", "1") or "1")
        return max(1, min(int(workers), max(1, pending_count)))

    def _lookup(self, token: str, job_type: type) -> Any:
        """Memory then disk lookup; returns ``_MISS`` when absent."""
        if token in self._memory:
            result = self._memory[token]
            if not _observability_satisfied(result):
                return _MISS  # cached without the requested metrics
            self.stats["memory_hits"] += 1
            return result
        if self.disk_cache and job_type in _CODECS:
            payload = self._disk_read(token)
            if payload is not None:
                try:
                    result = _CODECS[job_type][1](payload)
                except (TypeError, ValueError, KeyError):
                    return _MISS  # stale/corrupt entry: recompute
                if not _observability_satisfied(result):
                    return _MISS
                self.stats["disk_hits"] += 1
                self._memory[token] = result
                return result
        return _MISS

    @staticmethod
    def _absorb_observability(result: Any) -> None:
        """Fold a pool result's snapshot/events into the parent sinks."""
        if not isinstance(result, SimResult):
            return
        registry = _obs_metrics._ACTIVE
        if registry is not None and result.metrics:
            registry.merge_snapshot(result.metrics)
        buffer = _obs_trace._ACTIVE
        if buffer is not None and result.trace_events:
            buffer.extend(result.trace_events)

    def _store(self, token: str, job_type: type, result: Any) -> None:
        """Memoise a freshly-computed result (and persist if enabled)."""
        self._memory[token] = result
        if self.disk_cache and job_type in _CODECS:
            self._disk_write(token, _CODECS[job_type][0](result))

    def _entry_path(self, token: str) -> str:
        """Sharded cache path for one token."""
        return os.path.join(self.cache_dir, token[:2], token + ".json")

    def _disk_read(self, token: str) -> Optional[Any]:
        """Load one cache entry's payload, or ``None`` on any failure."""
        try:
            with open(self._entry_path(token), "r") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != CACHE_FORMAT:
            return None
        return entry.get("result")

    def _disk_write(self, token: str, payload: Any) -> None:
        """Atomically persist one cache entry (best-effort)."""
        path = self._entry_path(token)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump({"format": CACHE_FORMAT, "result": payload},
                          handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ----------------------------------------------------------------------
# The default session
# ----------------------------------------------------------------------
_DEFAULT_SESSION: Optional[SimSession] = None


def get_default_session() -> SimSession:
    """The process-wide session behind the legacy ``run_*`` wrappers."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = SimSession()
    return _DEFAULT_SESSION


def set_default_session(session: Optional[SimSession]
                        ) -> Optional[SimSession]:
    """Install ``session`` as the default; returns the previous one."""
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


@contextmanager
def using_session(session: SimSession):
    """Scope ``session`` as the default over a ``with`` block."""
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)
