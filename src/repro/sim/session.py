"""Simulation sessions: parallel fan-out + a persistent result cache.

A :class:`SimSession` is the execution substrate every sweep in this
repository runs on.  It owns two things:

1. **A content-addressed result cache.**  Every job (a
   :class:`SimJob`, or any registered job type such as the counting
   jobs in :mod:`repro.experiments.common`) is hashed into a stable
   token derived from the *values* of its workload spec, mitigation
   setup, scale, seed, and system configuration -- never from object
   identities.  Results are memoised in memory and, when enabled,
   serialized to JSON under a cache directory (``REPRO_CACHE_DIR`` or
   ``~/.cache/repro``), so repeated invocations of the report or the
   benchmarks skip work they have already done.

2. **A fault-tolerant process-pool fan-out API.**
   :meth:`SimSession.run_many` submits independent jobs to worker
   processes as individual futures and merges the results back in
   submission order.  Every job is a pure function of its content
   (traces are freshly seeded per run), so parallel output is
   byte-identical to a serial run -- and a *retried* job re-executes
   the same pure content, so bounded retries never change results.
   Completed results are stored (memory + disk) as they finish, a
   crashed worker pool is rebuilt (falling back to serial in-process
   execution if it keeps breaking), and a :class:`FailurePolicy`
   decides whether a permanently-failed job raises (:obj:`FAIL_FAST`,
   the library default) or yields a typed :class:`JobFailure` record
   in its result slot (:obj:`KEEP_GOING`, what ``python -m repro
   report`` uses so one poisoned cell degrades a report instead of
   destroying it).

The legacy entry points (:func:`repro.sim.runner.run_workload`,
``run_baseline``, ``slowdown_for``) are thin wrappers over a default
session; :func:`using_session` scopes a differently-configured session
(e.g. the CLI's ``--jobs``/``--cache-dir`` one) over a region of code.

Example::

    from repro.sim import SimJob, SimSession, mirza_setup
    from repro.params import SimScale

    session = SimSession(max_workers=4)
    scale = SimScale(512)
    jobs = [SimJob("tc", mirza_setup(trhd, scale), scale)
            for trhd in (500, 1000, 2000)]
    for slowdown, result in session.slowdowns(jobs):
        print(slowdown, result.alerts_per_100_trefi())
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import warnings
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from time import perf_counter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro import _profile
from repro._env import env_float, env_int
from repro.cpu.system import SimResult
from repro.sim import backend as _backend_mod
from repro.obs import metrics as _obs_metrics
from repro.obs import spans as _obs_spans
from repro.obs import trace as _obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressUpdate
from repro.params import (
    AboTimings,
    DramGeometry,
    DramTimings,
    MitigationCosts,
    SimScale,
    SystemConfig,
)
from repro.workloads.specs import WorkloadSpec, workload_by_name

CACHE_FORMAT = 4
"""Bump when job hashing or result serialization changes shape.

Format 2: :class:`SimResult` grew optional ``metrics`` and
``trace_events`` fields (PR 3's observability subsystem).
Format 3: :class:`SimResult` grew the optional ``spans`` field
(session-level span tracing).
Format 4: :class:`SimResult` grew optional ``tenants`` and
``unmitigated_by_bank`` fields; :class:`TenantJob` and
:class:`TraceReplayJob` joined the cacheable job types.
:class:`repro.security.fuzz.FuzzJob` later joined the cacheable job
types under the same format -- a new job class mints new tokens, so
no bump was needed.
"""

_MISS = object()
"""Internal sentinel distinguishing 'no cached value' from any result."""


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
class FailurePolicy(enum.Enum):
    """What :meth:`SimSession.run_many` does with a permanent failure.

    ``FAIL_FAST`` (the library default) finishes harvesting the batch
    -- storing every completed sibling result in the cache first, so a
    rerun resumes from where this one died -- and then raises
    :class:`JobFailed` for the first failed job.  ``KEEP_GOING``
    returns a typed :class:`JobFailure` record in the failed job's
    result slot instead, which is how the report renders every
    unaffected exhibit and merely flags the degraded one.
    """

    FAIL_FAST = "fail_fast"
    KEEP_GOING = "keep_going"

    @classmethod
    def coerce(cls, value: Union["FailurePolicy", str, None],
               default: "FailurePolicy") -> "FailurePolicy":
        """Accept a policy, its string value, or ``None`` (default)."""
        if value is None:
            return default
        if isinstance(value, cls):
            return value
        return cls(str(value).strip().lower().replace("-", "_"))


@dataclasses.dataclass(frozen=True)
class JobFailure:
    """A permanently-failed job, as a value instead of an exception.

    Under :obj:`FailurePolicy.KEEP_GOING` this record occupies the
    failed job's slot in :meth:`SimSession.run_many`'s result list; use
    :func:`is_failure` (or ``isinstance``) to tell it from a result.
    ``attempts`` counts executions including retries, and ``timed_out``
    marks a job that exceeded the per-job timeout rather than raising.
    """

    job: Any = dataclasses.field(compare=False)
    token: Optional[str]
    error_type: str
    message: str
    attempts: int
    timed_out: bool = False

    def describe(self) -> str:
        """One-line human-readable account of the failure."""
        kind = "timed out" if self.timed_out else "failed"
        return (f"{type(self.job).__name__} {kind} after "
                f"{self.attempts} attempt(s): "
                f"{self.error_type}: {self.message}")


class JobFailed(RuntimeError):
    """Raised by ``FAIL_FAST`` batches; carries the :class:`JobFailure`."""

    def __init__(self, failure: JobFailure) -> None:
        super().__init__(failure.describe())
        self.failure = failure


def is_failure(result: Any) -> bool:
    """True when a result slot holds a :class:`JobFailure` record."""
    return isinstance(result, JobFailure)


class InjectedFault(RuntimeError):
    """The deterministic test-only fault raised by ``REPRO_FAULT_RATE``."""


def fault_roll(job: Any) -> float:
    """Deterministic uniform [0, 1) roll for one job's injected fault.

    Derived from the job's content token (or ``repr`` for untokened
    jobs) and ``REPRO_FAULT_SEED``, so the same batch faults the same
    jobs in every process and on every rerun.
    """
    token = job_token(job) or repr(job)
    seed = os.environ.get("REPRO_FAULT_SEED", "0")
    digest = hashlib.sha256(
        f"fault:{seed}:{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _maybe_inject_fault(job: Any, attempt: int) -> None:
    """Test-only hook: fail a job's *first* attempt deterministically.

    ``REPRO_FAULT_RATE=p`` makes a content-hash-selected fraction ``p``
    of jobs raise :class:`InjectedFault` on attempt 0.  Faults are
    transient by construction (retries always heal), so
    ``--max-retries 0`` is what makes them permanent -- the CI smoke
    job uses exactly that to exercise the DEGRADED report path.
    """
    rate = env_float("REPRO_FAULT_RATE", 0.0)
    if rate <= 0.0 or attempt > 0:
        return
    if fault_roll(job) < rate:
        raise InjectedFault(
            f"injected fault (REPRO_FAULT_RATE={rate}) for "
            f"{type(job).__name__}")


@dataclasses.dataclass
class BatchStats:
    """Plan-level statistics for one :meth:`SimSession.run_many`.

    ``submitted`` counts the jobs handed to the batch, ``unique`` the
    distinct content tokens among them (plus any untokened jobs, which
    can never deduplicate), ``cache_hits`` the submitted jobs served
    from a pre-batch cache, and ``computed`` the jobs that executed to
    completion.  ``deduplicated`` is the work the batch *planned
    away*: jobs whose content another job in the same batch already
    covers.  The failure triple: ``failed`` counts jobs that ended as
    :class:`JobFailure` records, ``retried`` the extra executions
    spent on retries, and ``timed_out`` the per-job timeout expiries
    (each of which also consumed an attempt).
    """

    submitted: int = 0
    unique: int = 0
    cache_hits: int = 0
    computed: int = 0
    failed: int = 0
    retried: int = 0
    timed_out: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0

    @property
    def deduplicated(self) -> int:
        return self.submitted - self.unique

    @property
    def hit_rate(self) -> float:
        """Fraction of submitted jobs served from a pre-batch cache."""
        return self.cache_hits / self.submitted if self.submitted \
            else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of the worker-seconds budget spent executing.

        ``busy_seconds`` sums per-job execution time wherever the job
        ran; the budget is ``workers * wall_seconds``.  Low values on a
        wide pool mean the batch was starved (cache hits, dedup) or
        serialized (queue stalls, rebuilds).
        """
        budget = self.workers * self.wall_seconds
        return min(1.0, self.busy_seconds / budget) if budget > 0 \
            else 0.0


def _observability_satisfied(result: Any) -> bool:
    """True unless ``result`` lacks observability data being requested.

    A :class:`SimResult` cached before metrics/tracing were turned on
    carries ``None`` in those fields; serving it would silently drop
    the requested data, so the lookup treats it as a miss and the job
    recomputes (overwriting the cache entry with a complete one).
    """
    if not isinstance(result, SimResult):
        return True
    if _obs_metrics.requested() and result.metrics is None:
        return False
    if _obs_trace.requested() and result.trace_events is None:
        return False
    if _obs_spans.requested() and result.spans is None:
        return False
    return True


class Undescribable(TypeError):
    """Raised when a job holds state with no canonical description.

    Typical cause: a :class:`~repro.sim.runner.MitigationSetup` built
    around an ad-hoc closure instead of the library's picklable factory
    objects.  Such jobs still *run* -- they are simply executed fresh,
    in-process, and never cached.
    """


def describe(obj: Any) -> Any:
    """Canonical JSON-able description of a job component.

    Dataclasses map to ``{"__class__": name, field: value, ...}`` over
    their *comparison* fields (``compare=False`` fields, like
    ``MitigationSetup.extra``, are deliberately excluded); containers
    and primitives map to themselves.  Anything else -- closures, open
    files, arbitrary objects -- raises :class:`Undescribable`.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        description: Dict[str, Any] = {
            "__class__": type(obj).__qualname__}
        for field in dataclasses.fields(obj):
            if not field.compare:
                continue
            description[field.name] = describe(getattr(obj, field.name))
        return description
    if isinstance(obj, (list, tuple)):
        return [describe(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): describe(obj[key])
                for key in sorted(obj, key=str)}
    raise Undescribable(f"no canonical description for {obj!r}")


def job_label(job: Any) -> str:
    """Short human-readable label for one job (span names, progress).

    ``SimJob``-shaped jobs render as ``workload/setup``; anything else
    falls back to the class name plus a token prefix, so two distinct
    ad-hoc jobs never share a label by accident.
    """
    workload = getattr(job, "workload", None)
    name = workload if isinstance(workload, str) \
        else getattr(workload, "name", None)
    setup = getattr(getattr(job, "setup", None), "name", None)
    if name and setup:
        return f"{name}/{setup}"
    token = job_token(job)
    if token:
        return f"{type(job).__name__}:{token[:10]}"
    return type(job).__name__


def job_token(job: Any) -> Optional[str]:
    """Stable content hash of a job, or ``None`` if it has none.

    The token is a SHA-256 over the canonical JSON description plus the
    cache format version: equal-valued jobs built independently hash
    identically, and *any* differing field -- including individual
    ``SystemConfig`` values, which the old ``run_baseline`` key
    (``id(type(config))``) conflated -- yields a different token.
    """
    try:
        payload = {"format": CACHE_FORMAT, "job": describe(job)}
    except Undescribable:
        return None
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Jobs and result codecs
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SimJob:
    """One independent (workload, mitigation, scale, seed, config) run."""

    workload: Union[str, WorkloadSpec]
    setup: Any  # a repro.sim.runner.MitigationSetup
    scale: SimScale = SimScale(64)
    seed: int = 0
    config: SystemConfig = SystemConfig()

    def resolved(self) -> "SimJob":
        """The same job with a workload *name* resolved to its spec."""
        if isinstance(self.workload, str):
            return dataclasses.replace(
                self, workload=workload_by_name(self.workload))
        return self

    def execute(self) -> SimResult:
        """Run the simulation, uncached (the worker-process path)."""
        from repro.sim.runner import simulate
        return simulate(self.workload, self.setup, self.scale,
                        self.seed, self.config)


_CODECS: Dict[type, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] \
    = {}


def register_job_type(job_type: type,
                      encode: Callable[[Any], Any],
                      decode: Callable[[Any], Any]) -> None:
    """Register the disk-cache codec for one job class's results.

    ``encode`` maps a result to a JSON-able payload; ``decode`` inverts
    it.  Job types without a codec still run and memoise in memory --
    they just never persist to disk.
    """
    _CODECS[job_type] = (encode, decode)


def _system_config_from(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from its ``asdict`` payload."""
    kwargs = dict(data)
    kwargs["timings"] = DramTimings(**kwargs["timings"])
    kwargs["abo"] = AboTimings(**kwargs["abo"])
    kwargs["geometry"] = DramGeometry(**kwargs["geometry"])
    kwargs["costs"] = MitigationCosts(**kwargs["costs"])
    return SystemConfig(**kwargs)


def encode_sim_result(result: SimResult) -> Dict[str, Any]:
    """Serialize a :class:`SimResult` to a JSON-able dict."""
    return dataclasses.asdict(result)


def decode_sim_result(payload: Dict[str, Any]) -> SimResult:
    """Inverse of :func:`encode_sim_result` (floats round-trip exactly)."""
    data = dict(payload)
    data["config"] = _system_config_from(data["config"])
    return SimResult(**data)


@dataclasses.dataclass(frozen=True)
class TenantJob:
    """One multi-tenant scenario run (see ``repro.workloads.tenants``).

    ``scenario`` is a :class:`~repro.workloads.tenants.TenantScenario`
    -- typed ``Any`` so this module never imports the workloads
    package (which would cycle through ``repro.workloads.tenants``);
    it is a frozen dataclass tree, so :func:`describe` hashes it by
    content like any other job field.
    """

    scenario: Any  # a repro.workloads.tenants.TenantScenario
    setup: Any  # a repro.sim.runner.MitigationSetup
    scale: SimScale = SimScale(64)
    seed: int = 0
    config: SystemConfig = SystemConfig()

    @property
    def workload(self) -> str:
        """Scenario label, so :func:`job_label` renders
        ``scenario/setup``."""
        return self.scenario.label()

    def execute(self) -> SimResult:
        """Run the scenario, uncached (the worker-process path)."""
        from repro.sim.runner import simulate_tenants
        return simulate_tenants(self.scenario, self.setup, self.scale,
                                self.seed, self.config)


@dataclasses.dataclass(frozen=True)
class TraceReplayJob:
    """One ingested-trace replay run.

    ``trace_path`` names a native trace to replay (sharded across the
    cores; see :func:`repro.sim.runner.simulate_trace`).  When it is
    ``None``, a trace is synthesized from the calibrated ``workload``
    generator instead -- the self-contained mode the trace-calibration
    exhibit uses.  ``content_digest`` folds the file's bytes into the
    cache token so editing a trace in place never serves stale
    results; build path-based jobs with :meth:`for_path`.
    """

    trace_path: Optional[str]
    workload: Optional[str]
    setup: Any  # a repro.sim.runner.MitigationSetup
    scale: SimScale = SimScale(64)
    seed: int = 0
    config: SystemConfig = SystemConfig()
    mlp: int = 8
    content_digest: Optional[str] = None

    @classmethod
    def for_path(cls, trace_path: str, setup: Any,
                 scale: SimScale = SimScale(64), seed: int = 0,
                 config: SystemConfig = SystemConfig(),
                 mlp: int = 8,
                 workload: Optional[str] = None) -> "TraceReplayJob":
        """A replay job for a trace file, digest and metadata filled.

        Reads the ``# workload:`` metadata claim (unless overridden)
        and hashes the file content into the job identity.
        """
        from repro.workloads.tracefile import trace_metadata
        if workload is None:
            workload = trace_metadata(trace_path).get("workload")
        digest = hashlib.sha256()
        with open(trace_path, "rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        return cls(trace_path=trace_path, workload=workload,
                   setup=setup, scale=scale, seed=seed, config=config,
                   mlp=mlp, content_digest=digest.hexdigest())

    def execute(self) -> SimResult:
        """Replay the trace, uncached (the worker-process path)."""
        from repro.sim.runner import simulate_trace, synthesize_trace
        if self.trace_path is not None:
            trace = self.trace_path
        else:
            if self.workload is None:
                raise ValueError(
                    "TraceReplayJob needs a trace_path or a workload "
                    "to synthesize from")
            trace = synthesize_trace(self.workload, self.scale,
                                     self.seed, self.config)
        return simulate_trace(trace, self.setup, self.scale,
                              self.seed, self.config, mlp=self.mlp)


register_job_type(SimJob, encode_sim_result, decode_sim_result)
register_job_type(TenantJob, encode_sim_result, decode_sim_result)
register_job_type(TraceReplayJob, encode_sim_result, decode_sim_result)


def _execute(job: Any) -> Any:
    """Process-pool entry point: run one job, return its result."""
    return job.execute()


_FAULT_ENV_VARS = ("REPRO_FAULT_RATE", "REPRO_FAULT_SEED")


def _pool_env_overrides() -> Dict[str, str]:
    """Env vars that carry the parent's observability and
    fault-injection requests to workers.

    A parent that enabled collection *programmatically* (an installed
    registry/buffer rather than an env knob) would otherwise fan out to
    workers that collect nothing, and a spawn-start pool would miss
    env vars set after interpreter start.
    """
    env: Dict[str, str] = {}
    if _obs_metrics.requested():
        env["REPRO_METRICS"] = "1"
    if _obs_trace.requested():
        env["REPRO_TRACE"] = "1"
        buffer = _obs_trace._ACTIVE
        if buffer is not None:
            env["REPRO_TRACE_LIMIT"] = str(buffer.limit)
    if _obs_spans.requested():
        env["REPRO_SPANS"] = "1"
        recorder = _obs_spans._ACTIVE
        if recorder is not None:
            env["REPRO_SPAN_LIMIT"] = str(recorder.limit)
    for var in _FAULT_ENV_VARS:
        value = os.environ.get(var)
        if value:
            env[var] = value
    # Kernel backend selection follows the same route: workers must run
    # the same (bit-identical) kernel the parent would have, both so
    # timing expectations hold and so serial/pool runs stay
    # interchangeable in benchmarks.
    backend = os.environ.get(_backend_mod.ENV_VAR)
    if backend:
        env[_backend_mod.ENV_VAR] = backend
    return env


def _execute_job(payload: Tuple[Any, Dict[str, str], bool, int]
                 ) -> Tuple[Any, Optional[dict], float]:
    """Pool entry point carrying observability/profiling context.

    ``payload`` is ``(job, env overrides, want_profile, attempt)``;
    the attempt number feeds the deterministic fault-injection hook.
    Returns ``(result, profile_dict, exec_seconds)`` where
    ``profile_dict`` is the worker-side
    :class:`~repro._profile.KernelProfile` in dict form (``None``
    unless the parent asked for profiling) and ``exec_seconds`` is the
    job's wall-clock execution time in this worker (it feeds the
    parent's pool-utilization gauge -- the parent only observes
    queue + execution time together).
    """
    job, env, want_profile, attempt = payload
    for key, value in env.items():
        os.environ[key] = value
    _maybe_inject_fault(job, attempt)
    t0 = perf_counter()
    if not want_profile:
        result = job.execute()
        return result, None, perf_counter() - t0
    with _profile.profiling() as prof:
        result = job.execute()
    return result, prof.to_dict(), perf_counter() - t0


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
def default_cache_dir() -> str:
    """The on-disk cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class _Tally:
    """Mutable per-batch failure bookkeeping shared by the exec paths."""

    __slots__ = ("computed", "retried", "timed_out", "failures")

    def __init__(self) -> None:
        self.computed = 0
        self.retried = 0
        self.timed_out = 0
        self.failures: Dict[str, JobFailure] = {}  # token -> failure


QUEUE_DEPTH_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
"""Buckets of the ``session.queue_depth`` histogram (cells still
outstanding, observed at each completion)."""


class _BatchMonitor:
    """Per-batch span recording and progress bookkeeping.

    One instance per :meth:`SimSession.run_many`.  It owns the
    wall-clock view of the batch: per-cell session spans (disposition
    in the meta), the ``workers`` execution-phase span, the live
    progress callback, the queue-depth histogram, and the busy-seconds
    total behind the pool-utilization gauge.  Span recording is skipped
    entirely when no recorder is installed; the histogram lands in the
    session-local registry, which is always present and cheap.
    """

    __slots__ = ("recorder", "progress", "tally", "total", "done",
                 "cache_hits", "failed", "busy_s", "pool_rebuilds",
                 "start_us", "_t0", "_starts", "_queue_hist")

    def __init__(self, recorder: Optional[_obs_spans.SpanRecorder],
                 progress: Optional[Callable[[ProgressUpdate], None]],
                 registry: MetricsRegistry, tally: _Tally,
                 total: int) -> None:
        self.recorder = recorder
        self.progress = progress
        self.tally = tally
        self.total = total
        self.done = 0
        self.cache_hits = 0
        self.failed = 0
        self.busy_s = 0.0
        self.pool_rebuilds = 0
        self.start_us = _obs_spans.now_us()
        self._t0 = perf_counter()
        self._starts: Dict[str, Tuple[float, float]] = {}
        self._queue_hist = registry.histogram("session.queue_depth",
                                              QUEUE_DEPTH_BOUNDS)

    @property
    def elapsed_s(self) -> float:
        return perf_counter() - self._t0

    def job_started(self, token: Optional[str]) -> None:
        """Mark a cell's lifetime start (first submission only, so a
        retry or a pool rebuild never resets the span)."""
        if token is not None and token not in self._starts:
            self._starts[token] = (_obs_spans.now_us(), perf_counter())

    def cell_done(self, token: Optional[str], job: Any,
                  disposition: str, attempts: int,
                  exec_s: float = 0.0) -> None:
        """Record one finished cell: span, histogram, progress tick."""
        self.done += 1
        if disposition == "cache-hit":
            self.cache_hits += 1
        elif disposition in ("failed", "timed-out"):
            self.failed += 1
        self.busy_s += exec_s
        self._queue_hist.observe(self.total - self.done)
        if self.recorder is not None:
            started = self._starts.pop(token, None) \
                if token is not None else None
            if started is not None:
                start_us = started[0]
                dur_us = (perf_counter() - started[1]) * 1e6
            else:
                # Cache hits and untokened jobs have no tracked start;
                # their span is the execution time ending now.
                dur_us = exec_s * 1e6
                start_us = _obs_spans.now_us() - dur_us
            meta: Dict[str, Any] = {"disposition": disposition,
                                    "attempts": attempts}
            if token is not None:
                meta["token"] = token[:12]
            if exec_s:
                meta["exec_ms"] = round(exec_s * 1e3, 3)
            self.recorder.add(_obs_spans.TRACK_SESSION,
                              f"cell:{job_label(job)}",
                              start_us, dur_us, meta)
        if self.progress is not None:
            self.progress(ProgressUpdate(
                done=self.done, total=self.total,
                cache_hits=self.cache_hits,
                retried=self.tally.retried, failed=self.failed,
                elapsed_s=self.elapsed_s))

    @contextmanager
    def phase(self, name: str, **meta: Any):
        """Record the ``with`` block as a session-track span."""
        if self.recorder is None:
            yield
            return
        with self.recorder.span(_obs_spans.TRACK_SESSION, name,
                                meta) as attrs:
            yield
            attrs["pool_rebuilds"] = self.pool_rebuilds

    def finish(self, batch: "BatchStats") -> None:
        """Record the batch's root ``run_many`` span."""
        if self.recorder is None:
            return
        self.recorder.add(
            _obs_spans.TRACK_SESSION, "run_many", self.start_us,
            self.elapsed_s * 1e6,
            {"submitted": batch.submitted, "unique": batch.unique,
             "cache_hits": batch.cache_hits,
             "computed": batch.computed, "failed": batch.failed,
             "retried": batch.retried, "timed_out": batch.timed_out,
             "workers": batch.workers})


class SimSession:
    """Owns result caching and parallel fan-out for simulation jobs.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent JSON result cache.  ``None``
        resolves ``REPRO_CACHE_DIR`` and then ``~/.cache/repro``.
    disk_cache:
        ``True``/``False`` force the on-disk cache on or off; ``None``
        (the library default) enables it only when a ``cache_dir`` was
        given explicitly or ``REPRO_CACHE_DIR`` is set, so plain
        library use stays memory-only.
    max_workers:
        Default process fan-out for :meth:`run_many`.  ``None`` falls
        back to the ``REPRO_JOBS`` environment variable (``auto`` means
        ``os.cpu_count()``), then to 1 (serial).  Parallel runs produce
        byte-identical results to serial ones; the knob only trades
        wall-clock for cores.
    failure_policy:
        Batch-wide default for what a permanently-failed job does:
        :obj:`FailurePolicy.FAIL_FAST` raises :class:`JobFailed` after
        storing every completed sibling, :obj:`FailurePolicy.KEEP_GOING`
        yields a :class:`JobFailure` record in the result slot.
        Strings (``"keep_going"``/``"keep-going"``) are accepted.
    max_retries:
        Bounded re-executions per failed job (retried jobs re-run the
        same pure content, so results stay bit-identical).  ``None``
        falls back to ``REPRO_MAX_RETRIES``, then 1.
    job_timeout:
        Per-job seconds budget when fanning out over worker processes
        (``None`` -- the default, via ``REPRO_JOB_TIMEOUT`` -- means no
        timeout).  A timed-out job consumes an attempt; the pool is
        torn down and rebuilt so a wedged worker cannot hold the batch
        hostage.  Serial in-process execution cannot be preempted and
        ignores the timeout.
    progress:
        Optional callback invoked once per finished cell with a
        :class:`~repro.obs.progress.ProgressUpdate` (the CLI's
        ``--progress`` installs a
        :class:`~repro.obs.progress.ProgressLine` here).
    """

    _MAX_POOL_REBUILDS = 2
    """Broken-pool rebuilds before falling back to serial in-process."""

    _MAX_QUEUE_STALLS = 3
    """Timeouts a *queued* (never-started) job may absorb before the
    session treats the wait as a real per-job timeout."""

    def __init__(self, cache_dir: Optional[str] = None,
                 disk_cache: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 failure_policy: Union[FailurePolicy, str, None] = None,
                 max_retries: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 progress: Optional[Callable[[ProgressUpdate], None]]
                 = None) -> None:
        if disk_cache is None:
            disk_cache = (cache_dir is not None
                          or bool(os.environ.get("REPRO_CACHE_DIR")))
        self.cache_dir = str(cache_dir) if cache_dir \
            else default_cache_dir()
        self.disk_cache = bool(disk_cache)
        self.max_workers = max_workers
        self.failure_policy = FailurePolicy.coerce(
            failure_policy, FailurePolicy.FAIL_FAST)
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.progress = progress
        self._memory: Dict[str, Any] = {}
        self._disk_disabled: set = set()  # job types degraded to memory
        self.stats: Dict[str, int] = {
            "memory_hits": 0, "disk_hits": 0, "misses": 0,
            "planned": 0, "unique": 0, "baseline_dedup": 0,
            "failed": 0, "retried": 0, "timed_out": 0}
        self.last_batch: Optional[BatchStats] = None
        self.obs = MetricsRegistry()
        """Session-local batch metrics (cache/pool gauges, queue-depth
        histogram).  Separate from the scoped ``repro.obs`` registry on
        purpose: wall-clock-dependent gauges like pool utilization
        would break the serial-vs-pool snapshot identity the scoped
        registry guarantees.  Read it via :meth:`obs_snapshot`."""

    # -- public API ----------------------------------------------------
    def run(self, job: Any) -> Any:
        """Run (or fetch from cache) a single job."""
        return self.run_many([job])[0]

    def run_many(self, jobs: Iterable[Any],
                 max_workers: Optional[int] = None,
                 policy: Union[FailurePolicy, str, None] = None,
                 max_retries: Optional[int] = None,
                 job_timeout: Optional[float] = None) -> List[Any]:
        """Run a batch of independent jobs; results in submission order.

        Cache hits are served without computing; distinct jobs with
        identical content are computed once.  With more than one worker
        the cache misses fan out over per-job ``ProcessPoolExecutor``
        futures; the merged output is identical to a serial run because
        every job is a pure function of its content.

        The batch is fault-tolerant: each job gets bounded retries
        (``max_retries``) and, in the pool path, a per-job timeout
        (``job_timeout`` seconds); completed results are stored in the
        cache *as they finish*, so a crashed or killed batch resumes
        from cache instead of from zero.  A broken worker pool
        (``BrokenProcessPool`` -- e.g. an OOM-killed worker) is rebuilt
        up to ``_MAX_POOL_REBUILDS`` times and then the remainder runs
        serially in-process.  What a *permanent* failure does depends
        on ``policy`` (argument > session default > ``FAIL_FAST``): see
        :class:`FailurePolicy`.
        """
        jobs = [job.resolved() if hasattr(job, "resolved") else job
                for job in jobs]
        tokens = [job_token(job) for job in jobs]
        policy = FailurePolicy.coerce(policy, self.failure_policy)
        retries = self._effective_retries(max_retries)
        timeout = self._effective_timeout(job_timeout)
        results: List[Any] = [_MISS] * len(jobs)
        pending: "OrderedDict[str, Any]" = OrderedDict()
        hit_jobs: "OrderedDict[str, Any]" = OrderedDict()
        untokened: List[int] = []
        seen_tokens = set()
        hits = 0
        for index, (job, token) in enumerate(zip(jobs, tokens)):
            if token is None:
                untokened.append(index)
                continue
            seen_tokens.add(token)
            hit = self._lookup(token, type(job))
            if hit is not _MISS:
                results[index] = hit
                hits += 1
                if token not in hit_jobs:
                    hit_jobs[token] = job
            elif token not in pending:
                pending[token] = job
        unique = list(pending.items())
        workers = self._effective_workers(max_workers, len(unique))
        tally = _Tally()
        # The monitor counts *cells* (distinct work items), not raw
        # submissions: distinct cache-hit tokens + unique pending
        # tokens + untokened jobs.
        monitor = _BatchMonitor(
            recorder=_obs_spans.active(), progress=self.progress,
            registry=self.obs, tally=tally,
            total=len(hit_jobs) + len(unique) + len(untokened))
        for token, job in hit_jobs.items():
            monitor.cell_done(token, job, "cache-hit", attempts=0)
        with monitor.phase("workers", workers=workers):
            if workers > 1 and len(unique) > 1:
                self._run_pool(unique, workers, retries, timeout,
                               tally, monitor)
            else:
                self._run_serial(unique, retries, tally,
                                 monitor=monitor)
            for index in untokened:
                results[index] = self._run_untokened(
                    jobs[index], retries, tally, monitor)
        self.stats["misses"] += len(unique) + len(untokened)
        untokened_failed = sum(
            1 for index in untokened if is_failure(results[index]))
        self.last_batch = BatchStats(
            submitted=len(jobs),
            unique=len(seen_tokens) + len(untokened),
            cache_hits=hits,
            computed=tally.computed,
            failed=len(tally.failures) + untokened_failed,
            retried=tally.retried,
            timed_out=tally.timed_out,
            workers=workers,
            wall_seconds=monitor.elapsed_s,
            busy_seconds=monitor.busy_s)
        self.stats["planned"] += self.last_batch.submitted
        self.stats["unique"] += self.last_batch.unique
        self.stats["failed"] += self.last_batch.failed
        self.stats["retried"] += self.last_batch.retried
        self.stats["timed_out"] += self.last_batch.timed_out
        self._publish_failure_metrics(self.last_batch)
        self._publish_batch_metrics(self.last_batch)
        monitor.finish(self.last_batch)
        for index, token in enumerate(tokens):
            if results[index] is not _MISS or token is None:
                continue
            if token in self._memory:
                results[index] = self._memory[token]
            else:
                results[index] = tally.failures[token]
        if policy is FailurePolicy.FAIL_FAST:
            for result in results:
                if is_failure(result):
                    raise JobFailed(result)
        return results

    def slowdown(self, job: SimJob) -> Tuple[float, SimResult]:
        """(percent slowdown vs unprotected baseline, protected run)."""
        return self.slowdowns([job])[0]

    def slowdowns(self, jobs: Iterable[SimJob],
                  max_workers: Optional[int] = None,
                  policy: Union[FailurePolicy, str, None] = None
                  ) -> List[Tuple[float, SimResult]]:
        """Batched :meth:`slowdown`: one fan-out for the whole sweep.

        The matching unprotected baseline jobs are derived, deduplicated
        *before submission* (each distinct (workload, scale, seed,
        config) baseline is planned once per batch no matter how many
        protected jobs reference it -- the removed duplicates are
        tallied in ``stats["baseline_dedup"]``), and executed in the
        same process-pool batch as the protected runs.

        Under ``KEEP_GOING`` a pair whose protected run *or* baseline
        failed yields its :class:`JobFailure` record in place of the
        ``(slowdown, result)`` tuple.
        """
        from repro.sim.runner import baseline_setup
        jobs = [job.resolved() for job in jobs]
        setup = baseline_setup()
        baselines: List[SimJob] = []
        baseline_of: List[int] = []
        seen: Dict[str, int] = {}
        for job in jobs:
            baseline = dataclasses.replace(job, setup=setup)
            token = job_token(baseline)
            index = seen.get(token) if token is not None else None
            if index is None:
                index = len(baselines)
                baselines.append(baseline)
                if token is not None:
                    seen[token] = index
            baseline_of.append(index)
        self.stats["baseline_dedup"] += len(jobs) - len(baselines)
        results = self.run_many(baselines + jobs,
                                max_workers=max_workers, policy=policy)
        count = len(baselines)
        pairs: List[Tuple[float, SimResult]] = []
        for i, protected in enumerate(results[count:]):
            baseline = results[baseline_of[i]]
            if is_failure(protected):
                pairs.append(protected)
            elif is_failure(baseline):
                pairs.append(baseline)
            else:
                pairs.append((protected.slowdown_pct(baseline),
                              protected))
        return pairs

    def clear(self, memory: bool = True, disk: bool = False) -> None:
        """Drop cached results (the in-memory map, optionally disk).

        The disk sweep removes both ``*.json`` entries and any orphaned
        ``*.tmp.<pid>`` files a crashed writer left behind.
        """
        if memory:
            self._memory.clear()
        if disk and self.disk_cache and os.path.isdir(self.cache_dir):
            for shard in os.listdir(self.cache_dir):
                shard_dir = os.path.join(self.cache_dir, shard)
                if len(shard) != 2 or not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if name.endswith(".json") or ".json.tmp." in name:
                        try:
                            os.unlink(os.path.join(shard_dir, name))
                        except OSError:
                            pass

    # -- execution internals -------------------------------------------
    def _make_pool(self, workers: int) -> ProcessPoolExecutor:
        """Pool construction seam (tests substitute broken pools)."""
        return ProcessPoolExecutor(max_workers=workers)

    def _failure_for(self, job: Any, token: Optional[str],
                     error: Optional[BaseException], attempts: int,
                     timed_out: bool = False) -> JobFailure:
        if timed_out:
            error_type = "TimeoutError"
            message = "exceeded the per-job timeout"
        else:
            error_type = type(error).__name__
            message = str(error)
        return JobFailure(job=job, token=token, error_type=error_type,
                          message=message, attempts=attempts,
                          timed_out=timed_out)

    def _complete(self, token: str, job: Any, result: Any,
                  prof_dict: Optional[dict], tally: _Tally,
                  monitor: _BatchMonitor, exec_s: float,
                  attempts: int) -> None:
        """Fold one finished pool job into the parent, cache included.

        Results are stored *as they finish* -- not after the batch --
        so a batch killed halfway resumes from cache on rerun.
        ``attempts`` counts every execution including the successful
        one; more than one means the cell's disposition is ``retried``.
        """
        if prof_dict is not None and _profile._ACTIVE is not None:
            _profile._ACTIVE.merge(prof_dict)
        # A worker's collection scope merged into *its* process's
        # sinks; fold the shipped snapshot/events into the parent's so
        # pooled runs aggregate exactly like serial in-process ones.
        self._absorb_observability(result)
        self._store(token, type(job), result)
        tally.computed += 1
        monitor.cell_done(token, job,
                          "retried" if attempts > 1 else "computed",
                          attempts, exec_s=exec_s)

    def _run_serial(self, items: List[Tuple[str, Any]], retries: int,
                    tally: _Tally, monitor: _BatchMonitor,
                    attempts: Optional[Dict[str, int]] = None) -> None:
        """In-process execution with retries (also the pool fallback)."""
        for token, job in items:
            attempt = attempts.get(token, 0) if attempts else 0
            monitor.job_started(token)
            exec_s = 0.0
            while True:
                t0 = perf_counter()
                try:
                    _maybe_inject_fault(job, attempt)
                    result = job.execute()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:  # noqa: BLE001
                    exec_s += perf_counter() - t0
                    attempt += 1
                    if attempt > retries:
                        tally.failures[token] = self._failure_for(
                            job, token, error, attempt)
                        monitor.cell_done(token, job, "failed",
                                          attempt, exec_s=exec_s)
                        break
                    tally.retried += 1
                    continue
                exec_s += perf_counter() - t0
                self._store(token, type(job), result)
                tally.computed += 1
                monitor.cell_done(
                    token, job,
                    "retried" if attempt else "computed",
                    attempt + 1, exec_s=exec_s)
                break

    def _run_untokened(self, job: Any, retries: int, tally: _Tally,
                       monitor: _BatchMonitor) -> Any:
        """Run one uncacheable job in-process; failures become records."""
        attempt = 0
        exec_s = 0.0
        while True:
            t0 = perf_counter()
            try:
                _maybe_inject_fault(job, attempt)
                result = job.execute()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001
                exec_s += perf_counter() - t0
                attempt += 1
                if attempt > retries:
                    monitor.cell_done(None, job, "failed", attempt,
                                      exec_s=exec_s)
                    return self._failure_for(job, None, error, attempt)
                tally.retried += 1
                continue
            exec_s += perf_counter() - t0
            monitor.cell_done(
                None, job, "retried" if attempt else "computed",
                attempt + 1, exec_s=exec_s)
            return result

    def _run_pool(self, unique: List[Tuple[str, Any]], workers: int,
                  retries: int, timeout: Optional[float],
                  tally: _Tally, monitor: _BatchMonitor) -> None:
        """Per-job-future fan-out with retries, timeout, and recovery.

        Each pending job is an individual ``submit()`` future harvested
        in submission order.  A job that raises in its worker is
        resubmitted (up to ``retries`` times) into the same pool; a
        per-job timeout or a ``BrokenProcessPool`` tears the pool down
        -- after draining every already-finished future into the cache
        -- and rebuilds it for the remaining jobs.  A pool that keeps
        breaking (``_MAX_POOL_REBUILDS``) degrades to serial in-process
        execution of whatever is left.
        """
        env = _pool_env_overrides()
        want_profile = _profile._ACTIVE is not None
        pending: "OrderedDict[str, Any]" = OrderedDict(unique)
        attempts: Dict[str, int] = {token: 0 for token, _ in unique}
        stalls: Dict[str, int] = {}
        breaks = 0
        while pending:
            pool = self._make_pool(workers)
            abandon_pool = False

            def submit(token: str):
                job = pending[token]
                monitor.job_started(token)
                return pool.submit(
                    _execute_job,
                    (job, env, want_profile, attempts[token]))

            try:
                queue = deque(
                    (token, submit(token)) for token in pending)
            except BrokenProcessPool:
                queue = deque()
                abandon_pool = True
            try:
                while queue:
                    token, future = queue.popleft()
                    job = pending[token]
                    try:
                        result, prof_dict, exec_s = future.result(
                            timeout=timeout)
                    except FuturesTimeoutError:
                        if future.cancel():
                            # Never started: the pool is merely
                            # saturated, so the wait was queue time,
                            # not execution time.  Requeue without
                            # consuming an attempt (bounded).
                            stalls[token] = stalls.get(token, 0) + 1
                            if stalls[token] <= self._MAX_QUEUE_STALLS:
                                queue.append((token, submit(token)))
                                continue
                        attempts[token] += 1
                        tally.timed_out += 1
                        if attempts[token] > retries:
                            tally.failures[token] = self._failure_for(
                                job, token, None, attempts[token],
                                timed_out=True)
                            del pending[token]
                            monitor.cell_done(token, job, "timed-out",
                                              attempts[token])
                        else:
                            tally.retried += 1
                        # The worker behind this future may be wedged;
                        # abandon the pool so it cannot hold the batch.
                        abandon_pool = True
                        break
                    except BrokenProcessPool:
                        abandon_pool = True
                        break
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as error:  # noqa: BLE001
                        attempts[token] += 1
                        if attempts[token] > retries:
                            tally.failures[token] = self._failure_for(
                                job, token, error, attempts[token])
                            del pending[token]
                            monitor.cell_done(token, job, "failed",
                                              attempts[token])
                        else:
                            tally.retried += 1
                            try:
                                queue.append((token, submit(token)))
                            except BrokenProcessPool:
                                abandon_pool = True
                                break
                        continue
                    self._complete(token, job, result, prof_dict,
                                   tally, monitor, exec_s,
                                   attempts[token] + 1)
                    del pending[token]
                if abandon_pool:
                    # Keep every sibling that did finish: drain any
                    # completed future before discarding the pool.
                    for token, future in queue:
                        if token not in pending or not future.done():
                            continue
                        try:
                            result, prof_dict, exec_s = \
                                future.result(timeout=0)
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        except BaseException:  # noqa: BLE001
                            continue  # handled on the next pool
                        self._complete(token, pending[token], result,
                                       prof_dict, tally, monitor,
                                       exec_s, attempts[token] + 1)
                        del pending[token]
            finally:
                pool.shutdown(wait=not abandon_pool,
                              cancel_futures=True)
            if not pending:
                return
            if abandon_pool:
                breaks += 1
                monitor.pool_rebuilds += 1
                if breaks > self._MAX_POOL_REBUILDS:
                    # The pool keeps dying under us; finish what is
                    # left serially in-process, where a raised
                    # exception is at least catchable.
                    items = list(pending.items())
                    pending.clear()
                    self._run_serial(items, retries, tally, monitor,
                                     attempts=attempts)
                    return

    def _publish_failure_metrics(self, batch: BatchStats) -> None:
        """Count batch failures into the active metrics registry."""
        registry = _obs_metrics._ACTIVE
        if registry is None:
            return
        if batch.failed:
            registry.counter("session.jobs_failed").inc(batch.failed)
        if batch.retried:
            registry.counter("session.jobs_retried").inc(batch.retried)
        if batch.timed_out:
            registry.counter("session.jobs_timed_out").inc(
                batch.timed_out)

    def _publish_batch_metrics(self, batch: BatchStats) -> None:
        """Publish cache/pool gauges into the *session-local* registry.

        These land in :attr:`obs`, never the scoped ``repro.obs``
        registry, because hit rate and utilization depend on cache
        state and wall clock -- folding them into the scoped registry
        would break the serial-vs-pool snapshot identity guarantee.
        """
        registry = self.obs
        registry.counter("session.jobs_submitted").inc(batch.submitted)
        registry.counter("session.cache_hits").inc(batch.cache_hits)
        registry.counter("session.jobs_computed").inc(batch.computed)
        if batch.failed:
            registry.counter("session.jobs_failed").inc(batch.failed)
        if batch.retried:
            registry.counter("session.jobs_retried").inc(batch.retried)
        if batch.timed_out:
            registry.counter("session.jobs_timed_out").inc(
                batch.timed_out)
        registry.gauge("session.cache.hit_rate").set(
            round(100.0 * batch.hit_rate, 1))
        registry.gauge("session.pool.utilization").set(
            round(100.0 * batch.utilization, 1))
        registry.gauge("session.pool.workers").set(batch.workers)

    def obs_snapshot(self) -> dict:
        """Snapshot of the session-local batch metrics (see :attr:`obs`)."""
        return self.obs.snapshot()

    # -- knob resolution -----------------------------------------------
    def _effective_workers(self, override: Optional[int],
                           pending_count: int) -> int:
        """Resolve the worker count: arg > session > REPRO_JOBS > 1.

        ``REPRO_JOBS=auto`` means ``os.cpu_count()``; a malformed value
        warns once and falls back to 1 instead of crashing mid-sweep.
        """
        workers = override if override is not None else self.max_workers
        if workers is None:
            workers = env_int("REPRO_JOBS", 1, minimum=1,
                              aliases={"auto": os.cpu_count() or 1})
        return max(1, min(int(workers), max(1, pending_count)))

    def _effective_retries(self, override: Optional[int]) -> int:
        """Resolve max retries: arg > session > REPRO_MAX_RETRIES > 1."""
        retries = override if override is not None else self.max_retries
        if retries is None:
            retries = env_int("REPRO_MAX_RETRIES", 1, minimum=0)
        return max(0, int(retries))

    def _effective_timeout(self, override: Optional[float]
                           ) -> Optional[float]:
        """Resolve the per-job timeout: arg > session >
        REPRO_JOB_TIMEOUT > none."""
        timeout = override if override is not None else self.job_timeout
        if timeout is None:
            timeout = env_float("REPRO_JOB_TIMEOUT", 0.0, minimum=0.0)
        return float(timeout) if timeout and timeout > 0 else None

    # -- cache internals -----------------------------------------------
    def _lookup(self, token: str, job_type: type) -> Any:
        """Memory then disk lookup; returns ``_MISS`` when absent."""
        if token in self._memory:
            result = self._memory[token]
            if not _observability_satisfied(result):
                return _MISS  # cached without the requested metrics
            self.stats["memory_hits"] += 1
            return result
        if self.disk_cache and job_type in _CODECS:
            payload = self._disk_read(token)
            if payload is not None:
                try:
                    result = _CODECS[job_type][1](payload)
                except (TypeError, ValueError, KeyError):
                    return _MISS  # stale/corrupt entry: recompute
                if not _observability_satisfied(result):
                    return _MISS
                self.stats["disk_hits"] += 1
                self._memory[token] = result
                return result
        return _MISS

    @staticmethod
    def _absorb_observability(result: Any) -> None:
        """Fold a pool result's snapshot/events into the parent sinks."""
        if not isinstance(result, SimResult):
            return
        registry = _obs_metrics._ACTIVE
        if registry is not None and result.metrics:
            registry.merge_snapshot(result.metrics)
        buffer = _obs_trace._ACTIVE
        if buffer is not None and result.trace_events:
            buffer.extend(result.trace_events)
        recorder = _obs_spans._ACTIVE
        if recorder is not None and result.spans:
            recorder.extend(result.spans)

    def _store(self, token: str, job_type: type, result: Any) -> None:
        """Memoise a freshly-computed result (and persist if enabled)."""
        self._memory[token] = result
        if self.disk_cache and job_type in _CODECS \
                and job_type not in self._disk_disabled:
            self._disk_write(token, _CODECS[job_type][0](result),
                             job_type)

    def _entry_path(self, token: str) -> str:
        """Sharded cache path for one token."""
        return os.path.join(self.cache_dir, token[:2], token + ".json")

    def _disk_read(self, token: str) -> Optional[Any]:
        """Load one cache entry's payload, or ``None`` on any failure."""
        try:
            with open(self._entry_path(token), "r") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != CACHE_FORMAT:
            return None
        return entry.get("result")

    def _disk_write(self, token: str, payload: Any,
                    job_type: Optional[type] = None) -> None:
        """Atomically persist one cache entry (best-effort).

        A payload ``json.dump`` cannot serialize (a codec bug, or an
        extension job type returning live objects) must not crash the
        run mid-batch: the ``TypeError``/``ValueError`` is swallowed
        like an ``OSError``, the partial ``*.tmp.<pid>`` file is
        unlinked, and -- since every result of that job type will fail
        the same way -- the type degrades to memory-only caching with a
        one-line warning.
        """
        path = self._entry_path(token)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump({"format": CACHE_FORMAT, "result": payload},
                          handle)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as error:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(error, (TypeError, ValueError)) \
                    and job_type is not None:
                self._disk_disabled.add(job_type)
                warnings.warn(
                    f"result of {job_type.__name__} is not "
                    f"JSON-serializable ({error}); disk caching "
                    f"disabled for this job type", stacklevel=2)


# ----------------------------------------------------------------------
# The default session
# ----------------------------------------------------------------------
_DEFAULT_SESSION: Optional[SimSession] = None


def get_default_session() -> SimSession:
    """The process-wide session behind the legacy ``run_*`` wrappers."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = SimSession()
    return _DEFAULT_SESSION


def set_default_session(session: Optional[SimSession]
                        ) -> Optional[SimSession]:
    """Install ``session`` as the default; returns the previous one."""
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


@contextmanager
def using_session(session: SimSession):
    """Scope ``session`` as the default over a ``with`` block."""
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)
