"""Public home of the kernel profiling layer.

The implementation lives in :mod:`repro._profile` so the hot modules
(``repro.mc.controller``, ``repro.dram.device``, ``repro.cpu.core``)
can import it without pulling in :mod:`repro.sim`'s package
``__init__`` -- which imports the runner, which imports those same hot
modules.  Import from here in user code::

    from repro.sim.profile import profiling

Profiles aggregate across a whole session, including process-pool
fan-out: :meth:`repro.sim.session.SimSession.run_many` ships each
worker's :class:`KernelProfile` back as a dict and merges it into the
parent's active profile, so ``--profile`` combined with ``--jobs N``
reports totals over every process rather than the parent alone.
"""

from __future__ import annotations

from repro._profile import (
    PHASES,
    KernelProfile,
    active,
    enabled_by_env,
    install,
    maybe_profile_from_env,
    perf_counter,
    profiling,
)

__all__ = [
    "KernelProfile",
    "PHASES",
    "active",
    "enabled_by_env",
    "install",
    "maybe_profile_from_env",
    "perf_counter",
    "profiling",
]
