"""Kernel backends: how one simulated window is actually executed.

The timing model is a single sequential command stream, but the *device
bookkeeping* hanging off it (per-bank trackers, ground-truth oracles)
does not have to run in lock-step with it.  This module makes that
choice a first-class API:

``event``
    Today's per-command dispatch: every ACT updates bank, oracle, and
    tracker state immediately, and the tracker ALERT lines are polled
    after every activation.

``array``
    Chunked array-at-a-time execution: ACTs are buffered per bank as
    flat ``(row, ts)`` arrays and applied in bulk at the next
    timing-relevant event (REF / RFM / DRFM / ALERT service / RowPress
    accounting / end of window).  Between those events, each alertable
    tracker publishes an :meth:`~repro.mitigations.base.BankTracker.
    alert_slack` lower bound on how many ACTs must pass before its
    ALERT line can rise, so the per-ACT ``wants_alert`` polling of the
    event path collapses to one poll per slack horizon.  Trackers
    without an exact slack bound fall back to a slack of one -- per-ACT
    stepping, i.e. exactly the event path's behaviour -- so the fast
    path is *provably bit-identical* (the golden-results suite pins it).

``vector``
    The array backend's buffering and flush boundaries, with the flush
    itself vectorized: a buffered run at least :data:`VECTOR_MIN_RUN`
    ACTs long whose tracker implements an array path
    (:meth:`~repro.mitigations.base.BankTracker.on_activates_array`)
    lands as a flat numpy ``int64`` array -- grouped counter updates,
    closed-form MINT window arithmetic, ufunc RCT escape decisions --
    instead of a per-ACT replay loop.  Short runs and trackers without
    an array path take the array backend's list flush unchanged, so
    the fallback is automatic per bank per flush.  Requires
    ``numpy>=1.24``; selecting it without a compatible numpy (or with
    ``REPRO_DISABLE_VECTOR`` set) raises a clear ImportError at run
    time.

Selection is resolved in priority order: an explicit ``backend=``
argument to :func:`repro.sim.runner.simulate`, then the
``REPRO_KERNEL_BACKEND`` environment knob (CLI flag ``--backend`` maps
onto it), then the ``event`` default.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, List, Optional, Protocol, Sequence, Union, \
    runtime_checkable

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro import _env, _profile
from repro.cpu.system import MultiCoreSystem, SimResult
from repro.obs import metrics as _obs_metrics
from repro.obs import trace as _obs_trace
from repro.dram.device import DramDevice
from repro.dram.refresh import RefreshSlice
from repro.mitigations.base import BankTracker, UNBOUNDED_SLACK


@runtime_checkable
class KernelBackend(Protocol):
    """The contract a kernel backend implements.

    A backend receives a fully-built :class:`MultiCoreSystem` and a
    window length and must return the same :class:`SimResult` the event
    backend would -- backends may reorganise *bookkeeping*, never
    *timing*.
    """

    name: str
    """Registry name ("event", "array", ...)."""

    def run(self, system: MultiCoreSystem, window_ps: int) -> SimResult:
        """Execute one simulated window over ``system``."""
        ...


class EventBackend:
    """Per-command dispatch: the classic fully-interleaved kernel."""

    name = "event"

    def run(self, system: MultiCoreSystem, window_ps: int) -> SimResult:
        """Delegate straight to :meth:`MultiCoreSystem.run`."""
        return system.run(window_ps)


# ----------------------------------------------------------------------
# Vector-path availability gating
# ----------------------------------------------------------------------
_NUMPY_FLOOR = (1, 24)
"""Oldest numpy the vector paths are tested against."""

VECTOR_MIN_RUN = 64
"""Shortest buffered run worth handing to the numpy flush path.

Below this, array conversion and ufunc dispatch overhead beats the
plain-list replay loop (benign flush runs average ~10 ACTs), so the
vector device routes short runs through the array backend's list
flush -- same semantics either way, only the arithmetic differs.
"""

DISABLE_ENV_VAR = "REPRO_DISABLE_VECTOR"
"""Set (to 1/true/yes/on) to refuse the vector backend even when a
compatible numpy is importable -- used by the minimal-deps CI job to
prove the event/array backends carry the suite on their own."""

FLUSH_RUN_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                    2048, 4096)
"""Buckets of the ``backend.flush_run_len`` histogram.  The edges
bracket :data:`VECTOR_MIN_RUN`, so the recorded distribution shows
directly what fraction of flush runs clears the vectorization
threshold -- the data to tune it with."""


def _vector_unavailable_reason() -> Optional[str]:
    """Why the vector backend cannot run right now (None = it can)."""
    if os.environ.get(DISABLE_ENV_VAR, "").strip().lower() in (
            "1", "true", "yes", "on"):
        return f"{DISABLE_ENV_VAR} is set"
    if _np is None:
        return "numpy is not installed"
    try:
        version = tuple(
            int(part) for part in _np.__version__.split(".")[:2])
    except ValueError:  # pragma: no cover - exotic dev builds
        return None  # unparseable version: assume new enough
    if version < _NUMPY_FLOOR:
        floor = ".".join(str(p) for p in _NUMPY_FLOOR)
        return (f"numpy {_np.__version__} is older than the supported "
                f"floor {floor}")
    return None


def vector_available() -> bool:
    """True iff the vector backend would run here and now."""
    return _vector_unavailable_reason() is None


def _require_vector() -> None:
    """Raise a clear ImportError when the vector backend cannot run."""
    reason = _vector_unavailable_reason()
    if reason is not None:
        raise ImportError(
            f"the 'vector' kernel backend needs numpy>="
            f"{'.'.join(str(p) for p in _NUMPY_FLOOR)} but {reason}; "
            f"install a compatible numpy or select the 'array'/'event' "
            f"backend")


class _BatchingDevice:
    """Drop-in :class:`DramDevice` facade that defers ACT bookkeeping.

    Installed over each real device by :class:`ArrayBackend`.  ACTs are
    buffered per bank; any operation whose outcome could depend on
    up-to-date bank/tracker state (REF, RFM, DRFM, ALERT service,
    RowPress accounting) first lands the affected banks' buffers via
    :meth:`DramDevice.apply_activations`, so the real device always
    observes the same per-bank event order as under the event backend.

    The ALERT line is maintained incrementally: a bank's tracker is
    re-polled when its slack countdown expires or one of its buffered
    runs is flushed, and ``alert_pending`` answers from the resulting
    pending set -- bit-identical to polling every tracker per ACT,
    because tracker state only changes on that bank's own ACTs and on
    mitigation slots, both of which are poll points.
    """

    __slots__ = ("_real", "_rows", "_times", "_countdown", "_pending",
                 "_alertable_ids", "banks", "trackers", "stats",
                 "config", "mapping", "refresh", "subch", "num_banks",
                 "blast_radius", "_flush_hist", "_trace_buf")

    def __init__(self, real: DramDevice) -> None:
        self._real = real
        # Observability prefetch (the usual one-None-check-when-off
        # pattern): flush-run lengths feed a histogram, and each flush
        # lands as a FLUSH window on the bank's kernel trace lane.
        registry = _obs_metrics._ACTIVE
        self._flush_hist = registry.histogram(
            "backend.flush_run_len", FLUSH_RUN_BOUNDS) \
            if registry is not None else None
        self._trace_buf = _obs_trace._ACTIVE
        # Plain-attribute reads MCs and experiments perform are served
        # directly from the real device's objects.
        self.banks = real.banks
        self.trackers = real.trackers
        self.stats = real.stats
        self.config = real.config
        self.mapping = real.mapping
        self.refresh = real.refresh
        self.subch = real.subch
        self.num_banks = real.num_banks
        self.blast_radius = real.blast_radius
        n = real.num_banks
        self._rows: List[List[int]] = [[] for _ in range(n)]
        self._times: List[List[int]] = [[] for _ in range(n)]
        self._pending: set = set()
        trackers = real.trackers
        self._alertable_ids = frozenset(
            i for i in range(n)
            if type(trackers[i]).wants_alert is not BankTracker.wants_alert)
        self._countdown: List[int] = [
            trackers[i].alert_slack() if i in self._alertable_ids
            else UNBOUNDED_SLACK
            for i in range(n)]

    # ------------------------------------------------------------------
    # Deferral machinery
    # ------------------------------------------------------------------
    def _note_flush(self, bank_id: int, run_len: int) -> None:
        """Record one flush run (histogram + FLUSH trace window)."""
        if self._flush_hist is not None:
            self._flush_hist.observe(run_len)
        buf = self._trace_buf
        if buf is not None:
            times = self._times[bank_id]
            if times[-1] > times[0]:
                buf.window(times[0], times[-1], "FLUSH", self.subch,
                           bank_id)
            else:
                # Single-ACT runs are instants: a zero-length B/E pair
                # would be reordered (E-before-B) by the exporter.
                buf.instant(times[0], "FLUSH", self.subch, bank_id)

    def _flush(self, bank_id: int) -> None:
        """Land ``bank_id``'s buffered run on the real device."""
        rows = self._rows[bank_id]
        if rows:
            if self._flush_hist is not None \
                    or self._trace_buf is not None:
                self._note_flush(bank_id, len(rows))
            self._real.apply_activations(bank_id, rows,
                                         self._times[bank_id])
            self._rows[bank_id] = []
            self._times[bank_id] = []

    def _poll(self, bank_id: int) -> None:
        """Refresh ``bank_id``'s ALERT status and slack countdown."""
        if bank_id not in self._alertable_ids:
            self._countdown[bank_id] = UNBOUNDED_SLACK
            return
        tracker = self._real.trackers[bank_id]
        if tracker.wants_alert():
            self._pending.add(bank_id)
            self._countdown[bank_id] = 1
        else:
            self._pending.discard(bank_id)
            self._countdown[bank_id] = tracker.alert_slack()

    def _flush_all(self) -> None:
        """Land every bank's buffered run (REF/ALERT boundaries)."""
        for bank_id in range(self.num_banks):
            self._flush(bank_id)

    def _poll_all(self) -> None:
        """Re-poll every alertable bank (after REF/ALERT service)."""
        for bank_id in self._alertable_ids:
            self._poll(bank_id)

    def flush(self) -> None:
        """Land all deferred state (end of window, before collection)."""
        self._flush_all()
        self._poll_all()

    # ------------------------------------------------------------------
    # DramDevice-facing operations
    # ------------------------------------------------------------------
    def activate(self, bank_id: int, row: int, now_ps: int) -> None:
        """Buffer one ACT; flush and re-poll at the slack horizon."""
        self._rows[bank_id].append(row)
        self._times[bank_id].append(now_ps)
        remaining = self._countdown[bank_id] - 1
        self._countdown[bank_id] = remaining
        if remaining <= 0:
            self._flush(bank_id)
            self._poll(bank_id)

    def alert_pending(self) -> bool:
        """True if any bank's tracker needs an ALERT right now."""
        return bool(self._pending)

    def service_alert(self, now_ps: int,
                      rfm_slots: Optional[int] = None) -> int:
        """Flush everything, run the ALERT service, re-poll all banks."""
        self._flush_all()
        victims = self._real.service_alert(now_ps, rfm_slots)
        self._poll_all()
        return victims

    def do_ref(self, now_ps: int) -> RefreshSlice:
        """Flush everything, issue the REF, re-poll all banks."""
        self._flush_all()
        slice_ = self._real.do_ref(now_ps)
        self._poll_all()
        return slice_

    def rfm(self, bank_id: int, now_ps: int) -> int:
        """Flush ``bank_id`` (its triggering ACT included), then RFM."""
        self._flush(bank_id)
        mitigated = self._real.rfm(bank_id, now_ps)
        self._poll(bank_id)
        return mitigated

    def drfm_mitigate(self, bank_id: int, aggressor_row: int) -> int:
        """Flush ``bank_id`` so the oracle pop lands in event order."""
        self._flush(bank_id)
        victims = self._real.drfm_mitigate(bank_id, aggressor_row)
        self._poll(bank_id)
        return victims

    def note_row_press(self, bank_id: int, row: int,
                       equivalent_acts: int, now_ps: int) -> None:
        """Flush ``bank_id``, account the RowPress ACTs, re-poll."""
        self._flush(bank_id)
        self._real.note_row_press(bank_id, row, equivalent_acts, now_ps)
        self._poll(bank_id)

    def apply_activations(self, bank_id: int, rows: Sequence[int],
                          times: Sequence[int]) -> None:
        """Pass a pre-batched run straight through (idempotent seam)."""
        self._real.apply_activations(bank_id, rows, times)

    # ------------------------------------------------------------------
    # Verification helpers (flush first so oracles are current)
    # ------------------------------------------------------------------
    def max_unmitigated_acts(self) -> int:
        """Worst unmitigated per-row ACT count (oracle, post-flush)."""
        self._flush_all()
        return self._real.max_unmitigated_acts()

    def attack_succeeded(self, threshold: int) -> bool:
        """Ground truth over the flushed oracles."""
        self._flush_all()
        return self._real.attack_succeeded(threshold)


class _VectorizingDevice(_BatchingDevice):
    """Batching facade whose flush lands long runs as numpy arrays.

    Identical buffering, poll, and flush *boundaries* to
    :class:`_BatchingDevice`; only the flush arithmetic changes, and
    only for banks whose tracker overrides
    :meth:`~repro.mitigations.base.BankTracker.on_activates_array`
    (checked once at construction) and only for runs of at least
    :data:`VECTOR_MIN_RUN` ACTs.  Everything else takes the array
    backend's list flush -- the automatic per-bank fallback.
    """

    __slots__ = ("_vector_ok",)

    def __init__(self, real: DramDevice) -> None:
        super().__init__(real)
        self._vector_ok = [
            type(t).on_activates_array is not BankTracker.on_activates_array
            for t in real.trackers]

    def _flush(self, bank_id: int) -> None:
        """Land ``bank_id``'s buffered run, vectorized when worthwhile."""
        rows = self._rows[bank_id]
        if not rows:
            return
        if self._flush_hist is not None or self._trace_buf is not None:
            self._note_flush(bank_id, len(rows))
        if len(rows) >= VECTOR_MIN_RUN and self._vector_ok[bank_id]:
            self._real.apply_activations_array(
                bank_id,
                _np.asarray(rows, dtype=_np.int64),
                _np.asarray(self._times[bank_id], dtype=_np.int64))
        else:
            self._real.apply_activations(bank_id, rows,
                                         self._times[bank_id])
        self._rows[bank_id] = []
        self._times[bank_id] = []


class ArrayBackend:
    """Chunked array-at-a-time kernel (see the module docstring)."""

    name = "array"

    device_cls = _BatchingDevice
    """Facade installed over each device (subclasses swap it out)."""

    def run(self, system: MultiCoreSystem, window_ps: int) -> SimResult:
        """Drive the window with batching device facades installed.

        The facades are removed (and all deferred state landed) before
        measurements are collected, so the returned result -- and the
        system object itself -- are indistinguishable from an event-
        backend run.
        """
        prof = _profile._ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        proxies = [self.device_cls(device) for device in system.devices]
        for mc, proxy in zip(system.mcs, proxies):
            mc.device = proxy
        try:
            system.drive(window_ps)
            for mc in system.mcs:
                mc.finish(window_ps)
            for proxy in proxies:
                proxy.flush()
        finally:
            for mc, device in zip(system.mcs, system.devices):
                mc.device = device
        if prof is not None:
            prof.add_run(perf_counter() - t0, window_ps,
                         sum(mc.total_requests for mc in system.mcs),
                         sum(mc.total_activations for mc in system.mcs))
        return system.collect(window_ps)


class VectorBackend(ArrayBackend):
    """Array backend with numpy-vectorized flushes (module docstring).

    Always registered so ``--backend vector`` gives a clear error
    instead of an unknown-name KeyError when numpy is missing, too old,
    or disabled via :data:`DISABLE_ENV_VAR`; availability is checked at
    run time, not import time.
    """

    name = "vector"

    device_cls = _VectorizingDevice

    def run(self, system: MultiCoreSystem, window_ps: int) -> SimResult:
        """Check numpy availability, then run the array kernel with
        vectorizing facades."""
        _require_vector()
        return super().run(system, window_ps)


# ----------------------------------------------------------------------
# Registry and selection
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, KernelBackend] = {}

ENV_VAR = "REPRO_KERNEL_BACKEND"
"""Environment knob naming the default backend (same warn-once
defensive parsing as ``REPRO_JOBS``; see :mod:`repro._env`)."""


def register_backend(name: str, backend: KernelBackend,
                     replace: bool = False) -> None:
    """Register a backend under ``name`` for :func:`backend_by_name`.

    Third-party backends (a numpy-vectorised kernel, an instrumented
    debug kernel) register here and become selectable everywhere --
    ``simulate(backend=...)``, ``--backend``, ``REPRO_KERNEL_BACKEND``.
    """
    if not replace and name in _BACKENDS:
        raise ValueError(f"backend {name!r} already registered")
    _BACKENDS[name] = backend


def available_backends() -> List[str]:
    """Sorted names of every registered kernel backend."""
    return sorted(_BACKENDS)


def backend_by_name(name: str) -> KernelBackend:
    """Look up a registered backend; KeyError lists the known names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise KeyError(
            f"unknown kernel backend {name!r}; known: {known}") from None


def default_backend_name() -> str:
    """The backend ``REPRO_KERNEL_BACKEND`` selects (default: event)."""
    return _env.env_choice(ENV_VAR, EventBackend.name,
                           tuple(_BACKENDS))


def resolve_backend(spec: Union[str, KernelBackend, None]
                    ) -> KernelBackend:
    """Resolve a ``simulate(backend=...)`` argument to a backend object.

    ``None`` defers to :func:`default_backend_name` (the environment
    knob), a string goes through the registry, and an object is used
    as-is (it need not be registered).
    """
    if spec is None:
        return backend_by_name(default_backend_name())
    if isinstance(spec, str):
        return backend_by_name(spec)
    return spec


register_backend(EventBackend.name, EventBackend())
register_backend(ArrayBackend.name, ArrayBackend())
register_backend(VectorBackend.name, VectorBackend())
