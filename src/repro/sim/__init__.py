"""Experiment runner: (workload x mitigation) -> measurements.

:mod:`repro.sim.runner` builds fully-wired systems for each mitigation
configuration the paper evaluates; :mod:`repro.sim.session` is the
execution substrate -- a :class:`SimSession` owning a content-addressed
result cache and process-pool fan-out, so sweeps parallelise across
cores and repeated runs are served from disk.
:mod:`repro.sim.registry` names the paper's setups ("mirza-1000", ...)
for CLIs and sweep scripts, and :mod:`repro.sim.stats` holds the small
numeric/table helpers the experiment modules share.
:mod:`repro.sim.backend` selects *how* the kernel under
:func:`simulate` executes -- per-command (``event``) or chunked
array-at-a-time (``array``), bit-identical by contract.

The numeric helpers (``format_table``, ``geometric_mean``, ``mean``)
are importable from here for backwards compatibility but deprecated at
this level; import them from :mod:`repro.sim.stats`.
"""

import warnings as _warnings

from repro.sim.backend import (
    ArrayBackend,
    EventBackend,
    KernelBackend,
    available_backends,
    backend_by_name,
    register_backend,
    resolve_backend,
)
from repro.sim.runner import (
    MitigationSetup,
    baseline_setup,
    calibrated_workload,
    mint_rfm_setup,
    mirza_setup,
    mist_setup,
    naive_mirza_setup,
    prac_setup,
    run_baseline,
    run_workload,
    simulate,
    slowdown_for,
)
from repro.sim.registry import (
    available_setups,
    register_setup,
    setup_by_name,
)
from repro.sim.session import (
    BatchStats,
    FailurePolicy,
    JobFailed,
    JobFailure,
    SimJob,
    SimSession,
    get_default_session,
    is_failure,
    job_token,
    register_job_type,
    set_default_session,
    using_session,
)
__all__ = [
    "ArrayBackend",
    "BatchStats",
    "EventBackend",
    "FailurePolicy",
    "JobFailed",
    "JobFailure",
    "KernelBackend",
    "MitigationSetup",
    "SimJob",
    "SimSession",
    "available_backends",
    "available_setups",
    "backend_by_name",
    "is_failure",
    "baseline_setup",
    "calibrated_workload",
    "get_default_session",
    "job_token",
    "mint_rfm_setup",
    "mirza_setup",
    "mist_setup",
    "naive_mirza_setup",
    "prac_setup",
    "register_backend",
    "register_job_type",
    "register_setup",
    "resolve_backend",
    "run_baseline",
    "run_workload",
    "set_default_session",
    "setup_by_name",
    "simulate",
    "slowdown_for",
    "using_session",
]

_DEPRECATED_STATS = ("format_table", "geometric_mean", "mean")
_warned_stats: set = set()


def __getattr__(name: str):
    """Deprecation shim for the relocated numeric helpers.

    ``repro.sim.{format_table,geometric_mean,mean}`` still resolve --
    code written against the old flat surface keeps working -- but each
    name warns once per process pointing at :mod:`repro.sim.stats`,
    its canonical home.
    """
    if name in _DEPRECATED_STATS:
        if name not in _warned_stats:
            _warned_stats.add(name)
            _warnings.warn(
                f"importing {name!r} from repro.sim is deprecated; "
                f"use repro.sim.stats.{name}",
                DeprecationWarning, stacklevel=2)
        from repro.sim import stats
        return getattr(stats, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
