"""Experiment runner: (workload x mitigation) -> measurements.

:mod:`repro.sim.runner` builds fully-wired systems for each mitigation
configuration the paper evaluates and caches unprotected baselines so
slowdowns are always measured against the same run.
:mod:`repro.sim.stats` holds the small numeric/table helpers the
experiment modules share.
"""

from repro.sim.runner import (
    MitigationSetup,
    baseline_setup,
    mint_rfm_setup,
    mirza_setup,
    naive_mirza_setup,
    prac_setup,
    run_workload,
    slowdown_for,
)
from repro.sim.stats import format_table, geometric_mean, mean

__all__ = [
    "MitigationSetup",
    "baseline_setup",
    "format_table",
    "geometric_mean",
    "mean",
    "mint_rfm_setup",
    "mirza_setup",
    "naive_mirza_setup",
    "prac_setup",
    "run_workload",
    "slowdown_for",
]
