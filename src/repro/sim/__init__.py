"""Experiment runner: (workload x mitigation) -> measurements.

:mod:`repro.sim.runner` builds fully-wired systems for each mitigation
configuration the paper evaluates; :mod:`repro.sim.session` is the
execution substrate -- a :class:`SimSession` owning a content-addressed
result cache and process-pool fan-out, so sweeps parallelise across
cores and repeated runs are served from disk.
:mod:`repro.sim.registry` names the paper's setups ("mirza-1000", ...)
for CLIs and sweep scripts, and :mod:`repro.sim.stats` holds the small
numeric/table helpers the experiment modules share.
"""

from repro.sim.runner import (
    MitigationSetup,
    baseline_setup,
    calibrated_workload,
    mint_rfm_setup,
    mirza_setup,
    mist_setup,
    naive_mirza_setup,
    prac_setup,
    run_baseline,
    run_workload,
    simulate,
    slowdown_for,
)
from repro.sim.registry import (
    available_setups,
    register_setup,
    setup_by_name,
)
from repro.sim.session import (
    BatchStats,
    FailurePolicy,
    JobFailed,
    JobFailure,
    SimJob,
    SimSession,
    get_default_session,
    is_failure,
    job_token,
    register_job_type,
    set_default_session,
    using_session,
)
from repro.sim.stats import format_table, geometric_mean, mean

__all__ = [
    "BatchStats",
    "FailurePolicy",
    "JobFailed",
    "JobFailure",
    "MitigationSetup",
    "SimJob",
    "SimSession",
    "available_setups",
    "is_failure",
    "baseline_setup",
    "calibrated_workload",
    "format_table",
    "geometric_mean",
    "get_default_session",
    "job_token",
    "mean",
    "mint_rfm_setup",
    "mirza_setup",
    "mist_setup",
    "naive_mirza_setup",
    "prac_setup",
    "register_job_type",
    "register_setup",
    "run_baseline",
    "run_workload",
    "set_default_session",
    "setup_by_name",
    "simulate",
    "slowdown_for",
    "using_session",
]
