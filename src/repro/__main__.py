"""Command-line entry point.

Usage::

    python -m repro list                   # available exhibits
    python -m repro run table7             # print one exhibit
    python -m repro run fig11 table8       # several exhibits
    python -m repro report [path]          # run everything -> markdown
    python -m repro report --jobs 8        # ... on 8 worker processes

Bare exhibit names still work (``python -m repro table7`` is shorthand
for ``python -m repro run table7``).

Every subcommand accepts the shared simulation flags (``--jobs``,
``--time-scale``, ``--cgf-scale``, ``--workloads``, ``--seed``,
``--cache-dir``, ``--no-cache``, ``--profile``).  The ``REPRO_*``
environment
variables remain as fallbacks; an explicit flag always wins over the
environment.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Iterator, List, Optional

from repro.report import exhibit_names, run_exhibit, write_report
from repro.sim.session import SimSession

_SUBCOMMANDS = ("list", "run", "report")

_ENV_FLAGS = [
    # (argparse dest, environment variable the flag overrides)
    ("time_scale", "REPRO_TIME_SCALE"),
    ("cgf_scale", "REPRO_CGF_SCALE"),
    ("workloads", "REPRO_WORKLOADS"),
    ("seed", "REPRO_SEED"),
]


def _build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (three subcommands, shared flags)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures. "
                    "Subcommands: list, run, report.")
    sub = parser.add_subparsers(dest="command")

    def add_shared(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", "-j", type=int, default=None, metavar="N",
            help="worker processes for simulation sweeps "
                 "(default: REPRO_JOBS or 1)")
        p.add_argument(
            "--time-scale", type=int, default=None, metavar="S",
            help="window divisor for timed simulation "
                 "(default: REPRO_TIME_SCALE or 512)")
        p.add_argument(
            "--cgf-scale", type=int, default=None, metavar="S",
            help="window divisor for counting measurements "
                 "(default: REPRO_CGF_SCALE or 16)")
        p.add_argument(
            "--workloads", default=None, metavar="A,B,...",
            help="comma-separated workload subset, or 'all' "
                 "(default: REPRO_WORKLOADS or the built-in subset)")
        p.add_argument(
            "--seed", type=int, default=None, metavar="N",
            help="base RNG seed (default: REPRO_SEED or 0)")
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persistent result-cache directory "
                 "(default: REPRO_CACHE_DIR; unset disables the disk "
                 "cache unless REPRO_CACHE_DIR is set)")
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the on-disk result cache for this run")
        p.add_argument(
            "--profile", action="store_true",
            help="profile the simulation kernel and print a per-phase "
                 "breakdown when the command finishes (in-process runs "
                 "only -- combine with --jobs 1; REPRO_PROFILE=1 works "
                 "too)")

    p_list = sub.add_parser("list", help="print the exhibit names")
    add_shared(p_list)

    p_run = sub.add_parser(
        "run", help="run the named exhibits and print their tables")
    p_run.add_argument("exhibits", nargs="+", metavar="exhibit",
                       help="exhibit names, e.g. table7 fig11")
    add_shared(p_run)

    p_report = sub.add_parser(
        "report", help="run every exhibit and write a markdown report")
    p_report.add_argument("path", nargs="?",
                          default="EXPERIMENTS.generated.md",
                          help="output file "
                               "(default: EXPERIMENTS.generated.md)")
    add_shared(p_report)
    return parser


@contextlib.contextmanager
def _environment(args: argparse.Namespace) -> Iterator[None]:
    """Apply flag overrides to the ``REPRO_*`` environment and restore
    the previous values on exit, so flags beat the environment without
    leaking into the calling process state."""
    saved = {}
    overrides = {var: getattr(args, dest, None)
                 for dest, var in _ENV_FLAGS}
    try:
        for var, value in overrides.items():
            if value is None:
                continue
            saved[var] = os.environ.get(var)
            os.environ[var] = str(value)
        yield
    finally:
        for var, previous in saved.items():
            if previous is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = previous


def _session_for(args: argparse.Namespace) -> SimSession:
    """Build the session the chosen subcommand will submit jobs to."""
    return SimSession(
        cache_dir=getattr(args, "cache_dir", None),
        disk_cache=False if getattr(args, "no_cache", False) else None,
        max_workers=getattr(args, "jobs", None))


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch the CLI arguments; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 0
    if argv[0] == "help":
        argv[0] = "--help"
    # Back-compat: a bare exhibit name is shorthand for `run <name>`.
    if argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "run")
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)
    with _environment(args):
        session = _session_for(args)
        if args.command == "list":
            for name in exhibit_names():
                print(name)
            return 0
        from repro.sim.profile import maybe_profile_from_env
        with maybe_profile_from_env(
                force=getattr(args, "profile", False)) as prof:
            if args.command == "report":
                write_report(args.path, session=session)
            else:
                for name in args.exhibits:
                    try:
                        print(run_exhibit(name, session=session))
                    except KeyError as error:
                        print(error, file=sys.stderr)
                        return 2
        if prof is not None:
            print(prof.report(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
