"""Command-line entry point.

Usage::

    python -m repro list                 # available exhibits
    python -m repro table7               # print one exhibit
    python -m repro fig11 table8         # several exhibits
    python -m repro report [path]        # run everything -> markdown

Scales and workload subsets are controlled by the REPRO_TIME_SCALE /
REPRO_CGF_SCALE / REPRO_WORKLOADS environment variables (see
``repro.experiments``).
"""

from __future__ import annotations

import sys

from repro.report import exhibit_names, run_exhibit, write_report


def main(argv=None) -> int:
    """Dispatch the CLI arguments; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    if argv[0] == "list":
        for name in exhibit_names():
            print(name)
        return 0
    if argv[0] == "report":
        path = argv[1] if len(argv) > 1 else "EXPERIMENTS.generated.md"
        write_report(path)
        return 0
    for name in argv:
        try:
            print(run_exhibit(name))
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
