"""Command-line entry point.

Usage::

    python -m repro list                   # available exhibits
    python -m repro list --experiments     # registered declarations
    python -m repro run table7             # print one exhibit
    python -m repro run fig11 table8       # several exhibits
    python -m repro run --experiment fig11 # planner path, with checks
    python -m repro report [path]          # run everything -> markdown
    python -m repro report --only fig11,table6   # a subset
    python -m repro report --jobs 8        # ... on 8 worker processes

    python -m repro run tc --setup mirza --trace-out trace.json
                                           # one simulation + Perfetto
    python -m repro stats                  # metrics table (tc / mirza)
    python -m repro stats mcf --setup prac-1000
    python -m repro trace --trace-limit 50000

    python -m repro fuzz                   # seeded attack-pattern sweep
    python -m repro fuzz --mitigations trr,mirza-1000 --budget 8
                                           # smaller sweep; same seed =>
                                           # bit-identical report, cells
                                           # cache-hit on rerun

    python -m repro trace convert tc.dramsim3 tc.trace \\
        --workload tc --instructions 11    # ingest an external trace
    python -m repro run tc.trace --setup mirza --backend vector
                                           # replay it, with the
                                           # calibration check printed

Bare exhibit names still work (``python -m repro table7`` is shorthand
for ``python -m repro run table7``).

Every subcommand accepts the shared simulation flags (``--jobs``,
``--time-scale``, ``--cgf-scale``, ``--workloads``, ``--seed``,
``--backend``, ``--cache-dir``, ``--no-cache``, ``--profile``), the
observability
flags (``--metrics``, ``--trace-out``, ``--trace-limit``; see
``docs/observability.md``), and the failure-handling flags
(``--keep-going``/``--fail-fast``, ``--max-retries N``,
``--job-timeout SECONDS``; see the "Failure semantics" section of
``docs/architecture.md``).  ``report`` defaults to ``--keep-going``:
a permanently-failed cell marks its exhibit DEGRADED in the rendered
markdown instead of aborting the run, and completed cells are cached
as they finish so a rerun resumes from where the last one stopped.
Every other subcommand defaults to ``--fail-fast``, which raises after
storing the completed sibling results.  The ``REPRO_*`` environment
variables remain as fallbacks; an explicit flag always wins over the
environment.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import Iterator, List, Optional

from repro.report import exhibit_names, run_exhibit, write_report
from repro.sim.session import FailurePolicy, SimSession

_SUBCOMMANDS = ("list", "run", "report", "stats", "trace", "fuzz")

_DEFAULT_SIM_WORKLOAD = "tc"
_DEFAULT_SIM_SETUP = "mirza-1000"

_ENV_FLAGS = [
    # (argparse dest, environment variable the flag overrides)
    ("time_scale", "REPRO_TIME_SCALE"),
    ("cgf_scale", "REPRO_CGF_SCALE"),
    ("workloads", "REPRO_WORKLOADS"),
    ("seed", "REPRO_SEED"),
    ("backend", "REPRO_KERNEL_BACKEND"),
]


def _build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree (three subcommands, shared flags)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's tables and figures. "
                    "Subcommands: list, run, report.")
    sub = parser.add_subparsers(dest="command")

    def add_shared(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", "-j", type=int, default=None, metavar="N",
            help="worker processes for simulation sweeps "
                 "(default: REPRO_JOBS or 1)")
        p.add_argument(
            "--time-scale", type=int, default=None, metavar="S",
            help="window divisor for timed simulation "
                 "(default: REPRO_TIME_SCALE or 512)")
        p.add_argument(
            "--cgf-scale", type=int, default=None, metavar="S",
            help="window divisor for counting measurements "
                 "(default: REPRO_CGF_SCALE or 16)")
        p.add_argument(
            "--workloads", default=None, metavar="A,B,...",
            help="comma-separated workload subset, or 'all' "
                 "(default: REPRO_WORKLOADS or the built-in subset)")
        p.add_argument(
            "--seed", type=int, default=None, metavar="N",
            help="base RNG seed (default: REPRO_SEED or 0)")
        p.add_argument(
            "--backend", default=None, metavar="NAME",
            help="kernel backend for every simulation: event, array, "
                 "or vector (bit-identical; vector needs numpy>=1.24; "
                 "default: REPRO_KERNEL_BACKEND or event)")
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persistent result-cache directory "
                 "(default: REPRO_CACHE_DIR; unset disables the disk "
                 "cache unless REPRO_CACHE_DIR is set)")
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the on-disk result cache for this run")
        policy = p.add_mutually_exclusive_group()
        policy.add_argument(
            "--keep-going", action="store_true",
            help="a permanently-failed job yields a typed JobFailure "
                 "(a DEGRADED exhibit in reports) instead of aborting "
                 "the batch (default for `report`)")
        policy.add_argument(
            "--fail-fast", action="store_true",
            help="raise on the first permanently-failed job, after "
                 "storing every completed sibling result (default "
                 "for every subcommand except `report`)")
        p.add_argument(
            "--max-retries", type=int, default=None, metavar="N",
            help="re-executions per failed job; retried jobs re-run "
                 "the same pure content, so results stay bit-identical "
                 "(default: REPRO_MAX_RETRIES or 1)")
        p.add_argument(
            "--job-timeout", type=float, default=None, metavar="SEC",
            help="per-job seconds budget in the worker pool; a "
                 "timed-out job consumes a retry and its pool is "
                 "rebuilt (default: REPRO_JOB_TIMEOUT or none)")
        p.add_argument(
            "--profile", action="store_true",
            help="profile the simulation kernel and print a per-phase "
                 "breakdown when the command finishes; with --jobs N "
                 "the workers' profiles are merged into the totals "
                 "(REPRO_PROFILE=1 works too)")
        p.add_argument(
            "--metrics", action="store_true",
            help="collect the kernel metrics registry over every "
                 "simulation and print the aggregated table afterwards "
                 "(REPRO_METRICS=1 works too)")
        p.add_argument(
            "--trace-out", default=None, metavar="FILE",
            help="record structured events and write a Perfetto-"
                 "loadable Chrome trace to FILE (enables REPRO_TRACE)")
        p.add_argument(
            "--trace-limit", type=int, default=None, metavar="N",
            help="ring-buffer capacity for event tracing "
                 "(default: REPRO_TRACE_LIMIT or 200000)")
        p.add_argument(
            "--progress", action="store_true",
            help="print a live progress line (cells done/total, cache "
                 "hit-rate, retries, ETA) to stderr while the batch "
                 "runs")

    p_list = sub.add_parser("list", help="print the exhibit names")
    p_list.add_argument(
        "--experiments", action="store_true",
        help="list the registered experiment declarations (registry "
             "name and description) instead of the display titles")
    add_shared(p_list)

    p_run = sub.add_parser(
        "run", help="run the named exhibits and print their tables, or "
                    "(with --setup) simulate the named workloads")
    p_run.add_argument("exhibits", nargs="*", metavar="exhibit",
                       help="exhibit names, e.g. table7 fig11; with "
                            "--setup: workload names, e.g. tc mcf")
    p_run.add_argument(
        "--setup", default=None, metavar="SETUP",
        help="simulate the positional names as *workloads* under this "
             "mitigation setup (e.g. mirza, prac-1000, baseline) "
             "instead of treating them as exhibits")
    p_run.add_argument(
        "--experiment", action="append", default=None, metavar="NAME",
        help="run the named experiment declaration through the "
             "framework planner and print its table plus the declared "
             "paper-reference checks (repeatable)")
    add_shared(p_run)

    p_report = sub.add_parser(
        "report", help="run every exhibit and write a markdown report")
    p_report.add_argument("path", nargs="?",
                          default="EXPERIMENTS.generated.md",
                          help="output file "
                               "(default: EXPERIMENTS.generated.md)")
    p_report.add_argument(
        "--only", default=None, metavar="A,B,...",
        help="restrict the report to these comma-separated exhibits "
             "(e.g. --only fig11,table6)")
    add_shared(p_report)

    p_stats = sub.add_parser(
        "stats", help="simulate with metrics collection and print the "
                      "aggregated metrics table")
    p_stats.add_argument("targets", nargs="*", metavar="workload",
                         default=[_DEFAULT_SIM_WORKLOAD],
                         help=f"workload names (default: "
                              f"{_DEFAULT_SIM_WORKLOAD})")
    p_stats.add_argument("--setup", default=_DEFAULT_SIM_SETUP,
                         metavar="SETUP",
                         help=f"mitigation setup (default: "
                              f"{_DEFAULT_SIM_SETUP})")
    add_shared(p_stats)

    p_trace = sub.add_parser(
        "trace", help="simulate with event tracing and write a "
                      "Perfetto-loadable Chrome trace")
    p_trace.add_argument("targets", nargs="*", metavar="workload",
                         default=[_DEFAULT_SIM_WORKLOAD],
                         help=f"workload names (default: "
                              f"{_DEFAULT_SIM_WORKLOAD})")
    p_trace.add_argument("--setup", default=_DEFAULT_SIM_SETUP,
                         metavar="SETUP",
                         help=f"mitigation setup (default: "
                              f"{_DEFAULT_SIM_SETUP})")
    p_trace.add_argument("--jsonl-out", default=None, metavar="FILE",
                         help="also write the raw events as JSON-lines")
    add_shared(p_trace)

    p_fuzz = sub.add_parser(
        "fuzz", help="sweep seeded fuzzed attack patterns against "
                     "mitigations and rank max per-row escapes")
    p_fuzz.add_argument(
        "--mitigations", default=None, metavar="A,B,...",
        help="comma-separated fuzz mitigation names, e.g. "
             "trr,prac-1000,mirza-1000 (the default)")
    p_fuzz.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="fuzzed patterns per sweep; each also runs against every "
             "mitigation (default: 16)")
    p_fuzz.add_argument(
        "--acts", type=int, default=None, metavar="N",
        help="attacker ACTs per cell (default: a full refresh window "
             "divided by the time scale, floored at 12000)")
    p_fuzz.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="ranked escapes printed per mitigation (default: 5)")
    add_shared(p_fuzz)
    return parser


@contextlib.contextmanager
def _environment(args: argparse.Namespace) -> Iterator[None]:
    """Apply flag overrides to the ``REPRO_*`` environment and restore
    the previous values on exit, so flags beat the environment without
    leaking into the calling process state."""
    saved = {}
    overrides = {var: getattr(args, dest, None)
                 for dest, var in _ENV_FLAGS}
    if getattr(args, "metrics", False):
        overrides["REPRO_METRICS"] = "1"
    if getattr(args, "trace_out", None):
        overrides["REPRO_TRACE"] = "1"
        # A Perfetto trace carries the session/worker span tracks too.
        overrides["REPRO_SPANS"] = "1"
    if getattr(args, "trace_limit", None):
        overrides["REPRO_TRACE_LIMIT"] = getattr(args, "trace_limit")
    try:
        for var, value in overrides.items():
            if value is None:
                continue
            saved[var] = os.environ.get(var)
            os.environ[var] = str(value)
        yield
    finally:
        for var, previous in saved.items():
            if previous is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = previous


def _session_for(args: argparse.Namespace) -> SimSession:
    """Build the session the chosen subcommand will submit jobs to.

    Failure policy: an explicit ``--keep-going``/``--fail-fast`` wins;
    otherwise ``report`` keeps going (one poisoned cell degrades a
    report, it doesn't destroy it) and everything else fails fast.
    """
    if getattr(args, "keep_going", False):
        policy = FailurePolicy.KEEP_GOING
    elif getattr(args, "fail_fast", False):
        policy = FailurePolicy.FAIL_FAST
    elif getattr(args, "command", None) == "report":
        policy = FailurePolicy.KEEP_GOING
    else:
        policy = FailurePolicy.FAIL_FAST
    progress = None
    if getattr(args, "progress", False):
        from repro.obs.progress import ProgressLine
        progress = ProgressLine()
    return SimSession(
        cache_dir=getattr(args, "cache_dir", None),
        disk_cache=False if getattr(args, "no_cache", False) else None,
        max_workers=getattr(args, "jobs", None),
        failure_policy=policy,
        max_retries=getattr(args, "max_retries", None),
        job_timeout=getattr(args, "job_timeout", None),
        progress=progress)


def _is_trace_target(name: str) -> bool:
    """Path-shaped simulation target: a trace file, not a workload."""
    return (os.path.sep in name or name.endswith(".trace")
            or name.endswith(".gz") or os.path.isfile(name))


def _run_simulations(args: argparse.Namespace,
                     session: SimSession) -> int:
    """Simulate ``args.targets`` under ``args.setup`` and emit whatever
    observability output the flags asked for (metrics table, Chrome
    trace, JSON-lines events).

    Path-shaped targets are replayed as ingested traces
    (:class:`~repro.sim.session.TraceReplayJob`); when such a trace
    carries a ``# workload:`` claim, the measured-vs-Table-IV
    calibration rows are printed after the summary line.
    """
    from repro.params import SimScale
    from repro.sim.registry import setup_by_name
    from repro.sim.session import SimJob, TraceReplayJob, is_failure

    scale = SimScale(int(os.environ.get("REPRO_TIME_SCALE") or 512))
    seed = int(os.environ.get("REPRO_SEED") or 0)
    try:
        setup = setup_by_name(args.setup, scale)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    targets = list(getattr(args, "targets", None)
                   or getattr(args, "exhibits"))
    try:
        jobs = [TraceReplayJob.for_path(name, setup, scale, seed)
                if _is_trace_target(name)
                else SimJob(name, setup, scale, seed)
                for name in targets]
    except OSError as error:
        print(f"trace target: {error}", file=sys.stderr)
        return 2
    trace_out = getattr(args, "trace_out", None)
    recorder = None
    if trace_out:
        # Record session/worker spans parent-side so the Chrome trace
        # carries the batch-execution tracks next to the kernel lanes.
        from repro.obs import spans as obs_spans
        with obs_spans.recording() as recorder:
            results = session.run_many(jobs)
    else:
        results = session.run_many(jobs)
    status = 0

    for name, job, result in zip(targets, jobs, results):
        if is_failure(result):
            print(f"{name}: FAILED — {result.describe()}",
                  file=sys.stderr)
            status = 1
            continue
        ipc = sum(result.ipc) / len(result.ipc) if result.ipc else 0.0
        print(f"{name}: setup={args.setup} requests="
              f"{result.total_requests} acts={result.total_activations}"
              f" row-hit={result.row_hit_rate:.3f} mean-ipc={ipc:.3f}")
        if isinstance(job, TraceReplayJob) and job.workload:
            from repro.workloads.specs import workload_by_name
            from repro.workloads.tracefile import calibration_report
            try:
                spec = workload_by_name(job.workload)
            except KeyError:
                print(f"{name}: claims unknown workload "
                      f"{job.workload!r}; skipping calibration",
                      file=sys.stderr)
                continue
            for label, measured, paper, ok in \
                    calibration_report(result, spec):
                print(f"calibration[{job.workload}]: {label} "
                      f"measured {measured:.1f}, paper {paper} -> "
                      f"{'ok' if ok else 'DEV'}")
    results = [r for r in results if not is_failure(r)]

    snapshots = [r.metrics for r in results if r.metrics]
    if snapshots:
        from repro.obs import merge_snapshots, render_metrics_report
        # The session-local batch gauges (cache hit-rate, pool
        # utilization, queue depth) ride along in the same table.
        merged = merge_snapshots(snapshots + [session.obs_snapshot()])
        print()
        print(render_metrics_report(merged))
    elif getattr(args, "command", None) == "stats":
        print("stats: no metrics were recorded (every job failed or "
              "was skipped); nothing to report", file=sys.stderr)
        return 3

    if trace_out:
        from repro.obs import export as obs_export
        events = []
        for result in results:
            events.extend(result.trace_events or [])
        spans = recorder.as_list() if recorder is not None else None
        obs_export.write_chrome_trace(events, trace_out, spans=spans)
        print(f"wrote {len(events)} events and "
              f"{len(spans or [])} spans to {trace_out} "
              f"(load in https://ui.perfetto.dev)", file=sys.stderr)
        jsonl_out = getattr(args, "jsonl_out", None)
        if jsonl_out:
            obs_export.write_jsonl(events, jsonl_out)
            print(f"wrote JSONL events to {jsonl_out}", file=sys.stderr)
    return status


@contextlib.contextmanager
def _trace_capture(trace_out):
    """Scope kernel tracing + span recording over a block and write the
    merged Chrome trace to ``trace_out`` on clean exit.  A no-op scope
    when ``trace_out`` is falsy."""
    if not trace_out:
        yield
        return
    from repro.obs import export as obs_export
    from repro.obs import spans as obs_spans
    from repro.obs import trace as obs_trace
    with obs_trace.tracing() as buf, obs_spans.recording() as rec:
        yield
    obs_export.write_chrome_trace(buf.as_list(), trace_out,
                                  spans=rec.as_list())
    print(f"wrote {len(buf)} events and {len(rec.spans)} spans to "
          f"{trace_out} (load in https://ui.perfetto.dev)",
          file=sys.stderr)


def _trace_convert(argv: List[str]) -> int:
    """The ``repro trace convert`` verb: external trace -> native.

    Handled before the argparse tree because ``trace`` is otherwise
    the Perfetto-tracing subcommand; ``trace convert`` is the only
    form with a second positional verb, so the dispatch is
    unambiguous.
    """
    from repro.workloads.tracefile import TRACE_FORMATS, convert_trace

    parser = argparse.ArgumentParser(
        prog="repro trace convert",
        description="Convert an external memory trace (DRAMSim3 "
                    "command trace, litex row list) into the native "
                    "replayable format.  '.gz' inputs and outputs "
                    "are compressed transparently.")
    parser.add_argument("input", help="source trace file")
    parser.add_argument("output", help="native trace to write")
    parser.add_argument(
        "--format", default="auto", metavar="FMT",
        choices=("auto",) + TRACE_FORMATS,
        help="input format: auto (from the suffix), native, "
             "dramsim3, or litex-rows (default: auto)")
    parser.add_argument(
        "--workload", default=None, metavar="NAME",
        help="Table IV spec this trace claims to represent; recorded "
             "as '# workload:' metadata for the calibration check")
    parser.add_argument(
        "--instructions", type=int, default=1, metavar="N",
        help="instructions attributed to each miss (Table IV: "
             "round(1000 / L3-MPKI); default: 1)")
    parser.add_argument(
        "--cycle-ps", type=int, default=None, metavar="PS",
        help="picoseconds per trace cycle for dramsim3 timestamps "
             "(default: 833, i.e. a 1.2 GHz command clock)")
    parser.add_argument(
        "--bank", type=int, default=0, metavar="N",
        help="bank for litex-rows entries (default: 0)")
    parser.add_argument(
        "--subchannel", type=int, default=0, metavar="N",
        help="subchannel for litex-rows entries (default: 0)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)
    kwargs = {}
    if args.cycle_ps is not None:
        kwargs["cycle_ps"] = args.cycle_ps
    try:
        count = convert_trace(
            args.input, args.output, fmt=args.format,
            workload=args.workload, instructions=args.instructions,
            bank=args.bank, subchannel=args.subchannel, **kwargs)
    except (OSError, ValueError) as error:
        print(f"trace convert: {error}", file=sys.stderr)
        return 2
    claim = f" (workload: {args.workload})" if args.workload else ""
    print(f"wrote {count} entries to {args.output}{claim}")
    return 0


def _run_fuzz(args: argparse.Namespace, session: SimSession) -> int:
    """The ``repro fuzz`` verb: a seeded attack-parameter sweep.

    The report on stdout is a pure function of the spec (seed, budget,
    acts, mitigations): rerunning with the same flags prints a
    bit-identical ranking, with every cell served from the cache.
    Batch statistics go to stderr so they never perturb that contract.
    """
    from repro.security.fuzz import FuzzSpec, default_acts, run_fuzz

    time_scale = int(os.environ.get("REPRO_TIME_SCALE") or 512)
    seed = int(os.environ.get("REPRO_SEED") or 0)
    kwargs = dict(seed=seed,
                  acts=(args.acts if args.acts is not None
                        else default_acts(time_scale)))
    if args.mitigations:
        kwargs["mitigations"] = tuple(
            name for name in args.mitigations.split(",") if name)
    if args.budget is not None:
        kwargs["budget"] = args.budget
    spec = FuzzSpec(**kwargs)
    report = run_fuzz(spec, session=session)
    print(report.render(top=args.top))
    batch = session.last_batch
    if batch is not None:
        print(f"fuzz: {batch.submitted} cells, {batch.unique} unique, "
              f"{batch.cache_hits} from cache", file=sys.stderr)
    return 1 if report.failed else 0


def _run_experiments(names: List[str], session: SimSession) -> int:
    """Plan the named experiment declarations as one deduplicated
    batch, then print each rendered table with its declared
    paper-reference checks and the plan's dedup statistics."""
    from repro.experiments import framework

    try:
        plan = framework.plan(names, session=session)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    plan.execute()
    wanted = {framework.canonical_name(n) for n in names}
    for experiment in plan.experiments():
        if framework.canonical_name(experiment.name) not in wanted:
            continue  # dependency pulled in by `needs`, not asked for
        result = plan.results[experiment.name]
        print(framework.render_experiment(experiment, result))
        for dev in framework.evaluate_checks(experiment, result):
            print(f"  {dev.flag}: {dev.label} — measured "
                  f"{dev.measured:g}, paper {dev.paper:g}")
        print()
    stats = plan.stats
    line = (f"planned {stats.planned_cells} cells -> "
            f"{stats.unique_jobs} unique jobs "
            f"({stats.deduplicated} deduplicated) in "
            f"{plan.wall_time:.1f}s")
    batch = plan.batch
    if batch is not None and (batch.failed or batch.retried
                              or batch.timed_out):
        line += (f"; {batch.failed} failed, {batch.retried} retried, "
                 f"{batch.timed_out} timed out")
    print(line, file=sys.stderr)
    return 1 if plan.degraded() else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch the CLI arguments; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 0
    if argv[0] == "help":
        argv[0] = "--help"
    if argv[:2] == ["trace", "convert"]:
        return _trace_convert(argv[2:])
    # Back-compat: a bare exhibit name is shorthand for `run <name>`.
    if argv[0] not in _SUBCOMMANDS and not argv[0].startswith("-"):
        argv.insert(0, "run")
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as error:
        return int(error.code or 0)
    # `stats` is `run` with metrics forced on; `trace` defaults the
    # Chrome-trace destination so a bare `python -m repro trace` works.
    if args.command == "stats":
        args.metrics = True
    elif args.command == "trace" and not args.trace_out:
        args.trace_out = "trace.json"
    with _environment(args), contextlib.ExitStack() as stack:
        session = _session_for(args)
        if session.progress is not None \
                and hasattr(session.progress, "close"):
            stack.callback(session.progress.close)
        if args.command == "list":
            if getattr(args, "experiments", False):
                from repro.experiments import framework
                for exp in framework.available_experiments():
                    print(f"{exp.name}: {exp.description}")
            else:
                for name in exhibit_names():
                    print(name)
            return 0
        from repro.sim.profile import maybe_profile_from_env
        from repro.sim.session import JobFailed
        with maybe_profile_from_env(
                force=getattr(args, "profile", False)) as prof:
            status = 0
            try:
                if args.command == "report":
                    only = getattr(args, "only", None)
                    only = ([n for n in only.split(",") if n.strip()]
                            if only else None)
                    with _trace_capture(
                            getattr(args, "trace_out", None)):
                        write_report(args.path, only=only,
                                     session=session)
                elif args.command == "fuzz":
                    status = _run_fuzz(args, session)
                elif args.command in ("stats", "trace") or (
                        args.command == "run" and args.setup):
                    status = _run_simulations(args, session)
                else:
                    names = list(args.exhibits)
                    names.extend(getattr(args, "experiment", None)
                                 or [])
                    if not names:
                        print("run: name at least one exhibit (or "
                              "pass --experiment NAME)",
                              file=sys.stderr)
                        return 2
                    with _trace_capture(
                            getattr(args, "trace_out", None)):
                        if getattr(args, "experiment", None):
                            status = _run_experiments(names, session)
                        else:
                            for name in names:
                                try:
                                    print(run_exhibit(
                                        name, session=session))
                                except KeyError as error:
                                    print(error, file=sys.stderr)
                                    return 2
            except JobFailed as error:
                # fail_fast: completed siblings are already cached, so
                # a rerun resumes from where this batch died.
                print(f"error: {error.failure.describe()}",
                      file=sys.stderr)
                print("(completed jobs were cached; rerun to resume, "
                      "or pass --keep-going to degrade instead of "
                      "aborting)", file=sys.stderr)
                return 1
        if prof is not None:
            print(prof.report(), file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
