"""MIRZA: the paper's primary contribution.

MIRZA composes four pieces (Figure 8):

- :mod:`repro.core.rct`     -- the Region Count Table: coarse-grained
  per-region activation counters with the Filtering Threshold (FTH) and
  the safe-reset protocol of Appendix B.
- :mod:`repro.core.mint`    -- the MINT window sampler: uniform random
  selection of one activation per window of W.
- :mod:`repro.core.mirza_q` -- the per-bank mitigation queue with
  tardiness counters and the Queue Tardiness Threshold (QTH).
- :mod:`repro.core.mirza`   -- the assembled per-bank tracker that raises
  ALERT-Back-Off reactively.

:mod:`repro.core.config` provisions configurations (Table VII) from a
target double-sided Rowhammer threshold.
"""

from repro.core.config import MirzaConfig
from repro.core.mint import MintSampler
from repro.core.mirza import MirzaTracker
from repro.core.mirza_q import MirzaQueue
from repro.core.rct import RegionCountTable, ResetPolicy

__all__ = [
    "MintSampler",
    "MirzaConfig",
    "MirzaQueue",
    "MirzaTracker",
    "RegionCountTable",
    "ResetPolicy",
]
