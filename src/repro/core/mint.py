"""MINT: the Minimalist In-DRAM Tracker's window sampler (Figure 2).

MINT operates on a window of ``W`` activations.  At the start of each
window it draws one index uniformly at random from ``[0, W)``; the
activation arriving at that index is *selected* for mitigation.  Exactly
one activation is selected per window, so an attacker hammering a row
``d`` times within a window escapes selection with probability
``1 - d/W`` -- the quantity the security model in
:mod:`repro.security.mint_model` is built on.

The sampler is deliberately tiny: a position counter and a target index.
That is the entire per-bank tracking state of MINT, which is why it
needs only a single entry of storage.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.obs import metrics as _metrics


class MintSampler:
    """Selects one of every ``window`` observed activations at random."""

    __slots__ = ("window", "rng", "_position", "_target",
                 "windows_completed", "observed", "selected",
                 "_m_observed", "_m_selected")

    def __init__(self, window: int, rng: Optional[random.Random] = None
                 ) -> None:
        if window < 1:
            raise ValueError("MINT window must be at least 1")
        self.window = window
        self.rng = rng if rng is not None else random.Random(0)
        self._position = 0
        self._target = self.rng.randrange(self.window)
        self.windows_completed = 0
        self.observed = 0
        self.selected = 0
        reg = _metrics._ACTIVE
        if reg is not None:
            self._m_observed = reg.counter("mint.observed")
            self._m_selected = reg.counter("mint.selected")
        else:
            self._m_observed = self._m_selected = None

    def observe(self, row: int) -> Optional[int]:
        """Observe one activation; return ``row`` iff it was selected.

        The caller receives the selected row *at the moment of the
        selected activation* -- in MIRZA the row is enqueued immediately
        (Section V-A); in classic MINT the caller holds it until the next
        mitigation opportunity.
        """
        self.observed += 1
        counter = self._m_observed
        if counter is not None:
            counter.value += 1
        picked = None
        if self._position == self._target:
            picked = row
            self.selected += 1
            counter = self._m_selected
            if counter is not None:
                counter.value += 1
        self._position += 1
        if self._position == self.window:
            self._position = 0
            self._target = self.rng.randrange(self.window)
            self.windows_completed += 1
        return picked

    def observe_many(self, rows: Sequence[int]) -> List[int]:
        """Observe a run of activations; return the selected rows in order.

        Bit-identical to calling :meth:`observe` per entry -- the same
        selections fall out, ``windows_completed`` advances identically,
        and exactly one ``randrange`` is drawn per completed window in
        the same sequence -- but window boundaries are skipped over
        arithmetically instead of counted one ACT at a time.  ``rows``
        may be any indexable sequence, including a numpy array (the
        closed-form sweep only measures and indexes it); selected rows
        are returned as plain ints either way.
        """
        n = len(rows)
        if n == 0:
            return []
        self.observed += n
        counter = self._m_observed
        if counter is not None:
            counter.value += n
        picked: List[int] = []
        pos = self._position
        target = self._target
        window = self.window
        randrange = self.rng.randrange
        i = 0
        while i < n:
            remaining = window - pos
            if target >= pos:
                idx = i + (target - pos)
                if idx < n:
                    picked.append(int(rows[idx]))
            if remaining <= n - i:
                i += remaining
                pos = 0
                target = randrange(window)
                self.windows_completed += 1
            else:
                pos += n - i
                break
        self._position = pos
        self._target = target
        if picked:
            self.selected += len(picked)
            counter = self._m_selected
            if counter is not None:
                counter.value += len(picked)
        return picked

    def acts_until_nth_selection(self, n: int) -> int:
        """Earliest future observation (1-based) that can be the ``n``-th
        selection.

        A lower bound: the current window's pending target is exact, but
        later windows assume their random target lands on the first slot.
        Used by the array backend to bound how long MIRZA's queue can go
        unpolled.
        """
        if n <= 0:
            return 0
        window = self.window
        to_window_end = window - self._position
        if self._target >= self._position:
            if n == 1:
                return self._target - self._position + 1
            return to_window_end + (n - 2) * window + 1
        return to_window_end + (n - 1) * window + 1

    @property
    def selection_probability(self) -> float:
        """Long-run probability that any given activation is selected."""
        return 1.0 / self.window

    def storage_bits(self, row_bits: int = 17) -> int:
        """Tracking state: one row id plus the position/target counters."""
        window_bits = max(1, (self.window - 1).bit_length())
        return row_bits + 2 * window_bits
