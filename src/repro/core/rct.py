"""The Region Count Table: coarse-grained filtering with safe reset.

The RCT holds one saturating counter per *region* (a group of
physically-contiguous rows, one subarray by default).  Every activation
looks up its region's counter:

- counter <= FTH: the counter is incremented and the activation is
  **filtered** -- it does not participate in any mitigation (this is the
  case for >99% of benign activations under strided mapping);
- counter > FTH: the counter saturates and the activation **escapes**
  the filter, participating in MINT's probabilistic selection.

Counters must be reset once per refresh window, synchronised with the
demand-refresh sweep of the region.  Appendix B shows that resetting on
the *first* REF of the region (eager) or the *last* (lazy) both leak up
to ``2*(FTH-1)`` unfiltered activations; the safe policy copies the
counter into a Refreshed-Region-Counter (RRC) register when the region's
sweep begins, resets the table entry, mirrors updates into both, and
uses the RRC for the filtering decision while the sweep is in flight.
All three policies are implemented so the security tests can demonstrate
the gap (``benchmarks/test_ablation_rct_reset.py``).

Edge rule (Section VI-B footnote): when the region size is smaller than
a subarray, an activation to a row at a region boundary also increments
the neighbouring region's counter, so a victim row at the edge cannot
have its two aggressors tracked by two different half-full counters.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.dram.refresh import RefreshSlice
from repro.obs import metrics as _metrics
from repro.params import DramGeometry


class ResetPolicy(enum.Enum):
    """When the RCT entry of a region under refresh gets reset."""

    SAFE = "safe"
    EAGER = "eager"
    LAZY = "lazy"


class RegionCountTable:
    """Per-region saturating activation counters with FTH filtering."""

    __slots__ = ("num_regions", "fth", "geometry", "reset_policy",
                 "region_size", "_counters", "_rrc", "_refreshing_region",
                 "filtered_acts", "escaped_acts", "_edge_possible",
                 "_m_filtered", "_m_escaped", "_m_resets")

    def __init__(self, num_regions: int, fth: int,
                 geometry: DramGeometry = DramGeometry(),
                 reset_policy: ResetPolicy = ResetPolicy.SAFE) -> None:
        if num_regions < 1:
            raise ValueError("need at least one region")
        if geometry.rows_per_bank % num_regions:
            raise ValueError("num_regions must divide rows_per_bank")
        if fth < 0:
            raise ValueError("FTH must be non-negative")
        self.num_regions = num_regions
        self.fth = fth
        self.geometry = geometry
        self.reset_policy = reset_policy
        self.region_size = geometry.rows_per_bank // num_regions
        self._counters: List[int] = [0] * num_regions
        self._rrc: int = 0
        self._edge_possible = self.region_size < geometry.rows_per_subarray
        self._refreshing_region: Optional[int] = None
        self.filtered_acts = 0
        self.escaped_acts = 0
        reg = _metrics._ACTIVE
        if reg is not None:
            self._m_filtered = reg.counter("rct.filtered")
            self._m_escaped = reg.counter("rct.escaped")
            self._m_resets = reg.counter("rct.resets")
        else:
            self._m_filtered = self._m_escaped = self._m_resets = None

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def region_of(self, physical_row: int) -> int:
        """Region index of a bank-local physical row index."""
        return physical_row // self.region_size

    def _edge_neighbor_region(self, physical_row: int) -> Optional[int]:
        """Region sharing a blast radius with ``physical_row``, if any.

        Only region boundaries *inside* a subarray matter: subarrays are
        electrically isolated, so a boundary aligned with a subarray edge
        cannot be hammered across.
        """
        if self.region_size >= self.geometry.rows_per_subarray:
            return None
        offset = physical_row % self.region_size
        region = self.region_of(physical_row)
        pos_in_sa = physical_row % self.geometry.rows_per_subarray
        if offset == 0 and pos_in_sa != 0:
            return region - 1
        last = self.region_size - 1
        if offset == last and pos_in_sa != self.geometry.rows_per_subarray - 1:
            return region + 1
        return None

    # ------------------------------------------------------------------
    # Counter access
    # ------------------------------------------------------------------
    def count(self, region: int) -> int:
        """Effective counter used for the filtering decision."""
        if (self.reset_policy is ResetPolicy.SAFE
                and region == self._refreshing_region):
            return self._rrc
        return self._counters[region]

    def _bump(self, region: int) -> None:
        """Increment a region counter, saturating at FTH + 1."""
        if self._counters[region] <= self.fth:
            self._counters[region] += 1
        if (self.reset_policy is ResetPolicy.SAFE
                and region == self._refreshing_region
                and self._rrc <= self.fth):
            self._rrc += 1

    def on_activate(self, physical_row: int) -> bool:
        """Record an ACT; return True iff it escapes the filter.

        An escaping activation participates in MINT selection; a filtered
        one needs no mitigation at all.
        """
        region = physical_row // self.region_size
        escaped = self.count(region) > self.fth
        self._bump(region)
        if self._edge_possible:
            neighbor = self._edge_neighbor_region(physical_row)
            if neighbor is not None and 0 <= neighbor < self.num_regions:
                self._bump(neighbor)
        if escaped:
            self.escaped_acts += 1
            counter = self._m_escaped
        else:
            self.filtered_acts += 1
            counter = self._m_filtered
        if counter is not None:
            counter.value += 1
        return escaped

    def on_activates(self, physical_rows: Sequence[int]) -> List[bool]:
        """Record a run of ACTs; return each one's escape decision.

        REF slices bound every deferred run, so the reset state machine
        cannot advance mid-run; when no edge bumping applies and no SAFE
        sweep is in flight, the filtering decision reduces to plain
        per-region counters and the whole run is processed in one tight
        loop.  Otherwise each ACT takes the full :meth:`on_activate`
        path, preserving bit-identity in the exotic configurations.
        """
        if self._edge_possible or (self.reset_policy is ResetPolicy.SAFE
                                   and self._refreshing_region is not None):
            on_activate = self.on_activate
            return [on_activate(p) for p in physical_rows]
        counters = self._counters
        fth = self.fth
        size = self.region_size
        out: List[bool] = []
        append = out.append
        escaped_n = 0
        for physical_row in physical_rows:
            region = physical_row // size
            count = counters[region]
            if count > fth:
                append(True)
                escaped_n += 1
            else:
                counters[region] = count + 1
                append(False)
        filtered_n = len(out) - escaped_n
        self.escaped_acts += escaped_n
        self.filtered_acts += filtered_n
        counter = self._m_escaped
        if counter is not None:
            counter.value += escaped_n
            self._m_filtered.value += filtered_n
        return out

    def on_activates_array(self, physical_rows):
        """Vectorized escape decisions over a numpy run of physical rows.

        Returns a numpy bool array (True = escaped), or ``None`` --
        *before touching any state* -- when the run needs the per-ACT
        path (edge bumping configured, or a SAFE sweep in flight), so
        the caller can fall back to :meth:`on_activates` wholesale.

        The per-ACT semantics reduce to arithmetic: within a run the
        ``j``-th occurrence (0-based) of a region escapes iff the
        region's entry counter plus ``j`` exceeds FTH, and the counter
        lands at ``min(entry + occurrences, FTH + 1)``.  Occurrence
        indices come from a stable argsort by region: positions minus
        their group's start index.
        """
        if self._edge_possible or (self.reset_policy is ResetPolicy.SAFE
                                   and self._refreshing_region is not None):
            return None
        n = len(physical_rows)
        if n == 0:
            return _np.zeros(0, dtype=bool)
        regions = physical_rows // self.region_size
        counters = self._counters
        entry = _np.asarray(counters, dtype=_np.int64)
        order = _np.argsort(regions, kind="stable")
        sorted_regions = regions[order]
        boundaries = _np.empty(n, dtype=bool)
        boundaries[0] = True
        _np.not_equal(sorted_regions[1:], sorted_regions[:-1],
                      out=boundaries[1:])
        starts = _np.flatnonzero(boundaries)
        group_of = _np.cumsum(boundaries) - 1
        occ_sorted = _np.arange(n, dtype=_np.int64) - starts[group_of]
        escapes_sorted = (entry[sorted_regions] + occ_sorted) > self.fth
        escapes = _np.empty(n, dtype=bool)
        escapes[order] = escapes_sorted
        group_sizes = _np.diff(_np.append(starts, n))
        saturation = self.fth + 1
        for region, k in zip(sorted_regions[starts].tolist(),
                             group_sizes.tolist()):
            final = counters[region] + k
            counters[region] = final if final < saturation else saturation
        escaped_n = int(escapes_sorted.sum())
        filtered_n = n - escaped_n
        self.escaped_acts += escaped_n
        self.filtered_acts += filtered_n
        counter = self._m_escaped
        if counter is not None:
            counter.value += escaped_n
            self._m_filtered.value += filtered_n
        return escapes

    # ------------------------------------------------------------------
    # Refresh-synchronised reset
    # ------------------------------------------------------------------
    def on_ref_slice(self, slice_: RefreshSlice) -> None:
        """Advance the reset state machine with one REF's sweep slice."""
        start_region = self.region_of(slice_.physical_start)
        end_region = self.region_of(slice_.physical_end - 1)
        for region in range(start_region, end_region + 1):
            first = region * self.region_size
            last = first + self.region_size  # exclusive
            begins = slice_.physical_start <= first < slice_.physical_end
            ends = slice_.physical_start < last <= slice_.physical_end
            reset = False
            if self.reset_policy is ResetPolicy.EAGER:
                if begins:
                    self._counters[region] = 0
                    reset = True
            elif self.reset_policy is ResetPolicy.LAZY:
                if ends:
                    self._counters[region] = 0
                    reset = True
            else:  # SAFE
                if begins:
                    self._rrc = self._counters[region]
                    self._counters[region] = 0
                    self._refreshing_region = region
                    reset = True
                if ends and self._refreshing_region == region:
                    self._refreshing_region = None
            if reset and self._m_resets is not None:
                self._m_resets.value += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def counter_bits(self) -> int:
        """Bits per counter: enough to hold the saturation value FTH+1."""
        return max(1, (self.fth + 1).bit_length())

    def storage_bits(self) -> int:
        """Table bits plus the RRC register."""
        return self.num_regions * self.counter_bits + self.counter_bits

    def escape_fraction(self) -> float:
        """Fraction of observed ACTs that escaped the filter."""
        total = self.filtered_acts + self.escaped_acts
        return self.escaped_acts / total if total else 0.0
