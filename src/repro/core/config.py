"""MIRZA configuration: provisioning for a target Rowhammer threshold.

:class:`MirzaConfig` bundles every knob of the mechanism.  Two ways to
get one:

- :meth:`MirzaConfig.paper_config` returns the exact Table VII presets
  (TRHD 2000/1000/500) used throughout the paper's evaluation;
- :meth:`MirzaConfig.solve` derives a configuration from first
  principles using the security model of Section VI, which lands within
  rounding distance of the presets (the Table VII bench prints both).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import AboTimings, DramGeometry
from repro.security.area import (
    mirza_storage_bytes_per_bank,
    rct_counter_bits,
)
from repro.security.mint_model import (
    MINT_FAILURE_EXPONENT,
    mint_window_for_trhd,
)
from repro.security.mirza_model import mirza_safe_trhd, solve_fth

_PAPER_CONFIGS = {
    2000: dict(fth=3330, mint_window=16, num_regions=64),
    1000: dict(fth=1500, mint_window=12, num_regions=128),
    500: dict(fth=660, mint_window=8, num_regions=256),
}
"""Table VII: TRHD -> (FTH, MINT-W, Regions/Bank)."""


@dataclass(frozen=True)
class MirzaConfig:
    """All MIRZA parameters for one bank."""

    trhd: int
    fth: int
    mint_window: int
    num_regions: int
    queue_entries: int = 4
    qth: int = 16

    @classmethod
    def paper_config(cls, trhd: int) -> "MirzaConfig":
        """The Table VII preset for TRHD in {2000, 1000, 500}."""
        try:
            preset = _PAPER_CONFIGS[trhd]
        except KeyError:
            raise ValueError(
                f"no Table VII preset for TRHD={trhd}; use solve()") \
                from None
        return cls(trhd=trhd, **preset)

    @classmethod
    def solve(cls, trhd: int, mint_window: int = None,
              num_regions: int = None, queue_entries: int = 4,
              qth: int = 16, abo: AboTimings = AboTimings(),
              geometry: DramGeometry = DramGeometry(),
              fail_exponent: float = MINT_FAILURE_EXPONENT
              ) -> "MirzaConfig":
        """Derive a safe configuration for ``trhd`` from the model.

        When ``mint_window`` is omitted we follow the paper's heuristic
        of scaling the window with the threshold (W = 8/12/16 at
        TRHD 500/1000/2000, i.e. one window step per octave) by picking
        the largest window whose MINT threshold stays below a third of
        the target; ``num_regions`` defaults to one region per subarray
        scaled inversely with the threshold as in Table VII.
        """
        if mint_window is None:
            budget = max(1, trhd // 3)
            mint_window = max(4, mint_window_for_trhd(budget,
                                                      fail_exponent))
        if num_regions is None:
            base = geometry.subarrays_per_bank
            if trhd >= 2000:
                num_regions = base // 2
            elif trhd >= 1000:
                num_regions = base
            else:
                num_regions = base * 2
        fth = solve_fth(trhd, mint_window, qth, abo, fail_exponent)
        return cls(trhd=trhd, fth=fth, mint_window=mint_window,
                   num_regions=num_regions, queue_entries=queue_entries,
                   qth=qth)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def safe_trhd(self, abo: AboTimings = AboTimings(),
                  fail_exponent: float = MINT_FAILURE_EXPONENT) -> int:
        """Smallest TRHD this configuration provably tolerates."""
        return mirza_safe_trhd(self.fth, self.mint_window, self.qth, abo,
                               fail_exponent)

    def is_safe(self, abo: AboTimings = AboTimings(),
                fail_exponent: float = MINT_FAILURE_EXPONENT) -> bool:
        """True when the configured TRHD meets the security bound."""
        return self.trhd >= self.safe_trhd(abo, fail_exponent)

    @property
    def counter_bits(self) -> int:
        """Bits per RCT counter."""
        return rct_counter_bits(self.fth)

    @property
    def storage_bytes_per_bank(self) -> float:
        """Total SRAM bytes per bank (Table VII's last column)."""
        return mirza_storage_bytes_per_bank(self.num_regions, self.fth)

    def region_size(self, geometry: DramGeometry = DramGeometry()) -> int:
        """Rows per region for this configuration."""
        return geometry.rows_per_bank // self.num_regions

    def scaled(self, time_scale: int) -> "MirzaConfig":
        """Configuration for a ``tREFW / time_scale`` observation window.

        FTH is a per-window count, so it scales with the window; all
        other knobs are window-independent.  ``time_scale = 1`` is the
        identity.  See :class:`repro.params.SimScale`.
        """
        if time_scale == 1:
            return self
        return MirzaConfig(
            trhd=self.trhd, fth=max(1, self.fth // time_scale),
            mint_window=self.mint_window, num_regions=self.num_regions,
            queue_entries=self.queue_entries, qth=self.qth)
