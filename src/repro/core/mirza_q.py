"""MIRZA-Q: the per-bank mitigation queue with tardiness counters.

Rows selected by MINT wait in this queue until an ALERT provides
mitigation time.  Each entry carries a *tardiness counter*: the number
of activations the buffered row has received since insertion (entries
are unique; a repeat activation increments the counter instead of
inserting a duplicate).  An ALERT must be raised when

- the queue is full (so a new selection would have nowhere to go), or
- any entry's tardiness exceeds the Queue Tardiness Threshold (QTH),
  bounding the unmitigated activations a queued row can accrue
  (Phase C of the security analysis, Section VI-A).

On ALERT the bank mitigates the entry with the **highest** tardiness
count -- this is what caps the Feinting-style Phase-D accrual at
``QTH + 2 * acts_between_alerts - 1`` (the ``Q+7`` of Figure 10).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import metrics as _metrics


class MirzaQueue:
    """Bounded set of (row -> tardiness count) pending mitigations."""

    __slots__ = ("capacity", "qth", "_entries", "insertions",
                 "dropped_insertions", "evictions",
                 "_m_inserts", "_m_drops", "_m_evictions", "_m_occupancy")

    def __init__(self, capacity: int = 4, qth: int = 16) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if qth < 1:
            raise ValueError("QTH must be at least 1")
        self.capacity = capacity
        self.qth = qth
        self._entries: Dict[int, int] = {}
        self.insertions = 0
        self.dropped_insertions = 0
        self.evictions = 0
        reg = _metrics._ACTIVE
        if reg is not None:
            self._m_inserts = reg.counter("mirza_q.inserts")
            self._m_drops = reg.counter("mirza_q.drops")
            self._m_evictions = reg.counter("mirza_q.evictions")
            self._m_occupancy = reg.gauge("mirza_q.occupancy")
        else:
            self._m_inserts = self._m_drops = None
            self._m_evictions = self._m_occupancy = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, row: int) -> bool:
        return row in self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def tardiness(self, row: int) -> int:
        """Current tardiness count of ``row`` (0 if not queued)."""
        return self._entries.get(row, 0)

    def on_activate(self, row: int) -> bool:
        """Bump ``row``'s tardiness if queued; return True if it was."""
        if row in self._entries:
            self._entries[row] += 1
            return True
        return False

    def insert(self, row: int) -> bool:
        """Enqueue a MINT-selected row with a count of 1 (Section V-A).

        Returns False (and counts a drop) if the queue is full -- with
        ``MINT-W >= acts_between_alerts`` this never happens in steady
        state (Section V-D), and the tests assert as much.
        """
        if row in self._entries:
            self._entries[row] += 1
            return True
        if self.full:
            self.dropped_insertions += 1
            if self._m_drops is not None:
                self._m_drops.value += 1
            return False
        self._entries[row] = 1
        self.insertions += 1
        counter = self._m_inserts
        if counter is not None:
            counter.value += 1
            self._m_occupancy.set(len(self._entries))
        return True

    def wants_alert(self) -> bool:
        """True when the queue must request mitigation time."""
        entries = self._entries
        if len(entries) >= self.capacity:
            return True
        qth = self.qth
        for count in entries.values():
            if count > qth:
                return True
        return False

    def pop_max(self) -> Optional[int]:
        """Remove and return the entry with the highest tardiness."""
        if not self._entries:
            return None
        row = max(self._entries, key=lambda r: (self._entries[r], -r))
        del self._entries[row]
        self.evictions += 1
        counter = self._m_evictions
        if counter is not None:
            counter.value += 1
            self._m_occupancy.set(len(self._entries))
        return row

    def max_tardiness(self) -> int:
        """Highest tardiness among queued entries (0 when empty)."""
        return max(self._entries.values(), default=0)

    def storage_bits(self, row_bits: int = 17) -> int:
        """Queue storage: row id + tardiness counter + valid, per entry."""
        count_bits = max(1, (self.qth + 1).bit_length()) + 2
        return self.capacity * (row_bits + count_bits + 1)
