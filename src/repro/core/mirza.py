"""The assembled MIRZA tracker: RCT -> MINT -> MIRZA-Q -> ALERT.

One :class:`MirzaTracker` instance protects one bank (Figure 8).  An
activation takes one of three paths (Section V-B):

1. The RCT counter is at or below FTH: the counter is incremented and
   nothing else happens -- the activation is filtered.
2. The row is already buffered in MIRZA-Q: its tardiness counter is
   incremented.
3. The RCT counter exceeds FTH and the row is not queued: the row
   participates in MINT's probabilistic selection and, if selected, is
   enqueued.

The tracker raises ``wants_alert`` when MIRZA-Q is full or any entry's
tardiness exceeds QTH; the device then runs the ABO sequence and calls
``on_mitigation_slot`` with ``ALERT``, which evicts and mitigates the
highest-tardiness entry.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.core.config import MirzaConfig
from repro.core.mint import MintSampler
from repro.core.mirza_q import MirzaQueue
from repro.core.rct import RegionCountTable, ResetPolicy
from repro.dram.mapping import RowToSubarrayMapping, StridedR2SA
from repro.dram.refresh import RefreshSlice
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.params import DramGeometry


class MirzaTracker(BankTracker):
    """Per-bank MIRZA mitigation engine."""

    name = "mirza"

    __slots__ = ("config", "geometry", "mapping", "rct", "mint", "queue",
                 "acts_observed")

    def __init__(self, config: MirzaConfig,
                 geometry: DramGeometry = DramGeometry(),
                 mapping: Optional[RowToSubarrayMapping] = None,
                 rng: Optional[random.Random] = None,
                 reset_policy: ResetPolicy = ResetPolicy.SAFE) -> None:
        self.config = config
        self.geometry = geometry
        self.mapping = mapping if mapping is not None else StridedR2SA(
            geometry)
        self.rct = RegionCountTable(config.num_regions, config.fth,
                                    geometry, reset_policy)
        self.mint = MintSampler(config.mint_window,
                                rng if rng is not None else random.Random(0))
        self.queue = MirzaQueue(config.queue_entries, config.qth)
        self.acts_observed = 0

    def on_activate(self, row: int, now_ps: int) -> None:
        self.acts_observed += 1
        physical = self.mapping.physical_index(row)
        escaped = self.rct.on_activate(physical)
        if self.queue.on_activate(row):
            return
        if escaped:
            selected = self.mint.observe(row)
            if selected is not None:
                self.queue.insert(selected)

    def on_activates(self, rows: Sequence[int],
                     times: Sequence[int]) -> None:
        """Bulk path: batch the RCT lookups, then replay queue/MINT.

        The RCT's state is independent of the queue and sampler, so the
        escape decisions of a whole run can be computed up front (one
        tight loop in :class:`RegionCountTable`) and the queue/MINT pass
        -- whose entries do interact ACT-by-ACT -- replayed afterwards
        in arrival order.  Final state, metrics, and RNG draws are
        identical to entry-at-a-time observation.
        """
        if type(self).on_activate is not MirzaTracker.on_activate:
            BankTracker.on_activates(self, rows, times)
            return
        self.acts_observed += len(rows)
        escapes = self.rct.on_activates(
            self.mapping.physical_indices(rows))
        queue = self.queue
        queue_bump = queue.on_activate
        observe = self.mint.observe
        insert = queue.insert
        n = len(rows)
        i = 0
        # While the queue is empty, bumping it is a no-op and only
        # escaped rows can change any state, so filtered runs are
        # skipped at C speed (list.index) instead of replayed.
        while i < n and not len(queue):
            try:
                i = escapes.index(True, i)
            except ValueError:
                return
            selected = observe(rows[i])
            if selected is not None:
                insert(selected)
            i += 1
        for row, escaped in zip(rows[i:], escapes[i:]):
            if queue_bump(row):
                continue
            if escaped:
                selected = observe(row)
                if selected is not None:
                    insert(selected)

    def on_activates_array(self, rows, times) -> None:
        """Vector path: mapping and RCT as array math, queue/MINT replay.

        The row-to-subarray translation and the RCT escape decisions of
        the whole run are computed as ufunc expressions; the queue/MINT
        pass then fast-forwards over ``flatnonzero(escapes)`` while the
        queue is empty (bumping an empty queue is a no-op, so filtered
        ACTs cannot change state) and replays the tail entry-at-a-time
        once anything is queued.  If the RCT declines the run (edge
        bumping or a SAFE sweep in flight) the whole run falls back to
        the list path before any state is touched.
        """
        if type(self).on_activate is not MirzaTracker.on_activate:
            BankTracker.on_activates_array(self, rows, times)
            return
        escapes = self.rct.on_activates_array(
            self.mapping.physical_indices_array(rows))
        if escapes is None:
            self.on_activates(rows.tolist(), times.tolist())
            return
        self.acts_observed += len(rows)
        queue = self.queue
        observe = self.mint.observe
        insert = queue.insert
        escaped_positions = _np.flatnonzero(escapes)
        m = len(escaped_positions)
        k = 0
        while k < m and not len(queue):
            i = int(escaped_positions[k])
            selected = observe(int(rows[i]))
            if selected is not None:
                insert(selected)
            k += 1
        if not len(queue):
            return
        start = int(escaped_positions[k - 1]) + 1 if k else 0
        queue_bump = queue.on_activate
        for row, escaped in zip(rows[start:].tolist(),
                                escapes[start:].tolist()):
            if queue_bump(row):
                continue
            if escaped:
                selected = observe(row)
                if selected is not None:
                    insert(selected)

    def wants_alert(self) -> bool:
        return self.queue.wants_alert()

    def alert_slack(self) -> int:
        """ACTs before the queue can possibly need an ALERT.

        Two ways ``wants_alert`` can flip: the queue fills (needs at
        least ``capacity - len`` more MINT selections, each bounded
        below by the sampler's window arithmetic) or a queued entry's
        tardiness exceeds QTH (at most one bump per ACT, so at least
        ``qth + 1 - max_tardiness`` ACTs; a future insertion starts at
        tardiness 1 and is covered by the same bound through the
        selection distance).  Both are lower bounds, so the minimum is a
        safe polling horizon.
        """
        queue = self.queue
        free = queue.capacity - len(queue)
        if free <= 0:
            return 1
        until_full = self.mint.acts_until_nth_selection(free)
        if len(queue):
            until_tardy = queue.qth + 1 - queue.max_tardiness()
        else:
            until_tardy = (self.mint.acts_until_nth_selection(1)
                           + queue.qth)
        slack = until_full if until_full < until_tardy else until_tardy
        return slack if slack > 1 else 1

    def on_mitigation_slot(self, now_ps: int,
                           source: MitigationSlotSource) -> List[int]:
        """ALERT/RFM time: mitigate the highest-tardiness queued entry.

        MIRZA never borrows REF time (Table XII: zero refresh
        cannibalisation), so REF slots are declined.
        """
        if source is MitigationSlotSource.REF:
            return []
        row = self.queue.pop_max()
        return [row] if row is not None else []

    def on_ref_slice(self, slice_: RefreshSlice, now_ps: int) -> None:
        self.rct.on_ref_slice(slice_)

    def storage_bits(self) -> int:
        row_bits = max(1, (self.geometry.rows_per_bank - 1).bit_length())
        return (self.rct.storage_bits()
                + self.queue.storage_bits(row_bits)
                + self.mint.storage_bits(row_bits))

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    @property
    def escape_fraction(self) -> float:
        """Fraction of this bank's ACTs that escaped the RCT filter."""
        return self.rct.escape_fraction()

    @property
    def mitigation_probability(self) -> float:
        """Expected mitigations per ACT: escape fraction x 1/W."""
        return self.escape_fraction * self.mint.selection_probability
