"""Human-readable rendering of a metrics snapshot.

:func:`render_metrics_report` turns the JSON-able snapshot produced by
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` (or merged across a
session by :func:`repro.obs.metrics.merge_snapshots`) into the table
the ``python -m repro stats`` subcommand prints: scalar counters and
gauges first, then bucketed histograms, then per-bank distributions
(ACT and REF counts summarised as min/p50/p99/max plus an ASCII
histogram across banks).

Imports of :mod:`repro.sim.stats` happen inside the function: the
``repro.sim`` package pulls in the simulation runner, which imports
the (instrumented) hot modules, which import :mod:`repro.obs` -- a
module-level import here would close that cycle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.metrics import split_key

_BAR_WIDTH = 24


def _bar(count: int, peak: int) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0,
                     round(_BAR_WIDTH * count / peak))


def _group_labeled(snapshot: Dict[str, Dict]
                   ) -> Dict[str, List[Tuple[Dict[str, int], Dict]]]:
    """Labeled counters grouped by base name."""
    groups: Dict[str, List[Tuple[Dict[str, int], Dict]]] = {}
    for key, data in snapshot.items():
        name, labels = split_key(key)
        if labels and data["type"] == "counter":
            groups.setdefault(name, []).append((labels, data))
    return groups


def render_metrics_report(snapshot: Dict[str, Dict]) -> str:
    """The ``repro stats`` table for one (possibly merged) snapshot."""
    from repro.sim.stats import format_table, histogram, percentile

    if not snapshot:
        return ("no metrics collected (set REPRO_METRICS=1 or pass "
                "--metrics)")
    sections: List[str] = []

    scalar_rows = []
    for key, data in sorted(snapshot.items()):
        _, labels = split_key(key)
        if labels:
            continue
        if data["type"] == "counter":
            scalar_rows.append([key, data["value"]])
        elif data["type"] == "gauge":
            scalar_rows.append(
                [key, f"{data['value']} (max {data['max']})"])
    if scalar_rows:
        sections.append(format_table(
            ["metric", "value"], scalar_rows, title="counters"))

    hist_rows = []
    for key, data in sorted(snapshot.items()):
        if data["type"] != "histogram":
            continue
        counts = data["counts"]
        bounds = data["bounds"]
        count = data["count"]
        mean = data["sum"] / count if count else 0.0
        # Quantiles from the buckets: upper bound of the covering one.
        quantiles = []
        for q in (0.50, 0.99):
            running, answer = 0, bounds[-1]
            for bound, c in zip(bounds, counts):
                running += c
                if running >= q * count and count:
                    answer = bound
                    break
            quantiles.append(answer)
        hist_rows.append([key, count, mean, quantiles[0], quantiles[1],
                          counts[-1]])
    if hist_rows:
        sections.append(format_table(
            ["histogram", "count", "mean", "p50", "p99", "overflow"],
            hist_rows, title="histograms"))

    for name, entries in sorted(_group_labeled(snapshot).items()):
        values = [float(data["value"])
                  for _, data in sorted(
                      entries, key=lambda e: sorted(e[0].items()))]
        rows = [[
            "all banks", len(values), sum(values),
            min(values), percentile(values, 50.0),
            percentile(values, 99.0), max(values),
        ]]
        sections.append(format_table(
            ["lanes", "banks", "total", "min", "p50", "p99", "max"],
            rows, title=f"{name} (per-bank distribution)"))
        counts, edges = histogram(values, bins=8)
        peak = max(counts) if counts else 0
        lines = []
        for i, count in enumerate(counts):
            lines.append(f"  [{edges[i]:>10.0f}, {edges[i + 1]:>10.0f}]"
                         f" {count:>6}  {_bar(count, peak)}")
        sections.append("\n".join(lines))

    return "\n\n".join(sections)
