"""The structured event trace: a bounded ring buffer of typed events.

An event is a plain 5-element list::

    [ts_ps, ph, name, subch, bank]

``ts_ps``
    Simulated time in integer picoseconds (never wall clock, so traces
    are deterministic and byte-identical across processes).
``ph``
    The phase, Chrome-trace style: ``"I"`` for an instant event,
    ``"B"``/``"E"`` for the begin/end of a window (ABO stalls, REF
    blackouts, RFM stalls).
``name``
    The event type -- see :data:`EVENT_NAMES` for the taxonomy.
``subch`` / ``bank``
    The lane.  ``bank = -1`` means a channel-wide event (stalls,
    ALERTs, REF); Perfetto renders each (subchannel, bank) pair as its
    own track.

The buffer is a ``deque`` with a hard length cap (``REPRO_TRACE_LIMIT``
or :data:`DEFAULT_LIMIT`): a long run keeps the *newest* events and
counts what it dropped, so tracing can stay on for arbitrarily large
windows without unbounded memory.  Like the metrics registry, one
module-global slot (``_ACTIVE``) keeps the off-path to a single
``None`` check, and hot classes prefetch the buffer at construction.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from typing import Deque, Iterator, List, Optional

_TRUTHY = ("1", "true", "yes", "on")

DEFAULT_LIMIT = 200_000
"""Default ring-buffer capacity (events)."""

CHANNEL_LANE = -1
"""``bank`` value for channel-wide events (stalls, ALERT, REF)."""

EVENT_NAMES = {
    "ACT": "row activation issued (instant, bank lane)",
    "REF": "demand-refresh blackout (B/E window, channel lane)",
    "RFM": "refresh-management stall (B/E window, bank lane)",
    "DRFM": "directed-RFM batch stall (B/E window, channel lane)",
    "ALERT": "device asserted ALERT (instant, channel lane)",
    "STALL": "ABO stall window (B/E window, channel lane)",
    "MITIGATE": "tracker mitigated an aggressor (instant, bank lane)",
    "FLUSH": "array/vector backend landed a deferred ACT run "
             "(B/E window -- or instant for one-ACT runs -- bank lane)",
}
"""The event taxonomy: name -> meaning (see docs/observability.md)."""


class TraceBuffer:
    """Bounded ring of events; appends drop the oldest when full."""

    __slots__ = ("events", "limit", "dropped")

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        if limit < 1:
            raise ValueError("trace limit must be >= 1")
        self.limit = limit
        self.events: Deque[List] = deque(maxlen=limit)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, ts_ps: int, ph: str, name: str, subch: int = 0,
             bank: int = CHANNEL_LANE) -> None:
        """Append one event (hot path when tracing is on)."""
        events = self.events
        if len(events) == self.limit:
            self.dropped += 1
        events.append([ts_ps, ph, name, subch, bank])

    def instant(self, ts_ps: int, name: str, subch: int = 0,
                bank: int = CHANNEL_LANE) -> None:
        self.emit(ts_ps, "I", name, subch, bank)

    def window(self, start_ps: int, end_ps: int, name: str,
               subch: int = 0, bank: int = CHANNEL_LANE) -> None:
        """Emit a paired ``B``/``E`` window."""
        self.emit(start_ps, "B", name, subch, bank)
        self.emit(end_ps, "E", name, subch, bank)

    def extend(self, events: List[List]) -> None:
        """Fold another buffer's event list in (ring cap still applies)."""
        for event in events:
            self.emit(event[0], event[1], event[2], event[3], event[4])

    def as_list(self) -> List[List]:
        """The buffered events as a plain list (oldest first)."""
        return [list(event) for event in self.events]


_ACTIVE: Optional[TraceBuffer] = None
"""The installed trace buffer, or ``None`` (the tracing-off path)."""


def active() -> Optional[TraceBuffer]:
    """The currently-installed trace buffer, if any."""
    return _ACTIVE


def enabled_by_env() -> bool:
    """True when ``REPRO_TRACE`` asks for event tracing."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


def requested() -> bool:
    """True when a buffer is installed or the environment asks."""
    return _ACTIVE is not None or enabled_by_env()


def limit_from_env() -> int:
    """Ring capacity: ``REPRO_TRACE_LIMIT`` or :data:`DEFAULT_LIMIT`."""
    raw = os.environ.get("REPRO_TRACE_LIMIT", "").strip()
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_LIMIT
    return value if value >= 1 else DEFAULT_LIMIT


def install(buffer: Optional[TraceBuffer]) -> Optional[TraceBuffer]:
    """Install ``buffer`` as the active sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = buffer
    return previous


@contextmanager
def tracing(buffer: Optional[TraceBuffer] = None,
            limit: Optional[int] = None) -> Iterator[TraceBuffer]:
    """Scope a trace buffer over a ``with`` block and yield it.

    On exit the previous buffer is restored and, if there was one, the
    scoped buffer's events are folded into it (so nested collection
    scopes aggregate outward, mirroring metrics).
    """
    buf = buffer if buffer is not None else TraceBuffer(
        limit if limit is not None else limit_from_env())
    previous = install(buf)
    try:
        yield buf
    finally:
        install(previous)
        if previous is not None:
            previous.extend(buf.as_list())
            previous.dropped += buf.dropped
