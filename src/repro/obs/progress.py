"""Live batch progress: a single self-updating terminal line.

:class:`ProgressLine` is the callback ``python -m repro run/report
--progress`` installs on the session (see
:attr:`repro.sim.session.SimSession.progress`).  The session invokes it
once per completed cell with a :class:`ProgressUpdate`; on a TTY the
renderer redraws one ``\\r`` status line (throttled), on a plain pipe
(CI logs) it prints a fresh line at most every few seconds so the log
stays readable.  ``close()`` finishes the line -- callers must invoke
it before printing anything else to the same stream.
"""

from __future__ import annotations

import dataclasses
import sys
from time import perf_counter
from typing import IO, Optional


@dataclasses.dataclass(frozen=True)
class ProgressUpdate:
    """One batch-progress observation (cells, not raw jobs)."""

    done: int
    total: int
    cache_hits: int
    retried: int
    failed: int
    elapsed_s: float

    @property
    def hit_rate(self) -> float:
        """Fraction of finished cells served from cache."""
        return self.cache_hits / self.done if self.done else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Projected seconds remaining (None before any completion)."""
        if self.done == 0 or self.total <= self.done:
            return None if self.done == 0 else 0.0
        return self.elapsed_s / self.done * (self.total - self.done)


def _format(update: ProgressUpdate) -> str:
    pct = 100.0 * update.done / update.total if update.total else 100.0
    parts = [f"[{update.done}/{update.total}] {pct:3.0f}%",
             f"hits {100.0 * update.hit_rate:.0f}%"]
    if update.retried:
        parts.append(f"retries {update.retried}")
    if update.failed:
        parts.append(f"failed {update.failed}")
    eta = update.eta_s
    if eta is not None and update.done < update.total:
        parts.append(f"ETA {eta:.0f}s")
    return " | ".join(parts)


class ProgressLine:
    """Render :class:`ProgressUpdate` callbacks as one status line."""

    def __init__(self, stream: Optional[IO[str]] = None,
                 interactive: Optional[bool] = None,
                 min_interval_s: float = 0.1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if interactive is None:
            interactive = bool(getattr(self.stream, "isatty",
                                       lambda: False)())
        self.interactive = interactive
        # Non-interactive streams (CI logs) get a line every few
        # seconds instead of a redraw every completion.
        self.min_interval_s = (min_interval_s if interactive
                               else max(min_interval_s, 2.0))
        self._last_render = 0.0
        self._dirty = False
        self._open = False

    def __call__(self, update: ProgressUpdate) -> None:
        now = perf_counter()
        final = update.done >= update.total
        if not final and now - self._last_render < self.min_interval_s:
            self._dirty = True
            return
        self._last_render = now
        self._dirty = False
        text = _format(update)
        if self.interactive:
            self.stream.write("\r\x1b[K" + text)
            self._open = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Finish the in-place line so later output starts clean."""
        if self.interactive and self._open:
            self.stream.write("\n")
            self.stream.flush()
        self._open = False
