"""Trace exporters: JSONL and Chrome trace-event JSON (Perfetto).

Two interchangeable serializations of the same event list:

- **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`): one JSON
  object per line, lossless, `jq`-able, and the stable intermediate
  format for post-processing.
- **Chrome trace-event JSON** (:func:`write_chrome_trace` /
  :func:`chrome_trace_events`): the ``{"traceEvents": [...]}`` shape
  Perfetto and ``chrome://tracing`` load directly.  Each
  (subchannel, bank) pair becomes its own process/thread lane via
  ``M`` metadata events; channel-wide events (ALERT, ABO stalls, REF
  blackouts) land on a dedicated "channel" lane per subchannel.

The exporter *sanitises* on the way out: events are sorted by
timestamp (the ring buffer interleaves lanes in emission order, which
is not globally time-ordered), ``E`` events with no matching ``B`` on
their lane are dropped, and windows left open by ring-buffer wrap are
closed at the trace's end -- so an exported file always satisfies
:func:`validate_chrome_trace` (monotonic ``ts``, balanced ``B``/``E``
nesting per lane), no matter how the buffer was truncated.

Timestamps are picoseconds in the event list and (fractional)
microseconds in the Chrome export, which is the unit the trace-event
spec mandates.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.obs.trace import CHANNEL_LANE

PS_PER_US = 1_000_000

CHANNEL_TID = 999
"""Thread id of the channel-wide lane in the Chrome export."""

SPAN_PIDS = {"session": 9000, "worker": 9001}
"""Chrome process ids for the span tracks (kernel lanes use the small
subchannel numbers, so the 9000 block can never collide)."""

_FIELDS = ("ts", "ph", "name", "subch", "bank")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(events: Iterable[List], target: Union[str, IO[str]]
                ) -> int:
    """Write events as JSON-lines; returns the number written."""
    if isinstance(target, str):
        with open(target, "w") as handle:
            return write_jsonl(events, handle)
    written = 0
    for event in events:
        record = dict(zip(_FIELDS, event))
        target.write(json.dumps(record, separators=(",", ":")) + "\n")
        written += 1
    return written


def read_jsonl(source: Union[str, IO[str]]) -> List[List]:
    """Inverse of :func:`write_jsonl`: load events from JSON-lines."""
    if isinstance(source, str):
        with open(source, "r") as handle:
            return read_jsonl(handle)
    events: List[List] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append([record[field] for field in _FIELDS])
    return events


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _sort_key(event: List) -> Tuple:
    # Stable time order; at equal timestamps close windows before
    # opening new ones so back-to-back stalls don't read as nested.
    return (event[0], 0 if event[1] == "E" else 1)


def _sanitize(events: Iterable[List]) -> List[List]:
    """Sorted events with every ``B`` matched by exactly one ``E``."""
    ordered = sorted(events, key=_sort_key)
    depth: Dict[Tuple[int, int, str], int] = {}
    kept: List[List] = []
    max_ts = 0
    for event in ordered:
        ts, ph, name, subch, bank = event
        if ts > max_ts:
            max_ts = ts
        key = (subch, bank, name)
        if ph == "B":
            depth[key] = depth.get(key, 0) + 1
        elif ph == "E":
            if depth.get(key, 0) < 1:
                continue  # orphan E (its B fell off the ring)
            depth[key] -= 1
        kept.append([ts, ph, name, subch, bank])
    # Close windows whose E fell outside the buffered range.
    for (subch, bank, name), open_count in sorted(depth.items()):
        for _ in range(open_count):
            kept.append([max_ts, "E", name, subch, bank])
    return kept


def chrome_trace_events(events: Iterable[List]) -> List[Dict]:
    """Events in Chrome trace-event form (with lane metadata)."""
    sanitized = _sanitize(events)
    lanes = sorted({(e[3], e[4]) for e in sanitized})
    out: List[Dict] = []
    for subch in sorted({s for s, _ in lanes}):
        out.append({"name": "process_name", "ph": "M", "pid": subch,
                    "tid": 0, "args": {"name": f"subchannel {subch}"}})
    for subch, bank in lanes:
        tid = CHANNEL_TID if bank == CHANNEL_LANE else bank
        label = "channel" if bank == CHANNEL_LANE else f"bank {bank}"
        out.append({"name": "thread_name", "ph": "M", "pid": subch,
                    "tid": tid, "args": {"name": label}})
    for ts, ph, name, subch, bank in sanitized:
        tid = CHANNEL_TID if bank == CHANNEL_LANE else bank
        record = {"name": name, "ph": "i" if ph == "I" else ph,
                  "pid": subch, "tid": tid, "ts": ts / PS_PER_US}
        if ph == "I":
            record["s"] = "t"
        out.append(record)
    return out


def sanitize_span_records(records: Iterable[Dict]) -> List[Dict]:
    """Drop malformed ``X`` records and time-order the rest.

    Perfetto silently discards complete events with a negative or
    missing ``dur`` (and renders out-of-order timestamps wrong), so
    the exporter filters them *before* writing instead of emitting a
    file that loads incomplete without warning.  Metadata (``M``)
    records keep their position at the front.
    """
    meta: List[Dict] = []
    timed: List[Dict] = []
    for record in records:
        if record.get("ph") == "M":
            meta.append(record)
            continue
        if record.get("ph") == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                continue
        timed.append(record)
    timed.sort(key=lambda r: r.get("ts", 0))
    return meta + timed


def chrome_span_events(spans: Iterable[List]) -> List[Dict]:
    """Spans in Chrome trace-event form (``X`` complete events).

    Each span ``[track, name, start_us, dur_us, meta]`` (see
    :mod:`repro.obs.spans`) becomes one complete event on the track's
    reserved process (:data:`SPAN_PIDS`); the meta dict rides along as
    ``args``.  A ``pid`` key in the meta picks the thread lane, so
    worker spans group by the OS process that ran them.
    """
    spans = list(spans)
    out: List[Dict] = []
    lanes = sorted({(s[0], int((s[4] or {}).get("pid", 0)))
                    for s in spans})
    for track in sorted({t for t, _ in lanes}):
        pid = SPAN_PIDS.get(track, max(SPAN_PIDS.values()) + 1)
        out.append({"name": "process_name", "ph": "M", "pid": pid,
                    "tid": 0, "args": {"name": track}})
    for track, tid in lanes:
        pid = SPAN_PIDS.get(track, max(SPAN_PIDS.values()) + 1)
        label = track if tid == 0 else f"pid {tid}"
        out.append({"name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": label}})
    for track, name, start_us, dur_us, meta in spans:
        pid = SPAN_PIDS.get(track, max(SPAN_PIDS.values()) + 1)
        tid = int((meta or {}).get("pid", 0))
        out.append({"name": name, "ph": "X", "pid": pid, "tid": tid,
                    "ts": float(start_us), "dur": float(dur_us),
                    "args": dict(meta or {})})
    return sanitize_span_records(out)


def write_chrome_trace(events: Iterable[List],
                       target: Union[str, IO[str]],
                       spans: Optional[Iterable[List]] = None) -> int:
    """Write a Perfetto-loadable trace file; returns the event count.

    ``spans`` (session/worker spans from :mod:`repro.obs.spans`) are
    merged onto their own tracks alongside the kernel lanes; the
    combined timed events are re-sorted so the file stays globally
    time-ordered (what :func:`validate_chrome_trace` checks).
    """
    if isinstance(target, str):
        with open(target, "w") as handle:
            return write_chrome_trace(events, handle, spans=spans)
    trace_events = chrome_trace_events(events)
    if spans:
        trace_events = sanitize_span_records(
            trace_events + chrome_span_events(spans))
    json.dump({"traceEvents": trace_events, "displayTimeUnit": "ns"},
              target, indent=1)
    target.write("\n")
    return len(trace_events)


def validate_chrome_trace(payload: Union[Dict, List]
                          ) -> Optional[str]:
    """Check a Chrome trace payload; returns ``None`` or a complaint.

    Validates the subset of the trace-event schema this exporter (and
    the tests) rely on: a ``traceEvents`` list, required fields with
    the right types, non-decreasing timestamps among timed events,
    per-lane ``B``/``E`` nesting that never goes negative and ends
    balanced, and ``X`` (complete) events carrying a non-negative
    numeric ``dur`` -- Perfetto silently drops negative-duration and
    out-of-order events, so the validator refuses what the viewer
    would hide (:func:`sanitize_span_records` is the write-side pass
    that keeps exported files clean).
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return "payload has no traceEvents list"
    elif isinstance(payload, list):
        events = payload
    else:
        return "payload is neither an object nor a list"
    last_ts = None
    depth: Dict[Tuple[int, int, str], int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            return f"event {index} is not an object"
        ph = event.get("ph")
        if ph == "M":
            continue
        for field in ("name", "pid", "tid", "ts"):
            if field not in event:
                return f"event {index} lacks {field!r}"
        if not isinstance(event["ts"], (int, float)):
            return f"event {index} has a non-numeric ts"
        if last_ts is not None and event["ts"] < last_ts:
            return (f"event {index} goes back in time "
                    f"({event['ts']} < {last_ts})")
        last_ts = event["ts"]
        if ph in ("B", "E"):
            key = (event["pid"], event["tid"], event["name"])
            depth[key] = depth.get(key, 0) + (1 if ph == "B" else -1)
            if depth[key] < 0:
                return f"event {index}: E without matching B on {key}"
        elif ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                return f"event {index} (X) lacks a numeric dur"
            if dur < 0:
                return (f"event {index} (X) has a negative duration "
                        f"({dur})")
        elif ph != "i":
            return f"event {index} has unsupported ph {ph!r}"
    unbalanced = {k: v for k, v in depth.items() if v}
    if unbalanced:
        return f"unclosed B events: {sorted(unbalanced)}"
    return None
