"""Session-level span tracing: wall-clock spans over batch execution.

Where :mod:`repro.obs.trace` records *simulated-time* kernel events
(ACT/REF/ALERT on picosecond timestamps), this module records
*wall-clock* spans over the execution platform itself: one root span
per :meth:`~repro.sim.session.SimSession.run_many`, one child span per
cell with its disposition (``cache-hit`` / ``computed`` / ``retried``
/ ``timed-out`` / ``failed``), a workers span over the fan-out phase,
and per-job kernel spans from inside :func:`repro.sim.runner.simulate`.
They answer the questions the kernel trace cannot: where did the batch
spend its time, which cells were served from cache, which worker ran
what, and how long jobs sat queued.

A span is a plain JSON-able 5-element list::

    [track, name, start_us, dur_us, meta]

``track``
    The display lane group: :data:`TRACK_SESSION` for batch/cell spans
    (recorded parent-side), :data:`TRACK_WORKER` for execution spans
    (recorded wherever the job actually ran -- the ``meta`` carries
    the pid).
``start_us`` / ``dur_us``
    Wall-clock microseconds since the Unix epoch and span duration.
    All processes on a machine share this clock, so worker spans
    overlay the parent's timeline without translation.
``meta``
    A small JSON-able dict of attributes (disposition, attempts,
    pid, ...); exported as Chrome trace-event ``args``.

Like the metrics registry and the event trace, one module-global slot
(:data:`_ACTIVE`) keeps the off-path to a single ``None`` check, the
recorder is bounded (``REPRO_SPAN_LIMIT``), and nested
:func:`recording` scopes fold outward -- which is also how spans
shipped back from pool workers (on :class:`~repro.cpu.system.SimResult
`.spans) merge into the parent's recorder, exactly like metrics
snapshots.
"""

from __future__ import annotations

import os
from collections import deque
from contextlib import contextmanager
from time import perf_counter, time
from typing import Deque, Dict, Iterator, List, Optional

_TRUTHY = ("1", "true", "yes", "on")

DEFAULT_LIMIT = 100_000
"""Default recorder capacity (spans)."""

TRACK_SESSION = "session"
"""Track for batch-level spans recorded by the parent session."""

TRACK_WORKER = "worker"
"""Track for execution spans recorded where the job ran."""

SPAN_NAMES = {
    "run_many": "one whole batch (root span, session track)",
    "workers": "the batch's fan-out/execution phase (session track)",
    "cell:<label>": "one unique cell, disposition in meta "
                    "(session track)",
    "kernel:<backend>": "one simulate() kernel run, pid in meta "
                        "(worker track)",
}
"""The span taxonomy: name -> meaning (see docs/observability.md)."""


def now_us() -> float:
    """Wall-clock microseconds since the Unix epoch."""
    return time() * 1e6


class SpanRecorder:
    """Bounded list of spans; appends drop the oldest when full."""

    __slots__ = ("spans", "limit", "dropped")

    def __init__(self, limit: int = DEFAULT_LIMIT) -> None:
        if limit < 1:
            raise ValueError("span limit must be >= 1")
        self.limit = limit
        self.spans: Deque[List] = deque(maxlen=limit)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.spans)

    def add(self, track: str, name: str, start_us: float,
            dur_us: float, meta: Optional[Dict] = None) -> None:
        """Append one finished span."""
        spans = self.spans
        if len(spans) == self.limit:
            self.dropped += 1
        spans.append([track, name, start_us, dur_us, meta or {}])

    @contextmanager
    def span(self, track: str, name: str,
             meta: Optional[Dict] = None) -> Iterator[Dict]:
        """Record the ``with`` block as one span; yields its meta dict
        so the body can attach attributes before the span closes."""
        attrs: Dict = dict(meta) if meta else {}
        start = now_us()
        t0 = perf_counter()
        try:
            yield attrs
        finally:
            self.add(track, name, start,
                     (perf_counter() - t0) * 1e6, attrs)

    def extend(self, spans: List[List]) -> None:
        """Fold another recorder's span list in (cap still applies)."""
        for span in spans:
            self.add(span[0], span[1], span[2], span[3], span[4])

    def as_list(self) -> List[List]:
        """The recorded spans as a plain list (oldest first)."""
        return [[s[0], s[1], s[2], s[3], dict(s[4])]
                for s in self.spans]


_ACTIVE: Optional[SpanRecorder] = None
"""The installed span recorder, or ``None`` (the spans-off path)."""


def active() -> Optional[SpanRecorder]:
    """The currently-installed span recorder, if any."""
    return _ACTIVE


def enabled_by_env() -> bool:
    """True when ``REPRO_SPANS`` asks for span recording."""
    return os.environ.get("REPRO_SPANS", "").strip().lower() in _TRUTHY


def requested() -> bool:
    """True when a recorder is installed or the environment asks."""
    return _ACTIVE is not None or enabled_by_env()


def limit_from_env() -> int:
    """Recorder capacity: ``REPRO_SPAN_LIMIT`` or :data:`DEFAULT_LIMIT`."""
    raw = os.environ.get("REPRO_SPAN_LIMIT", "").strip()
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_LIMIT
    return value if value >= 1 else DEFAULT_LIMIT


def install(recorder: Optional[SpanRecorder]
            ) -> Optional[SpanRecorder]:
    """Install ``recorder`` as the active sink; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


@contextmanager
def recording(recorder: Optional[SpanRecorder] = None,
              limit: Optional[int] = None) -> Iterator[SpanRecorder]:
    """Scope a span recorder over a ``with`` block and yield it.

    On exit the previous recorder is restored and, if there was one,
    the scoped recorder's spans are folded into it (nested collection
    scopes aggregate outward, mirroring metrics and the event trace).
    """
    rec = recorder if recorder is not None else SpanRecorder(
        limit if limit is not None else limit_from_env())
    previous = install(rec)
    try:
        yield rec
    finally:
        install(previous)
        if previous is not None:
            previous.extend(rec.as_list())
            previous.dropped += rec.dropped
