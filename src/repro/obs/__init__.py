"""``repro.obs``: structured observability for the simulation kernel.

Four cooperating pieces (see ``docs/observability.md``):

- :mod:`repro.obs.metrics` -- a registry of counters, gauges, and
  fixed-bucket histograms the hot layers are instrumented with.
- :mod:`repro.obs.trace` -- a bounded ring buffer of typed events
  (ACT/REF/RFM/ALERT/stall/mitigation) with picosecond timestamps.
- :mod:`repro.obs.spans` -- wall-clock spans over batch execution
  (one per ``run_many``, per cell with its disposition, per kernel
  run), with a live progress line in :mod:`repro.obs.progress`.
- :mod:`repro.obs.export` -- JSONL and Chrome trace-event exporters,
  so a run opens directly in Perfetto with per-bank kernel lanes and
  session/worker span tracks.

Everything is off by default and costs one ``None`` check per event
when off.  Turn collection on with the ``REPRO_METRICS`` /
``REPRO_TRACE`` environment knobs, the CLI's ``--metrics`` /
``--trace-out`` flags, or programmatically::

    from repro.obs import collecting
    from repro.sim import simulate, mirza_setup
    from repro.params import SimScale

    with collecting(metrics=True, trace=True) as col:
        simulate("tc", mirza_setup(1000), SimScale(512))
    print(col.metrics.snapshot()["abo.alerts"])
    col.write_chrome_trace("trace.json")

Collection binds at system construction (metric objects are prefetched
into the hot classes), so enter the scope *before* building the system
-- :func:`repro.sim.runner.simulate` handles this for you and attaches
a snapshot to its :class:`~repro.cpu.system.SimResult`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union, IO

from repro.obs import metrics as _metrics_mod
from repro.obs import spans as _spans_mod
from repro.obs import trace as _trace_mod
from repro.obs.export import (
    chrome_span_events,
    chrome_trace_events,
    read_jsonl,
    sanitize_span_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    split_key,
)
from repro.obs.report import render_metrics_report
from repro.obs.spans import SPAN_NAMES, SpanRecorder
from repro.obs.trace import CHANNEL_LANE, EVENT_NAMES, TraceBuffer


def metrics_requested() -> bool:
    """True when metrics collection is installed or env-enabled."""
    return _metrics_mod.requested()


def trace_requested() -> bool:
    """True when event tracing is installed or env-enabled."""
    return _trace_mod.requested()


def spans_requested() -> bool:
    """True when span recording is installed or env-enabled."""
    return _spans_mod.requested()


class Collection:
    """Handle yielded by :func:`collecting`: the scoped sinks."""

    __slots__ = ("metrics", "trace", "spans")

    def __init__(self, metrics: Optional[MetricsRegistry],
                 trace: Optional[TraceBuffer],
                 spans: Optional[SpanRecorder] = None) -> None:
        self.metrics = metrics
        self.trace = trace
        self.spans = spans

    def metrics_snapshot(self) -> Optional[Dict[str, Dict]]:
        """The collected metrics (``None`` when metrics were off)."""
        return self.metrics.snapshot() if self.metrics is not None \
            else None

    def trace_events(self) -> Optional[List[List]]:
        """The collected events (``None`` when tracing was off)."""
        return self.trace.as_list() if self.trace is not None else None

    def spans_list(self) -> Optional[List[List]]:
        """The recorded spans (``None`` when spans were off)."""
        return self.spans.as_list() if self.spans is not None else None

    def write_chrome_trace(self, target: Union[str, IO[str]]) -> int:
        """Export the collected events for Perfetto; returns count."""
        return write_chrome_trace(self.trace_events() or [], target,
                                  spans=self.spans_list())

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Export the collected events as JSON-lines; returns count."""
        return write_jsonl(self.trace_events() or [], target)


@contextmanager
def suppressed() -> Iterator[None]:
    """Scope with *no* sinks installed, regardless of the caller's.

    Used around work that must never be observed -- e.g. calibration
    probes inside :func:`repro.sim.runner.simulate`, which would
    otherwise bind to an enclosing registry and skew its totals.
    """
    prev_registry = _metrics_mod.install(None)
    prev_buffer = _trace_mod.install(None)
    prev_spans = _spans_mod.install(None)
    try:
        yield
    finally:
        _metrics_mod.install(prev_registry)
        _trace_mod.install(prev_buffer)
        _spans_mod.install(prev_spans)


@contextmanager
def collecting(metrics: bool = True, trace: bool = False,
               trace_limit: Optional[int] = None,
               spans: bool = False) -> Iterator[Collection]:
    """Scope metrics/trace/span collection over a ``with`` block.

    Nested scopes aggregate outward: a child scope's snapshot/events/
    spans are merged into the enclosing scope's sinks on exit, which is
    how per-``simulate`` collection feeds a CLI- or session-wide view.
    """
    registry = MetricsRegistry() if metrics else None
    buffer = TraceBuffer(
        trace_limit if trace_limit is not None
        else _trace_mod.limit_from_env()) if trace else None
    recorder = SpanRecorder(_spans_mod.limit_from_env()) if spans \
        else None
    prev_registry = _metrics_mod.install(registry) if metrics else None
    prev_buffer = _trace_mod.install(buffer) if trace else None
    prev_spans = _spans_mod.install(recorder) if spans else None
    try:
        yield Collection(registry, buffer, recorder)
    finally:
        if metrics:
            _metrics_mod.install(prev_registry)
            if prev_registry is not None:
                prev_registry.merge_snapshot(registry.snapshot())
        if trace:
            _trace_mod.install(prev_buffer)
            if prev_buffer is not None:
                prev_buffer.extend(buffer.as_list())
                prev_buffer.dropped += buffer.dropped
        if spans:
            _spans_mod.install(prev_spans)
            if prev_spans is not None:
                prev_spans.extend(recorder.as_list())
                prev_spans.dropped += recorder.dropped


__all__ = [
    "CHANNEL_LANE",
    "Collection",
    "Counter",
    "EVENT_NAMES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SPAN_NAMES",
    "SpanRecorder",
    "TraceBuffer",
    "chrome_span_events",
    "chrome_trace_events",
    "collecting",
    "merge_snapshots",
    "metric_key",
    "metrics_requested",
    "read_jsonl",
    "render_metrics_report",
    "sanitize_span_records",
    "spans_requested",
    "split_key",
    "suppressed",
    "trace_requested",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
