"""The metrics registry: counters, gauges, fixed-bucket histograms.

Observability follows the same discipline as :mod:`repro._profile`:
one module-level slot (``_ACTIVE``) holds the installed
:class:`MetricsRegistry` or ``None``.  Hot classes *prefetch* their
metric objects at construction time (``reg.counter(...) if reg else
None``) so the per-event cost is one attribute load and a ``None``
check when collection is off, and one integer add when it is on.
Because metrics bind at construction, install a registry (or set
``REPRO_METRICS=1``) *before* building the system you want to measure
-- :func:`repro.sim.runner.simulate` does exactly that.

Three metric kinds cover everything the simulator reports:

``Counter``
    A monotonically-increasing integer (ACTs, ALERTs, RFM commands,
    stall picoseconds).  Merged across runs by addition.
``Gauge``
    A last-value-plus-high-watermark pair (queue occupancy).  Merged
    by taking the maxima, which keeps merging order-independent and
    therefore deterministic under process-pool fan-out.
``Histogram``
    Fixed upper-bound buckets plus a ``+Inf`` overflow bucket, with a
    running sum/count (request latency, outstanding misses).  Merged
    by element-wise addition.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able
dicts; :func:`merge_snapshots` folds any number of them into one, so a
:class:`~repro.sim.session.SimSession` can aggregate the per-job
snapshots its worker processes return into a session-wide view that is
identical whether the jobs ran serially or fanned out.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

_TRUTHY = ("1", "true", "yes", "on")


class Counter:
    """A merge-by-addition monotone counter."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}

    def merge_dict(self, data: Dict[str, object]) -> None:
        self.value += data["value"]


class Gauge:
    """A last-value gauge with a high watermark; merged by maxima."""

    __slots__ = ("value", "max")

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0
        self.max = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value, "max": self.max}

    def merge_dict(self, data: Dict[str, object]) -> None:
        self.value = max(self.value, data["value"])
        self.max = max(self.max, data["max"])


class Histogram:
    """Fixed-bucket histogram: ``len(bounds) + 1`` counts (last = +Inf).

    ``bounds`` are inclusive upper edges in ascending order; a value
    ``v`` lands in the first bucket whose bound is ``>= v``.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be ascending and "
                             "non-empty")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left on inclusive upper edges: v <= bounds[i] lands
        # in bucket i; v above every bound lands in the overflow slot.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, object]:
        return {"type": "histogram", "bounds": list(self.bounds),
                "counts": list(self.counts), "sum": self.sum,
                "count": self.count}

    def merge_dict(self, data: Dict[str, object]) -> None:
        if list(data["bounds"]) != list(self.bounds):
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for i, c in enumerate(data["counts"]):
            self.counts[i] += c
        self.sum += data["sum"]
        self.count += data["count"]

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket.

        The overflow bucket reports the last finite bound (the true
        value is only known to exceed it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= target:
                return bound
        return self.bounds[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def metric_key(name: str, subch: Optional[int] = None,
               bank: Optional[int] = None) -> str:
    """Canonical snapshot key for a (possibly per-bank) metric."""
    if subch is None and bank is None:
        return name
    labels = []
    if subch is not None:
        labels.append(f"subch={subch}")
    if bank is not None:
        labels.append(f"bank={bank}")
    return f"{name}{{{','.join(labels)}}}"


def split_key(key: str) -> Tuple[str, Dict[str, int]]:
    """Inverse of :func:`metric_key`: ``(name, labels)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, raw = key.partition("{")
    labels: Dict[str, int] = {}
    for part in raw[:-1].split(","):
        if "=" in part:
            k, _, v = part.partition("=")
            labels[k] = int(v)
    return name, labels


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors and merging."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def counter(self, name: str, subch: Optional[int] = None,
                bank: Optional[int] = None) -> Counter:
        return self._get(metric_key(name, subch, bank), Counter)

    def gauge(self, name: str, subch: Optional[int] = None,
              bank: Optional[int] = None) -> Gauge:
        return self._get(metric_key(name, subch, bank), Gauge)

    def histogram(self, name: str, bounds: Sequence[float],
                  subch: Optional[int] = None,
                  bank: Optional[int] = None) -> Histogram:
        key = metric_key(name, subch, bank)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(bounds)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {key!r} is a {metric.kind}, "
                            f"not a histogram")
        return metric

    def _get(self, key: str, cls: type):
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {key!r} is a {metric.kind}, "
                            f"not a {cls.kind}")
        return metric

    def get(self, key: str):
        """The metric registered under ``key``, or ``None``."""
        return self._metrics.get(key)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able view of every metric, sorted by key.

        The snapshot is a deterministic function of the recorded
        events -- key order is sorted, values are plain ints/floats --
        so equal simulations produce equal snapshots regardless of
        which process recorded them.
        """
        return {key: self._metrics[key].to_dict()
                for key in sorted(self._metrics)}

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]
                       ) -> None:
        """Fold one snapshot into this registry (create-or-merge)."""
        for key in snapshot:
            data = snapshot[key]
            metric = self._metrics.get(key)
            if metric is None:
                cls = _KINDS[data["type"]]
                if cls is Histogram:
                    metric = Histogram(data["bounds"])
                else:
                    metric = cls()
                self._metrics[key] = metric
            elif metric.kind != data["type"]:
                raise TypeError(
                    f"metric {key!r} is a {metric.kind}; snapshot has "
                    f"a {data['type']}")
            metric.merge_dict(data)


def merge_snapshots(snapshots: Sequence[Optional[Dict[str, Dict]]]
                    ) -> Dict[str, Dict[str, object]]:
    """Merge many snapshots (``None`` entries are skipped) into one."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            registry.merge_snapshot(snapshot)
    return registry.snapshot()


_ACTIVE: Optional[MetricsRegistry] = None
"""The installed registry, or ``None`` (the collection-off fast path).

Instrumented constructors read this slot directly (one module-global
load) to prefetch their metric objects.
"""


def active() -> Optional[MetricsRegistry]:
    """The currently-installed registry, if any."""
    return _ACTIVE


def enabled_by_env() -> bool:
    """True when ``REPRO_METRICS`` asks for metrics collection."""
    return os.environ.get("REPRO_METRICS", "").strip().lower() in _TRUTHY


def requested() -> bool:
    """True when a registry is installed or the environment asks."""
    return _ACTIVE is not None or enabled_by_env()


def install(registry: Optional[MetricsRegistry]
            ) -> Optional[MetricsRegistry]:
    """Install ``registry`` as the active sink; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None
               ) -> Iterator[MetricsRegistry]:
    """Scope a registry over a ``with`` block and yield it.

    On exit the previous registry is restored and, if there was one,
    the scoped registry's snapshot is merged into it -- nested scopes
    therefore aggregate outward, which is how per-run collection in
    :func:`repro.sim.runner.simulate` feeds a CLI-wide registry.
    """
    reg = registry if registry is not None else MetricsRegistry()
    previous = install(reg)
    try:
        yield reg
    finally:
        install(previous)
        if previous is not None:
            previous.merge_snapshot(reg.snapshot())
