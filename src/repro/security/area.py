"""Storage and silicon-area accounting (Tables VII, X, XII).

The paper compares tracker areas with a standard cell-area model
(Section VIII-A): a DRAM cell costs ``6 F^2`` and an SRAM cell
``120 F^2`` where ``F`` is the feature size.  PRAC stores one counter
per row *in the DRAM array*; MIRZA stores one counter per region in
SRAM.  Despite SRAM cells being 20x larger, tracking 1024x fewer
counters wins by ~45x at TRHD = 1K.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import DramGeometry

DRAM_CELL_AREA_F2 = 6.0
SRAM_CELL_AREA_F2 = 120.0

MIRZA_QUEUE_OVERHEAD_BYTES = 20
"""Per-bank bytes for MIRZA-Q (4 entries), the RRC register, and MINT
state; constant across configurations (Table VII's SRAM/Bank column is
``regions * counter_bits / 8 + 20``)."""


def rct_counter_bits(fth: int) -> int:
    """Bits per RCT counter: must hold the saturation value FTH + 1."""
    return max(1, (fth + 1).bit_length())


def mirza_storage_bytes_per_bank(num_regions: int, fth: int) -> float:
    """Total MIRZA SRAM per bank in bytes (Table VII's last column)."""
    return (num_regions * rct_counter_bits(fth)) / 8.0 \
        + MIRZA_QUEUE_OVERHEAD_BYTES


def prac_counter_bits_for_trhd(trhd: int) -> int:
    """Bits per PRAC row counter needed to count up to ``trhd``."""
    if trhd < 1:
        raise ValueError("trhd must be >= 1")
    return max(1, math.ceil(math.log2(trhd)))


def trr_storage_bytes_per_bank(entries: int = 28,
                               bytes_per_entry: int = 3) -> int:
    """DDR4 TRR tracker storage (Table XII: 28 x 3B = 84 bytes)."""
    return entries * bytes_per_entry


def mint_storage_bytes_per_bank() -> int:
    """MINT with the Delayed Mitigation Queue (Table XII: 20 bytes)."""
    return 20


def mithril_storage_bytes_per_bank(entries: int = 2048,
                                   bits_per_entry: int = 28) -> float:
    """Mithril CAM storage (Section VIII-A: 2K x 28b = 7KB per bank)."""
    return entries * bits_per_entry / 8.0


@dataclass(frozen=True)
class AreaModel:
    """Relative silicon area of MIRZA vs PRAC, per subarray (Table X)."""

    geometry: DramGeometry = DramGeometry()
    dram_cell_f2: float = DRAM_CELL_AREA_F2
    sram_cell_f2: float = SRAM_CELL_AREA_F2

    def mirza_bits_per_subarray(self, num_regions: int, fth: int) -> int:
        """RCT bits landing on one subarray's worth of rows."""
        regions_per_subarray = max(
            1, num_regions // self.geometry.subarrays_per_bank)
        return regions_per_subarray * rct_counter_bits(fth)

    def mirza_area_per_subarray(self, num_regions: int, fth: int) -> float:
        """MIRZA tracking area per subarray in units of F^2."""
        return self.mirza_bits_per_subarray(num_regions, fth) \
            * self.sram_cell_f2

    def prac_bits_per_subarray(self, trhd: int) -> int:
        """PRAC counter bits per subarray: one counter per row."""
        return prac_counter_bits_for_trhd(trhd) \
            * self.geometry.rows_per_subarray

    def prac_area_per_subarray(self, trhd: int) -> float:
        """PRAC counter area per subarray in units of F^2."""
        return self.prac_bits_per_subarray(trhd) * self.dram_cell_f2

    def prac_to_mirza_ratio(self, trhd: int, num_regions: int,
                            fth: int) -> float:
        """How much more area PRAC needs than MIRZA (45x at TRHD=1K)."""
        return self.prac_area_per_subarray(trhd) \
            / self.mirza_area_per_subarray(num_regions, fth)
