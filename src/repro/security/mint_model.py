"""Analytic tolerated-threshold model for MINT's random sampling.

MINT selects exactly one of every ``W`` activations uniformly at random.
An attacker hammering a target row ``d`` times per window escapes
selection in that window with probability ``1 - d/W``; over ``m``
windows the row accrues ``d * m`` unmitigated activations with escape
probability ``(1 - d/W) ** m``.  Requiring the attack's success
probability to stay below ``2 ** -k`` bounds the unmitigated activations
at::

    N(W, d) = d * k * ln(2) / -ln(1 - d/W)

which is maximised at ``d = 1`` (slower hammering escapes longer), giving

    N(W) = k * ln(2) / -ln(1 - 1/W)  ~=  0.693 * k * (W - 0.5)

``k`` is the failure exponent: the attack succeeds with probability at
most ``2**-k`` per bank per refresh window.  We calibrate ``k = 28.5``
against the MINT paper's published security model, which reproduces its
anchor point (window 75 -> TRHD 1.5K, Section II-E) and the MINT-W to
FTH pairings of the paper's Table VII to within ~2%.

For a *double-sided* attack the victim is disturbed by two aggressors;
mitigating either one refreshes the victim, so per window of combined
budget the escape probability is squared while the disturbance doubles
-- the algebra cancels and the tolerated *double-sided* threshold equals
``N(W)``.  A single-sided attack must deliver the same charge from one
neighbour, which empirically needs twice the activations, hence
``TRHS = 2 * TRHD`` (Section VI-C: "target TRHS would be 2x higher").
"""

from __future__ import annotations

import math

MINT_FAILURE_EXPONENT = 28.5
"""Calibrated failure exponent: attack success probability <= 2**-k."""


def mint_unmitigated_bound(window: int,
                           fail_exponent: float = MINT_FAILURE_EXPONENT,
                           acts_per_window: int = 1) -> float:
    """Max unmitigated ACTs an attacker sustains against MINT-``window``.

    ``acts_per_window`` is the attacker's per-window rate ``d``; the
    adversarial optimum is ``d = 1``.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not 1 <= acts_per_window <= window:
        raise ValueError("acts_per_window must be in [1, window]")
    if window == 1:
        return float(acts_per_window)
    escape = 1.0 - acts_per_window / window
    return acts_per_window * fail_exponent * math.log(2) / -math.log(escape)


def mint_tolerated_trhd(window: int,
                        fail_exponent: float = MINT_FAILURE_EXPONENT
                        ) -> int:
    """Double-sided Rowhammer threshold MINT-``window`` can tolerate."""
    return math.floor(mint_unmitigated_bound(window, fail_exponent))


def mint_tolerated_trhs(window: int,
                        fail_exponent: float = MINT_FAILURE_EXPONENT
                        ) -> int:
    """Single-sided threshold: twice the double-sided one."""
    return 2 * mint_tolerated_trhd(window, fail_exponent)


def mint_window_for_trhd(trhd: int,
                         fail_exponent: float = MINT_FAILURE_EXPONENT
                         ) -> int:
    """Largest window whose tolerated TRHD is still <= ``trhd``.

    This is the provisioning direction: given a device threshold, pick
    the largest (cheapest) window that remains safe.
    """
    if trhd < 1:
        raise ValueError("trhd must be >= 1")
    if mint_tolerated_trhd(1, fail_exponent) > trhd:
        raise ValueError(f"no MINT window tolerates TRHD={trhd}")
    lo, hi = 1, 2
    while mint_tolerated_trhd(hi, fail_exponent) <= trhd:
        hi *= 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mint_tolerated_trhd(mid, fail_exponent) <= trhd:
            lo = mid
        else:
            hi = mid - 1
    return lo
