"""Seeded attack-parameter fuzzer: patterns x mitigations -> escapes.

The fuzzer samples attack-pattern shapes from the declarative DSL in
:mod:`repro.workloads.patterns` -- boundary-biased, the way a fuzzer
should probe a tracker's capacity edges -- and drives every sampled
pattern, plus the paper's fixed attack set, through
:class:`~repro.security.attacks.SingleBankHarness` against each
requested mitigation.  Each (pattern, mitigation) cell is a frozen
:class:`FuzzJob`: content-addressed job material for
:meth:`repro.sim.session.SimSession.run_many`, so sweeps deduplicate,
cache, and resume like every other batch in the repository.

The measurement per cell is ``max_unmitigated`` -- the ground-truth
oracle's worst per-row unmitigated ACT count -- which is exactly the
quantity the paper's security arguments bound.  A sweep's
:class:`FuzzReport` compares the best fuzzed pattern against the best
paper-set pattern per mitigation; a mitigation whose paper-set maximum
is beaten by a fuzzed cell is *dominated* (the open-ended search found
a stronger attack than the fixed vocabulary).

Determinism: the sweep is a pure function of its :class:`FuzzSpec`
(all sampling comes from ``random.Random(spec.seed)``), so the same
spec renders a bit-identical report and re-running it is all cache
hits.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.dram.mapping import (
    RowToSubarrayMapping,
    SequentialR2SA,
    StridedR2SA,
)
from repro.params import SystemConfig, max_acts_per_bank_per_trefw
from repro.security.attacks import SingleBankHarness
from repro.sim.session import SimSession, is_failure, register_job_type
from repro.workloads.patterns import (
    AttackPattern,
    CompileContext,
    DecoyEvasion,
    DoubleSided,
    Feint,
    HalfDouble,
    NSided,
    RefreshSyncBurst,
    paper_attack_set,
)

FAMILIES = ("double-sided", "n-sided", "half-double", "feint",
            "evasion", "refresh-sync")
"""Pattern families the sampler draws from (round-robin coverage)."""

MITIGATIONS = ("none", "trr", "para", "mithril", "prac", "mint",
               "mirza")
"""Base names :func:`fuzz_tracker` resolves (optionally ``-<param>``)."""

_DEFAULT_MITIGATIONS = ("trr", "prac-1000", "mirza-1000")


# ----------------------------------------------------------------------
# Tracker resolution
# ----------------------------------------------------------------------
def fuzz_tracker(name: str, seed: int, config: SystemConfig,
                 mapping: RowToSubarrayMapping):
    """A fresh per-bank tracker for one fuzz cell.

    This is a fuzz-local registry, deliberately decoupled from the
    full-system :mod:`repro.sim.registry` setups: the harness needs a
    bare :class:`~repro.mitigations.base.BankTracker`, and the sweep
    wants insecure references (``trr``, ``para``) next to the paper's
    setups.  ``name`` is ``family`` or ``family-<param>`` where the
    parameter is the family's headline knob (TRR/Mithril entries,
    PRAC/MIRZA threshold, MINT window).
    """
    base, _, arg = name.partition("-")
    param = int(arg) if arg else None
    if base in ("none", "baseline"):
        from repro.mitigations import NoMitigation
        return NoMitigation()
    if base == "trr":
        from repro.mitigations import TrrTracker
        return TrrTracker(entries=param if param else 28)
    if base == "para":
        from repro.mitigations import ParaTracker
        return ParaTracker(1.0 / (param if param else 16),
                           rng=random.Random(seed))
    if base == "mithril":
        from repro.mitigations import MithrilTracker
        return MithrilTracker(entries=param if param else 2048)
    if base == "prac":
        from repro.mitigations import PracTracker
        return PracTracker(trhd=param if param else 1000,
                           abo=config.abo)
    if base == "mint":
        from repro.mitigations import MintTracker
        return MintTracker(window=param if param else 12,
                           refs_per_mitigation=1,
                           rng=random.Random(seed))
    if base == "mirza":
        from repro.core.config import MirzaConfig
        from repro.core.mirza import MirzaTracker
        cfg = MirzaConfig.paper_config(param if param else 1000)
        return MirzaTracker(cfg, config.geometry, mapping,
                            rng=random.Random(seed))
    raise KeyError(f"unknown fuzz mitigation {name!r}; base names: "
                   f"{', '.join(MITIGATIONS)}")


def _mapping_for(kind: str, config: SystemConfig
                 ) -> RowToSubarrayMapping:
    if kind == "sequential":
        return SequentialR2SA(config.geometry)
    if kind == "strided":
        return StridedR2SA(config.geometry)
    raise KeyError(f"unknown mapping {kind!r} (sequential or strided)")


# ----------------------------------------------------------------------
# The cacheable cell
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzOutcome:
    """One executed fuzz cell, reduced to its security observables."""

    label: str
    family: str
    mitigation: str
    acts: int
    max_unmitigated: int
    alerts: int
    mitigations: int


@dataclass(frozen=True)
class FuzzJob:
    """One (pattern, mitigation) harness run; content-addressed.

    The pattern spec *is* the job material: every shape and timing
    knob, including each pattern's own ``seed``, participates in the
    cache token through :func:`repro.sim.session.describe`.
    """

    pattern: Any  # an AttackPattern (typed Any: no import cycles)
    mitigation: str
    seed: int = 0
    acts_per_ref: int = 0
    """Harness REF cadence in ACTs; 0 derives it from the timings."""
    mapping: str = "sequential"
    blast_radius: int = 2
    config: SystemConfig = SystemConfig()

    def execute(self) -> FuzzOutcome:
        """Drive the compiled stream through the harness (worker path)."""
        mapping = _mapping_for(self.mapping, self.config)
        tracker = fuzz_tracker(self.mitigation, self.seed, self.config,
                               mapping)
        harness = SingleBankHarness(
            tracker, self.config, mapping=mapping,
            blast_radius=self.blast_radius,
            acts_per_ref=self.acts_per_ref or None)
        ctx = CompileContext.make(
            mapping=mapping, config=self.config,
            acts_per_trefi=harness.acts_per_ref)
        harness.run(self.pattern.rows(ctx))
        harness.flush_alert()
        return FuzzOutcome(
            label=self.pattern.label(),
            family=type(self.pattern).__name__,
            mitigation=self.mitigation,
            acts=harness.acts,
            max_unmitigated=harness.max_unmitigated,
            alerts=harness.alerts,
            mitigations=harness.mitigations)


register_job_type(FuzzJob,
                  dataclasses.asdict,
                  lambda payload: FuzzOutcome(**payload))


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def sample_pattern(rng: random.Random, family: str, acts: int,
                   config: SystemConfig,
                   tracker_entries: int = 28) -> AttackPattern:
    """One boundary-biased sample of ``family``'s parameter space.

    Victims are uniform over the whole bank (subarray edges included
    -- the degraded single-sided case must be reachable), and
    capacity-shaped knobs are biased toward the tracker's edges
    (``decoys`` just past the table size, bursts around it): the
    boundaries are where evasion lives.
    """
    rows = config.geometry.rows_per_bank
    victim = rng.randrange(rows)
    if family == "double-sided":
        return DoubleSided(victim_row=victim, acts=acts)
    if family == "n-sided":
        return NSided(victim_row=victim, sides=rng.randint(3, 6),
                      acts=acts)
    if family == "half-double":
        return HalfDouble(victim_row=victim, acts=acts,
                          far_acts_per_near=rng.choice((2, 4, 8, 16)))
    if family == "feint":
        return Feint(tracker_entries=tracker_entries, acts=acts,
                     decoys=rng.choice((1, 1, 2, 3, 5, 8, 13)),
                     base_row=rng.randrange(rows // 2))
    if family == "evasion":
        return DecoyEvasion(
            table_entries=tracker_entries,
            target_row=victim, acts=acts,
            seed=rng.getrandbits(32),
            burst=rng.choice((0, tracker_entries // 2,
                              tracker_entries, 2 * tracker_entries)))
    if family == "refresh-sync":
        pair = (max(0, victim - 1), min(rows - 1, victim + 1))
        return RefreshSyncBurst(
            aggressors=pair,
            reads_per_trefi=rng.choice((2, 4, 8, 16, 32)),
            acts=acts, seed=rng.getrandbits(32))
    raise KeyError(f"unknown pattern family {family!r}")


@dataclass(frozen=True)
class FuzzSpec:
    """A whole sweep, as one describable value (seed included)."""

    mitigations: Tuple[str, ...] = _DEFAULT_MITIGATIONS
    budget: int = 16
    """Fuzzed patterns per sweep (each runs against every mitigation)."""
    acts: int = 30_000
    """Attacker ACTs per cell."""
    seed: int = 0
    acts_per_ref: int = 0
    mapping: str = "sequential"
    tracker_entries: int = 28
    """Capacity hint shaping feint/evasion samples (the TRR default)."""
    config: SystemConfig = SystemConfig()


def fuzz_patterns(spec: FuzzSpec) -> List[AttackPattern]:
    """The seeded sample set: families round-robin over the budget so
    every family appears, parameters drawn from ``Random(spec.seed)``."""
    rng = random.Random(spec.seed)
    return [
        sample_pattern(rng, FAMILIES[i % len(FAMILIES)], spec.acts,
                       spec.config, spec.tracker_entries)
        for i in range(spec.budget)
    ]


def fuzz_jobs(spec: FuzzSpec
              ) -> List[Tuple[str, FuzzJob]]:
    """Every cell of the sweep as ``(origin, job)``; origin is
    ``"fuzz"`` or ``"paper"``."""
    tagged = [("fuzz", p) for p in fuzz_patterns(spec)]
    tagged += [("paper", p) for p in paper_attack_set(
        spec.acts, spec.tracker_entries).values()]
    return [
        (origin, FuzzJob(pattern=pattern, mitigation=mitigation,
                         seed=spec.seed,
                         acts_per_ref=spec.acts_per_ref,
                         mapping=spec.mapping, config=spec.config))
        for mitigation in spec.mitigations
        for origin, pattern in tagged
    ]


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzEntry:
    """One sweep row: a cell's outcome plus its origin tag."""

    origin: str
    outcome: FuzzOutcome


@dataclass
class FuzzReport:
    """Reduced sweep: per-mitigation escape ranking, fuzz vs paper."""

    spec: FuzzSpec
    entries: List[FuzzEntry]
    failed: int = 0

    def ranked(self, mitigation: str) -> List[FuzzEntry]:
        """The mitigation's cells, worst escape first (stable order)."""
        rows = [e for e in self.entries
                if e.outcome.mitigation == mitigation]
        return sorted(rows, key=lambda e: (-e.outcome.max_unmitigated,
                                           e.origin, e.outcome.label))

    def best(self, mitigation: str, origin: str
             ) -> Optional[FuzzEntry]:
        """The origin's worst-escape cell against one mitigation."""
        for entry in self.ranked(mitigation):
            if entry.origin == origin:
                return entry
        return None

    def dominated(self, mitigation: str) -> bool:
        """Did a fuzzed pattern strictly beat every paper pattern?"""
        fuzzed = self.best(mitigation, "fuzz")
        paper = self.best(mitigation, "paper")
        if fuzzed is None or paper is None:
            return False
        return (fuzzed.outcome.max_unmitigated
                > paper.outcome.max_unmitigated)

    def render(self, top: int = 5) -> str:
        """Deterministic text report (the CLI's stdout contract: the
        same spec must render bit-identically run over run)."""
        spec = self.spec
        lines = [
            f"fuzz sweep: {spec.budget} fuzzed + 4 paper patterns x "
            f"{len(spec.mitigations)} mitigations, acts={spec.acts}, "
            f"seed={spec.seed}"]
        if self.failed:
            lines.append(f"  ({self.failed} cells failed)")
        for mitigation in spec.mitigations:
            lines.append("")
            lines.append(f"[{mitigation}] top escapes "
                         f"(max unmitigated ACTs per row):")
            for entry in self.ranked(mitigation)[:top]:
                o = entry.outcome
                lines.append(
                    f"  {o.max_unmitigated:>7}  {entry.origin:<5} "
                    f"alerts={o.alerts:<4} mitig={o.mitigations:<5} "
                    f"{o.label}")
            fuzzed = self.best(mitigation, "fuzz")
            paper = self.best(mitigation, "paper")
            if fuzzed and paper:
                verdict = ("paper set dominated"
                           if self.dominated(mitigation)
                           else "paper set not beaten")
                lines.append(
                    f"  best fuzzed {fuzzed.outcome.max_unmitigated} "
                    f"vs best paper {paper.outcome.max_unmitigated} "
                    f"-> {verdict}")
        return "\n".join(lines)


def run_fuzz(spec: FuzzSpec,
             session: Optional[SimSession] = None) -> FuzzReport:
    """Execute the sweep as one session batch and reduce it."""
    session = session if session is not None else SimSession()
    cells = fuzz_jobs(spec)
    results = session.run_many([job for _, job in cells])
    entries: List[FuzzEntry] = []
    failed = 0
    for (origin, _), result in zip(cells, results):
        if result is None or is_failure(result):
            failed += 1
            continue
        entries.append(FuzzEntry(origin=origin, outcome=result))
    return FuzzReport(spec=spec, entries=entries, failed=failed)


def escape_curve(patterns: List[AttackPattern], mitigation: str,
                 spec: FuzzSpec = FuzzSpec(),
                 session: Optional[SimSession] = None
                 ) -> List[Tuple[AttackPattern, int]]:
    """Escape count for each pattern against one mitigation.

    The escape-vs-parameter curve helper: build the patterns by
    varying one knob, get back ``(pattern, max_unmitigated)`` pairs in
    the same order (cacheable cells, like any sweep).
    """
    session = session if session is not None else SimSession()
    jobs = [FuzzJob(pattern=p, mitigation=mitigation, seed=spec.seed,
                    acts_per_ref=spec.acts_per_ref,
                    mapping=spec.mapping, config=spec.config)
            for p in patterns]
    results = session.run_many(jobs)
    return [(p, 0 if (r is None or is_failure(r))
             else r.max_unmitigated)
            for p, r in zip(patterns, results)]


def default_acts(time_scale: int = 1,
                 config: SystemConfig = SystemConfig()) -> int:
    """Per-cell ACT budget scaled like the timed exhibits: a full
    refresh window's worth at scale 1, floored so capacity-edge
    effects (the slow linear climb past a starved tracker) stay
    visible at smoke scales."""
    budget = max_acts_per_bank_per_trefw(config.timings)
    return max(12_000, budget // max(1, time_scale))


__all__ = [
    "FAMILIES",
    "MITIGATIONS",
    "FuzzEntry",
    "FuzzJob",
    "FuzzOutcome",
    "FuzzReport",
    "FuzzSpec",
    "default_acts",
    "escape_curve",
    "fuzz_jobs",
    "fuzz_patterns",
    "fuzz_tracker",
    "run_fuzz",
    "sample_pattern",
]
