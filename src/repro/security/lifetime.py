"""System-lifetime failure analysis for probabilistic trackers.

Randomized trackers like MINT and MIRZA are secure *probabilistically*:
the analytic model bounds the attack success probability per bank per
refresh window at ``2**-k``.  Whether a given ``k`` is acceptable is a
fleet-lifetime question -- windows are 32 ms, systems have dozens of
banks, fleets have thousands of machines, and attacks run for years.
This module does that arithmetic, which is how the calibrated
``k = 28.5`` (see :mod:`repro.security.mint_model`) should be read.

All functions work in log-space where it matters, so fleet-scale
probabilities stay exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.params import DramTimings, SystemConfig

SECONDS_PER_YEAR = 365.25 * 24 * 3600


def windows_per_year(timings: DramTimings = DramTimings()) -> float:
    """Refresh windows elapsed in one year of uptime (~986 million)."""
    return SECONDS_PER_YEAR / (timings.tREFW * 1e-12)


def attack_success_probability(fail_exponent: float,
                               years: float = 1.0,
                               banks: int = 64,
                               machines: int = 1,
                               timings: DramTimings = DramTimings()
                               ) -> float:
    """P(any bank on any machine ever fails) over the horizon.

    Union bound over ``banks * machines * windows`` independent
    per-window attack opportunities, each succeeding with probability
    ``2**-fail_exponent``.
    """
    if fail_exponent <= 0 or years <= 0 or banks < 1 or machines < 1:
        raise ValueError("arguments must be positive")
    opportunities = banks * machines * windows_per_year(timings) * years
    log_p = math.log(opportunities) - fail_exponent * math.log(2)
    if log_p >= 0:
        return 1.0
    return -math.expm1(log_p) * 0 + math.exp(log_p)  # exp, clamped


def mean_time_to_failure_years(fail_exponent: float,
                               banks: int = 64,
                               machines: int = 1,
                               timings: DramTimings = DramTimings()
                               ) -> float:
    """Expected years until the first successful attack (geometric)."""
    per_window = 2.0 ** -fail_exponent * banks * machines
    if per_window >= 1.0:
        return 0.0
    windows = 1.0 / per_window
    return windows / windows_per_year(timings)


def required_exponent(target_probability: float,
                      years: float,
                      banks: int = 64,
                      machines: int = 1,
                      timings: DramTimings = DramTimings()) -> float:
    """Smallest ``k`` keeping the horizon failure below the target."""
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target probability must be in (0, 1)")
    opportunities = banks * machines * windows_per_year(timings) * years
    return (math.log(opportunities) - math.log(target_probability)) \
        / math.log(2)


@dataclass(frozen=True)
class LifetimeReport:
    """Lifetime picture of one configuration."""

    fail_exponent: float
    single_machine_mttf_years: float
    fleet_1k_failure_10y: float
    single_machine_failure_10y: float


def lifetime_report(fail_exponent: float,
                    config: SystemConfig = SystemConfig()
                    ) -> LifetimeReport:
    """Bundle the lifetime numbers for one failure exponent."""
    banks = config.geometry.total_banks
    return LifetimeReport(
        fail_exponent=fail_exponent,
        single_machine_mttf_years=mean_time_to_failure_years(
            fail_exponent, banks),
        fleet_1k_failure_10y=attack_success_probability(
            fail_exponent, years=10, banks=banks, machines=1000),
        single_machine_failure_10y=attack_success_probability(
            fail_exponent, years=10, banks=banks),
    )
