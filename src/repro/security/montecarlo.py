"""Monte Carlo validation of the analytic MINT security model.

The analytic model (:mod:`repro.security.mint_model`) bounds the
unmitigated activations an attacker sustains against MINT's sampling.
This module cross-checks it empirically:

- :func:`escape_probability` measures the chance a row hammered ``d``
  times per window survives ``m`` windows unselected, against the
  closed form ``(1 - d/W) ** m``;
- :func:`max_unmitigated_distribution` plays the focused-hammer game
  many times and reports the empirical distribution of the worst
  unmitigated count, whose high quantiles must sit below the analytic
  bound at the corresponding failure probability.

Both are used by tests and by the Table II bench's self-check.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.core.mint import MintSampler
from repro.security.mint_model import mint_unmitigated_bound


def escape_probability(window: int, acts_per_window: int,
                       windows: int, trials: int = 2000,
                       seed: int = 0) -> float:
    """Empirical probability the target escapes all selections."""
    if not 1 <= acts_per_window <= window:
        raise ValueError("acts_per_window must be in [1, window]")
    rng = random.Random(seed)
    escapes = 0
    for _ in range(trials):
        sampler = MintSampler(window, random.Random(rng.getrandbits(32)))
        escaped = True
        for _ in range(windows):
            for position in range(window):
                row = 1 if position < acts_per_window else 1000 + position
                if sampler.observe(row) == 1:
                    escaped = False
        if escaped:
            escapes += 1
    return escapes / trials


def analytic_escape_probability(window: int, acts_per_window: int,
                                windows: int) -> float:
    """The closed form the model is built on."""
    return (1.0 - acts_per_window / window) ** windows


def max_unmitigated_distribution(window: int, acts_per_window: int = 1,
                                 horizon_acts: int = 50_000,
                                 trials: int = 200,
                                 seed: int = 0) -> List[int]:
    """Worst unmitigated count per trial for a focused hammer.

    The attacker lands ``acts_per_window`` activations on the target
    per MINT window (the rest go to decoys); a selection mitigates the
    target and resets its count.  Returns one maximum per trial.
    """
    rng = random.Random(seed)
    results = []
    windows = max(1, horizon_acts // window)
    for _ in range(trials):
        sampler = MintSampler(window,
                              random.Random(rng.getrandbits(32)))
        count = 0
        worst = 0
        for _ in range(windows):
            for position in range(window):
                if position < acts_per_window:
                    count += 1
                    worst = max(worst, count)
                    if sampler.observe(1) == 1:
                        count = 0
                else:
                    sampler.observe(1000 + position)
        results.append(worst)
    return results


def empirical_bound_check(window: int, fail_exponent: float,
                          horizon_acts: int = 50_000,
                          trials: int = 300, seed: int = 0) -> dict:
    """Compare the analytic bound with the empirical distribution.

    Returns the analytic bound at ``2**-fail_exponent``, the empirical
    maximum over the trials, and the implied empirical exponent of the
    observed maximum (how unlikely the analytic model says it was).
    """
    bound = mint_unmitigated_bound(window, fail_exponent)
    observed = max_unmitigated_distribution(
        window, horizon_acts=horizon_acts, trials=trials, seed=seed)
    worst = max(observed)
    # Invert the bound: exponent k such that N(W, k) == worst.
    escape = 1.0 - 1.0 / window
    implied = worst * -math.log(escape) / math.log(2)
    return {
        "analytic_bound": bound,
        "empirical_max": worst,
        "implied_exponent": implied,
        "trials": trials,
    }
