"""Proactive-mitigation analysis: tolerated TRH vs mitigation rate.

Table II of the paper shows the double-sided threshold MINT and Mithril
tolerate when one aggressor is mitigated every 1/2/4/8 REF commands,
together with the *refresh cannibalisation* -- the fraction of REF time
those mitigations consume.

For MINT the mapping is direct: mitigating once per ``r`` REF commands
makes the effective MINT window the number of activations the bank can
absorb between mitigations, ``W = r * acts_per_ref_interval``, and the
tolerated threshold follows from the analytic sampling model.

For Mithril (a Misra-Gries counter tracker) we report the empirically
measured worst case under the feinting attack (see
:mod:`repro.security.attacks` and the Table II bench); the analytic
helper here gives the Misra-Gries decrement bound used to provision it.
"""

from __future__ import annotations

from repro.params import DramTimings, MitigationCosts
from repro.security.mint_model import (
    MINT_FAILURE_EXPONENT,
    mint_tolerated_trhd,
)


def acts_per_ref_interval(timings: DramTimings = DramTimings()) -> int:
    """Maximum ACTs a bank can absorb between consecutive REF commands.

    One tREFI minus the REF execution time, divided by tRC (~76 for the
    default DDR5 timings).
    """
    return (timings.tREFI - timings.tRFC) // timings.tRC


def refresh_cannibalization(refs_per_mitigation: int,
                            timings: DramTimings = DramTimings(),
                            costs: MitigationCosts = MitigationCosts()
                            ) -> float:
    """Fraction of REF time consumed by one mitigation per ``r`` REFs.

    Mitigating one aggressor takes 280 ns out of each ``r * 410`` ns of
    REF execution time (Table II's second column: 68%/34%/17%/8.5%).
    """
    if refs_per_mitigation < 1:
        raise ValueError("refs_per_mitigation must be >= 1")
    return costs.mitigation_time / (refs_per_mitigation * timings.tRFC)


def mint_trh_for_mitigation_rate(refs_per_mitigation: int,
                                 timings: DramTimings = DramTimings(),
                                 fail_exponent: float =
                                 MINT_FAILURE_EXPONENT) -> int:
    """TRHD MINT tolerates at one mitigation per ``r`` REF (Table II)."""
    window = refs_per_mitigation * acts_per_ref_interval(timings)
    return mint_tolerated_trhd(window, fail_exponent)


def mithril_trh_bound(entries: int, refs_per_mitigation: int,
                      timings: DramTimings = DramTimings()) -> int:
    """Analytic tolerated-TRHD bound for a Misra-Gries tracker.

    Mithril's managed-refresh analysis bounds the maximum count any row
    can reach between mitigations of the running maximum.  With ``k``
    entries and a mitigation budget of one per ``W`` activations, the
    adversarial (feinting) pattern sustains a per-row count that grows
    roughly with ``W * ln(k) / ln(2)`` before the tracker is forced to
    mitigate it; we expose the bound primarily as a cross-check for the
    empirical feinting-attack measurement used in the Table II bench.
    """
    import math

    if entries < 1 or refs_per_mitigation < 1:
        raise ValueError("entries and refs_per_mitigation must be >= 1")
    window = refs_per_mitigation * acts_per_ref_interval(timings)
    return int(window * (1 + math.log2(max(2, entries)) / 2))
