"""Security models, attack kernels, and storage/area accounting.

- :mod:`repro.security.mint_model`  -- analytic tolerated-TRH model for
  MINT's uniform random sampling (calibrated to the public MINT model).
- :mod:`repro.security.mirza_model` -- MIRZA's phase A-D safe-TRH
  accounting (Section VI) and the configuration solver behind Table VII.
- :mod:`repro.security.analysis`    -- proactive-tracker tolerated-TRH vs
  mitigation rate (Table II) with refresh-cannibalisation accounting.
- :mod:`repro.security.area`        -- SRAM/DRAM cell-area model
  (Tables VII, X, XII).
- :mod:`repro.security.attacks`     -- the attack verification harness
  (tracker vs ground-truth oracle at ACT granularity).
- :mod:`repro.security.fuzz`        -- seeded attack-parameter fuzzer
  sweeping :mod:`repro.workloads.patterns` shapes against each
  mitigation through cacheable session jobs.
"""

from repro.security.analysis import (
    acts_per_ref_interval,
    mint_trh_for_mitigation_rate,
    refresh_cannibalization,
)
from repro.security.area import (
    AreaModel,
    mirza_storage_bytes_per_bank,
    prac_counter_bits_for_trhd,
)
from repro.security.lifetime import (
    attack_success_probability,
    lifetime_report,
    mean_time_to_failure_years,
    required_exponent,
)
from repro.security.mint_model import (
    MINT_FAILURE_EXPONENT,
    mint_tolerated_trhd,
    mint_tolerated_trhs,
    mint_window_for_trhd,
)
from repro.security.mirza_model import (
    abo_extra_acts,
    mirza_safe_trhd,
    mirza_safe_trhs,
    solve_fth,
)
from repro.security.montecarlo import (
    empirical_bound_check,
    escape_probability,
)

_FUZZ_EXPORTS = ("FuzzJob", "FuzzOutcome", "FuzzReport", "FuzzSpec",
                 "escape_curve", "fuzz_tracker", "run_fuzz",
                 "sample_pattern")


def __getattr__(name):
    # The fuzzer pulls in the whole session/runner stack, which imports
    # repro.core -- whose config module imports repro.security.area.
    # Loading repro.security.fuzz lazily breaks that cycle without
    # hiding the fuzzer from the package API.
    if name in _FUZZ_EXPORTS:
        from repro.security import fuzz
        return getattr(fuzz, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AreaModel",
    "FuzzJob",
    "FuzzOutcome",
    "FuzzReport",
    "FuzzSpec",
    "MINT_FAILURE_EXPONENT",
    "abo_extra_acts",
    "acts_per_ref_interval",
    "attack_success_probability",
    "empirical_bound_check",
    "escape_curve",
    "escape_probability",
    "fuzz_tracker",
    "run_fuzz",
    "sample_pattern",
    "lifetime_report",
    "mean_time_to_failure_years",
    "mint_tolerated_trhd",
    "mint_tolerated_trhs",
    "mint_trh_for_mitigation_rate",
    "mint_window_for_trhd",
    "mirza_safe_trhd",
    "mirza_safe_trhs",
    "mirza_storage_bytes_per_bank",
    "prac_counter_bits_for_trhd",
    "refresh_cannibalization",
    "required_exponent",
    "solve_fth",
]
