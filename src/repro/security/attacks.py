"""Attack verification harness: tracker vs ground-truth oracle.

:class:`SingleBankHarness` drives a bare activation stream (no timing
model, one logical ACT per tRC) into one bank, its tracker, and the
ground-truth row oracle, while modelling the pieces of the protocol an
attacker can exploit:

- demand refresh every ``acts_per_ref`` activations (the REF sweep the
  RCT safe-reset synchronises with);
- the ABO prologue: after a tracker asserts ALERT, the attacker lands
  ``acts_during_prologue`` more activations before the stall, and one
  mandatory epilogue ACT before the next ALERT (Phase D / Figure 10);
- proactive REF-slot mitigations for REF-paced trackers.

Security tests drive adversarial streams through the harness and assert
on ``max_unmitigated`` -- the oracle's worst per-row count -- against
the configured Rowhammer threshold.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.dram.bank import Bank
from repro.dram.mapping import RowToSubarrayMapping
from repro.dram.refresh import RefreshScheduler
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.params import SystemConfig
from repro.security.analysis import acts_per_ref_interval


class SingleBankHarness:
    """ACT-granularity security test bench for one bank + tracker."""

    def __init__(self, tracker: BankTracker,
                 config: SystemConfig = SystemConfig(),
                 mapping: Optional[RowToSubarrayMapping] = None,
                 refs_per_window: Optional[int] = None,
                 blast_radius: int = 2,
                 acts_per_ref: Optional[int] = None) -> None:
        self.tracker = tracker
        self.config = config
        if mapping is None:
            # Mapping-aware trackers (MIRZA) must see the same
            # row-to-subarray placement as the bank and the refresh
            # sweep -- otherwise oracle resets and RCT resets drift
            # apart and the measurement is meaningless.
            mapping = getattr(tracker, "mapping", None)
        self.bank = Bank(0, config.geometry, mapping)
        self.refresh = RefreshScheduler(config.geometry, self.bank.mapping,
                                        refs_per_window)
        self.blast_radius = blast_radius
        self.acts_per_ref = (acts_per_ref if acts_per_ref is not None
                             else acts_per_ref_interval(config.timings))
        self.abo = config.abo
        self.acts = 0
        self.alerts = 0
        self.mitigations = 0
        self._acts_since_ref = 0
        self._acts_since_alert = 1
        self._alert_countdown: Optional[int] = None

    # ------------------------------------------------------------------
    def _now(self) -> int:
        return self.acts * self.config.timings.tRC

    def activate(self, row: int) -> None:
        """One attacker-controlled activation."""
        now = self._now()
        self.bank.activate(row)
        self.tracker.on_activate(row, now)
        self.acts += 1
        self._acts_since_alert += 1
        self._acts_since_ref += 1
        if self._acts_since_ref >= self.acts_per_ref:
            self._do_ref(now)
        if self._alert_countdown is not None:
            self._alert_countdown -= 1
            if self._alert_countdown <= 0:
                self._service_alert(now)
        elif (self.tracker.wants_alert()
              and self._acts_since_alert > self.abo.epilogue_acts):
            # ALERT asserts now; the attacker still lands the prologue
            # activations before the stall begins.
            self._alert_countdown = self.abo.acts_during_prologue

    def run(self, stream: Iterable[int]) -> None:
        """Feed a whole activation stream through the harness."""
        for row in stream:
            self.activate(row)

    def flush_alert(self) -> None:
        """Service a pending ALERT without further attacker ACTs."""
        if self._alert_countdown is not None or self.tracker.wants_alert():
            self._service_alert(self._now())

    # ------------------------------------------------------------------
    def _do_ref(self, now: int) -> None:
        self._acts_since_ref = 0
        slice_ = self.refresh.advance()
        self.bank.refresh_rows(slice_.logical_rows)
        self.tracker.on_ref_slice(slice_, now)
        for row in self.tracker.on_mitigation_slot(
                now, MitigationSlotSource.REF):
            self.bank.mitigate(row, self.blast_radius)
            self.mitigations += 1

    def _service_alert(self, now: int) -> None:
        self._alert_countdown = None
        self._acts_since_alert = 0
        self.alerts += 1
        for row in self.tracker.on_mitigation_slot(
                now, MitigationSlotSource.ALERT):
            self.bank.mitigate(row, self.blast_radius)
            self.mitigations += 1

    # ------------------------------------------------------------------
    @property
    def max_unmitigated(self) -> int:
        """Worst per-row unmitigated ACT count ever observed (oracle)."""
        return self.bank.oracle.max_unmitigated

    def attack_succeeded(self, threshold: int) -> bool:
        """Ground truth: did any row ever exceed ``threshold``?"""
        return self.bank.oracle.attack_succeeded(threshold)
