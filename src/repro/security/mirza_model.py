"""MIRZA's safe-TRH accounting: the four phases of Section VI.

A row's unmitigated activations accrue through four phases before it is
guaranteed to be mitigated (Figure 9):

=======  ==========================================================
Phase    Unmitigated ACTs
=======  ==========================================================
A (RCT)  up to FTH before the region counter saturates
B (MINT) up to the tolerated threshold of MINT's random sampling
C (Q)    up to QTH while buffered in MIRZA-Q
D (ABO)  up to ``2 * acts_between_alerts - 1`` extra ACTs because
         ALERT is not instantaneous (the ``Q+7`` of Figure 10)
=======  ==========================================================

Single-sided: ``TRHS_safe > FTH + MINT_TRHS + QTH + ABO_acts``.
Double-sided: each aggressor only accounts for half of the region
counter's budget, so ``TRHD_safe > FTH/2 + MINT_TRHD + QTH + ABO_acts``.

``solve_fth`` inverts the double-sided bound to provision the largest
safe filtering threshold for a target TRHD -- this is how the Table VII
configurations are derived.
"""

from __future__ import annotations

from repro.params import AboTimings
from repro.security.mint_model import (
    MINT_FAILURE_EXPONENT,
    mint_tolerated_trhd,
    mint_tolerated_trhs,
)


def abo_extra_acts(abo: AboTimings = AboTimings()) -> int:
    """Phase-D bound: extra ACTs accrued because ALERT takes time.

    Highest-tardiness-first eviction means an entry can sit through at
    most two full ALERT gaps after crossing QTH before it becomes the
    maximum and is mitigated; each gap admits
    ``acts_during_prologue + epilogue_acts`` activations, minus one
    because the triggering activation is already counted.  For the
    default protocol (3 prologue + 1 epilogue) this is the ``Q+7`` worst
    case of Figure 10.
    """
    return 2 * abo.acts_between_alerts - 1


def mirza_safe_trhs(fth: int, mint_window: int, qth: int,
                    abo: AboTimings = AboTimings(),
                    fail_exponent: float = MINT_FAILURE_EXPONENT) -> int:
    """Smallest single-sided threshold MIRZA safely tolerates."""
    return (fth + mint_tolerated_trhs(mint_window, fail_exponent)
            + qth + abo_extra_acts(abo) + 1)


def mirza_safe_trhd(fth: int, mint_window: int, qth: int,
                    abo: AboTimings = AboTimings(),
                    fail_exponent: float = MINT_FAILURE_EXPONENT) -> int:
    """Smallest double-sided threshold MIRZA safely tolerates."""
    return (fth // 2 + mint_tolerated_trhd(mint_window, fail_exponent)
            + qth + abo_extra_acts(abo) + 1)


def solve_fth(trhd_target: int, mint_window: int, qth: int = 16,
              abo: AboTimings = AboTimings(),
              fail_exponent: float = MINT_FAILURE_EXPONENT) -> int:
    """Largest FTH keeping MIRZA safe at ``trhd_target`` (Table VII).

    Inverts ``TRHD > FTH/2 + MINT_TRHD + QTH + ABO_acts``.  Raises
    ``ValueError`` when even FTH = 0 cannot meet the target (the MINT
    window is too large for the threshold).
    """
    budget = (trhd_target - 1 - mint_tolerated_trhd(mint_window,
                                                    fail_exponent)
              - qth - abo_extra_acts(abo))
    if budget < 0:
        raise ValueError(
            f"MINT-{mint_window} cannot meet TRHD={trhd_target} even "
            f"without filtering")
    return 2 * budget
