"""Trace ingestion: bring-your-own-trace support for real DRAM traces.

Users with real miss traces (from a cache simulator, a pintool, or
DRAMSim-style front ends) can run them through the full system instead
of the synthetic generators.  The *native* format is deliberately
trivial -- one whitespace-separated record per line::

    <compute_ps> <instructions> <subchannel> <bank> <row>

with ``#`` comments and blank lines ignored.  Round-trips exactly.
Leading ``# key: value`` comment lines carry optional metadata (for
example ``# workload: tc``, the Table IV spec a converted trace claims
to represent); :func:`trace_metadata` reads them back.

Two external formats convert into the native one (streaming, via
:func:`convert_trace` or the ``repro trace convert`` CLI verb):

* **dramsim3** -- DRAMSim3-style command traces, one
  ``<address> <READ|WRITE|...> <cycle>`` record per line; addresses
  are split into coordinates by a litex-style
  :class:`~repro.dram.mapping.BitFieldDecoder` and inter-command cycle
  deltas become compute gaps.
* **litex-rows** -- litex rowhammer-tester payload row lists, one row
  number per line, replayed as back-to-back activations to one bank.

All readers and writers accept ``.gz`` paths transparently, and parse
errors name the source path so multi-file sweeps stay debuggable.
"""

from __future__ import annotations

import gzip
import io
from typing import Callable, Dict, Iterable, Iterator, List, \
    Optional, TextIO, Tuple, Union

from repro.cpu.trace import ChunkSource, ENTRY_DTYPE, TraceEntry, \
    chunk_entries, chunk_to_array, cyclic
from repro.dram.mapping import AddressSpace, AddressSpaceSpec, \
    BitFieldDecoder, IdentityAddressSpace
from repro.params import DramGeometry, SystemConfig

_FIELDS = 5

#: Formats ``convert_trace`` understands (plus ``"auto"`` detection).
TRACE_FORMATS = ("native", "dramsim3", "litex-rows")

#: Default DRAM command clock period for dramsim3 cycle stamps
#: (DDR5-like ~1.2 GHz command clock).
DEFAULT_CYCLE_PS = 833


def _display_name(source: Union[str, TextIO]) -> str:
    """Human-readable source name for error messages."""
    if isinstance(source, str):
        return source
    return getattr(source, "name", None) or "<stream>"


def _open_text(source: Union[str, TextIO], mode: str
               ) -> Tuple[TextIO, bool]:
    """Open a path (gzip-aware) or pass a handle through.

    Returns ``(handle, owned)``; only owned handles are closed by the
    caller.  Compression is keyed purely on the ``.gz`` suffix, so
    compressed traces need no flag anywhere in the stack.
    """
    if not isinstance(source, str):
        return source, False
    if source.endswith(".gz"):
        return gzip.open(source, mode + "t"), True
    return open(source, mode), True


def write_trace(entries: Iterable[TraceEntry],
                target: Union[str, TextIO],
                metadata: Optional[Dict[str, str]] = None) -> int:
    """Write entries to a path (``.gz``-aware) or file object.

    ``metadata`` key/value pairs are emitted as leading ``# key: value``
    comment lines that :func:`trace_metadata` reads back.  Returns the
    entry count.
    """
    handle, own = _open_text(target, "w")
    count = 0
    try:
        handle.write("# compute_ps instructions subchannel bank row\n")
        for key, value in (metadata or {}).items():
            handle.write(f"# {key}: {value}\n")
        for entry in entries:
            handle.write(f"{entry.compute_ps} {entry.instructions} "
                         f"{entry.subchannel} {entry.bank} "
                         f"{entry.row}\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_trace(source: Union[str, TextIO]) -> Iterator[TraceEntry]:
    """Lazily parse a native trace from a path (``.gz``-aware) or
    file object."""
    name = _display_name(source)
    handle, own = _open_text(source, "r")
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != _FIELDS:
                raise ValueError(
                    f"{name}: line {lineno}: expected {_FIELDS} "
                    f"fields, got {len(parts)}: {line!r}")
            try:
                values = [int(p) for p in parts]
            except ValueError:
                raise ValueError(
                    f"{name}: line {lineno}: non-integer field in "
                    f"{line!r}") from None
            compute, instructions, subch, bank, row = values
            if compute < 0 or instructions < 0 or subch < 0 \
                    or bank < 0 or row < 0:
                raise ValueError(
                    f"{name}: line {lineno}: negative field in "
                    f"{line!r}")
            yield TraceEntry(compute_ps=compute,
                             instructions=instructions,
                             subchannel=subch, bank=bank, row=row)
    finally:
        if own:
            handle.close()


def trace_metadata(source: Union[str, TextIO]) -> Dict[str, str]:
    """``# key: value`` metadata from a native trace's comment header.

    Stops at the first non-comment line, so the whole file is never
    read.  Comment lines without a colon (like the column-name banner)
    are skipped.
    """
    handle, own = _open_text(source, "r")
    meta: Dict[str, str] = {}
    try:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if not line.startswith("#"):
                break
            body = line.lstrip("#").strip()
            if ":" not in body:
                continue
            key, _, value = body.partition(":")
            meta[key.strip()] = value.strip()
    finally:
        if own:
            handle.close()
    return meta


def load_trace(source: Union[str, TextIO]) -> List[TraceEntry]:
    """Materialise a whole native trace file."""
    return list(read_trace(source))


def trace_from_string(text: str) -> List[TraceEntry]:
    """Parse a native trace from an in-memory string (tests,
    examples)."""
    return load_trace(io.StringIO(text))


def read_dramsim3_trace(source: Union[str, TextIO],
                        decoder: Optional[BitFieldDecoder] = None,
                        geometry: DramGeometry = DramGeometry(),
                        cycle_ps: int = DEFAULT_CYCLE_PS,
                        instructions: int = 1
                        ) -> Iterator[TraceEntry]:
    """Lazily ingest a DRAMSim3-style command trace.

    Each record is ``<address> <command> <cycle>`` -- a hex (or
    decimal) byte address, an opcode such as ``READ``/``WRITE`` (kept
    only as documentation; every record becomes one memory request),
    and a non-decreasing issue cycle.  Inter-record cycle deltas times
    ``cycle_ps`` become the native ``compute_ps`` gaps, and every
    record retires ``instructions`` instructions, which is how a
    converted trace encodes the MPKI it claims.
    """
    name = _display_name(source)
    if decoder is None:
        decoder = BitFieldDecoder.for_geometry(geometry)
    handle, own = _open_text(source, "r")
    last_cycle: Optional[int] = None
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{name}: line {lineno}: expected 3 fields "
                    f"(address command cycle), got {len(parts)}: "
                    f"{line!r}")
            try:
                address = int(parts[0], 0)
                cycle = int(parts[2])
            except ValueError:
                raise ValueError(
                    f"{name}: line {lineno}: non-integer address or "
                    f"cycle in {line!r}") from None
            if address < 0 or cycle < 0:
                raise ValueError(
                    f"{name}: line {lineno}: negative field in "
                    f"{line!r}")
            if last_cycle is not None and cycle < last_cycle:
                raise ValueError(
                    f"{name}: line {lineno}: cycle {cycle} goes "
                    f"backwards (previous {last_cycle})")
            delta = cycle - (last_cycle
                             if last_cycle is not None else cycle)
            last_cycle = cycle
            coords = decoder.decode(address)
            yield TraceEntry(compute_ps=delta * cycle_ps,
                             instructions=instructions,
                             subchannel=coords.get("subchannel", 0),
                             bank=coords.get("bank", 0),
                             row=coords.get("row", 0))
    finally:
        if own:
            handle.close()


def read_litex_rows(source: Union[str, TextIO],
                    bank: int = 0, subchannel: int = 0,
                    compute_ps: int = 0, instructions: int = 1
                    ) -> Iterator[TraceEntry]:
    """Lazily ingest a litex rowhammer-tester payload row list.

    One decimal (or hex) row number per line -- the row lists fed to
    ``generate_payload_from_row_list`` -- replayed as back-to-back
    activations against a single ``(subchannel, bank)``, the hammering
    access pattern the payload executes.
    """
    name = _display_name(source)
    handle, own = _open_text(source, "r")
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                row = int(line.split()[0], 0)
            except ValueError:
                raise ValueError(
                    f"{name}: line {lineno}: non-integer row in "
                    f"{line!r}") from None
            if row < 0:
                raise ValueError(
                    f"{name}: line {lineno}: negative row in {line!r}")
            yield TraceEntry(compute_ps=compute_ps,
                             instructions=instructions,
                             subchannel=subchannel, bank=bank, row=row)
    finally:
        if own:
            handle.close()


def detect_format(path: str) -> str:
    """Guess the trace format of ``path`` from its suffix.

    ``.trace`` means native, ``.ds3``/``.dramsim3`` mean dramsim3,
    ``.rows``/``.litex`` mean litex-rows; anything else defaults to
    native (the round-trippable format).  A trailing ``.gz`` is
    ignored.
    """
    name = path[:-3] if path.endswith(".gz") else path
    if name.endswith((".ds3", ".dramsim3")):
        return "dramsim3"
    if name.endswith((".rows", ".litex")):
        return "litex-rows"
    return "native"


def open_ingest(source: Union[str, TextIO], fmt: str = "auto",
                decoder: Optional[BitFieldDecoder] = None,
                geometry: DramGeometry = DramGeometry(),
                cycle_ps: int = DEFAULT_CYCLE_PS,
                instructions: int = 1, bank: int = 0,
                subchannel: int = 0) -> Iterator[TraceEntry]:
    """Streaming reader for any supported trace format.

    ``fmt="auto"`` detects from the path suffix (handles must name a
    concrete format).  The per-format keyword arguments are ignored by
    formats that don't use them.
    """
    if fmt == "auto":
        if not isinstance(source, str):
            raise ValueError(
                "fmt='auto' needs a path to sniff; pass an explicit "
                "format for file objects")
        fmt = detect_format(source)
    if fmt == "native":
        return read_trace(source)
    if fmt == "dramsim3":
        return read_dramsim3_trace(source, decoder=decoder,
                                   geometry=geometry,
                                   cycle_ps=cycle_ps,
                                   instructions=instructions)
    if fmt == "litex-rows":
        return read_litex_rows(source, bank=bank,
                               subchannel=subchannel,
                               instructions=instructions)
    raise ValueError(
        f"unknown trace format {fmt!r}; expected one of "
        f"{TRACE_FORMATS + ('auto',)}")


def convert_trace(source: Union[str, TextIO],
                  target: Union[str, TextIO], fmt: str = "auto",
                  workload: Optional[str] = None,
                  decoder: Optional[BitFieldDecoder] = None,
                  geometry: DramGeometry = DramGeometry(),
                  cycle_ps: int = DEFAULT_CYCLE_PS,
                  instructions: int = 1, bank: int = 0,
                  subchannel: int = 0) -> int:
    """Convert an external trace into the native format, streaming.

    Entries are piped reader-to-writer one at a time, so arbitrarily
    large traces convert in constant memory.  ``workload`` (the Table
    IV spec name the trace claims to represent) is recorded as
    ``# workload:`` metadata for the calibration check to find.
    Returns the converted entry count.
    """
    entries = open_ingest(source, fmt=fmt, decoder=decoder,
                          geometry=geometry, cycle_ps=cycle_ps,
                          instructions=instructions, bank=bank,
                          subchannel=subchannel)
    metadata: Dict[str, str] = {}
    if workload:
        metadata["workload"] = workload
    if isinstance(source, str):
        metadata["source"] = source
    return write_trace(entries, target, metadata=metadata)


def calibration_report(result, spec, rel_tol: float = 0.5
                       ) -> List[Tuple[str, float, float, bool]]:
    """Measured-vs-spec calibration rows for a replayed trace.

    ``result`` is a :class:`~repro.cpu.system.SimResult` from replaying
    the trace; ``spec`` is the :class:`~repro.workloads.WorkloadSpec`
    the trace claims to represent.  Returns ``(label, measured, paper,
    ok)`` rows for MPKI and ACT-PKI, ``ok`` meaning within ``rel_tol``
    of the Table IV value -- the same tolerance the experiment
    framework's ``Check`` uses.
    """
    kilo = sum(result.instructions) / 1000.0
    kilo = kilo if kilo > 0 else 1.0
    rows = [
        ("MPKI", result.total_requests / kilo, spec.l3_mpki),
        ("ACT-PKI", result.total_activations / kilo, spec.act_pki),
    ]
    return [(label, measured, paper,
             abs(measured - paper) <= rel_tol * abs(paper))
            for label, measured, paper in rows]


def _translate_entries(entries: List[TraceEntry],
                       space: AddressSpace) -> List[TraceEntry]:
    """Entries with coordinates routed through ``space``, once."""
    translate = space.translate
    out = []
    for e in entries:
        subch, bank, row = translate(e.subchannel, e.bank, e.row)
        out.append(TraceEntry(compute_ps=e.compute_ps,
                              instructions=e.instructions,
                              subchannel=subch, bank=bank, row=row))
    return out


class TraceFileWorkload:
    """A recorded trace as a :class:`repro.workloads.WorkloadSource`.

    Wraps a trace file (or pre-loaded entries) so real miss traces plug
    into :func:`repro.cpu.system.MultiCoreSystem` -- and any code
    written against the :class:`~repro.workloads.WorkloadSource` seam
    -- exactly like the synthetic generators do.

    Trace coordinates are *logical*: they are routed through
    ``address_space`` (an :class:`~repro.dram.mapping.AddressSpace` or
    an :class:`~repro.dram.mapping.AddressSpaceSpec`) once at load
    time, so every kernel backend replays the identical physical
    stream.

    ``per_core`` picks each core's share of the trace: ``None``
    replays the whole trace on every core (single-program mode),
    ``"shard"`` deals contiguous slices round the cores (preserving
    each shard's row-burst structure, which is what keeps a converted
    trace's ACT-PKI honest under multi-core replay), and a callable
    maps ``core_id`` to an entry list.  With ``cycle=True`` the trace
    repeats for the full window instead of running dry.
    """

    def __init__(self, source: Union[str, TextIO, List[TraceEntry]],
                 mlp: int = 8, cycle: bool = False,
                 per_core: Union[None, str,
                                 Callable[[int], List[TraceEntry]]]
                 = None,
                 address_space: Union[None, AddressSpace,
                                      AddressSpaceSpec] = None,
                 geometry: DramGeometry = DramGeometry(),
                 workload: Optional[str] = None,
                 shard_cores: Optional[int] = None) -> None:
        if isinstance(source, list):
            self.entries = source
        else:
            self.entries = load_trace(source)
            if workload is None and isinstance(source, str):
                workload = trace_metadata(source).get("workload")
        if isinstance(address_space, AddressSpaceSpec):
            address_space = address_space.build(geometry)
        if address_space is not None and \
                not isinstance(address_space, IdentityAddressSpace):
            self.entries = _translate_entries(self.entries,
                                              address_space)
        self.address_space = address_space
        self.workload = workload
        self.mlp = mlp
        self.cycle = cycle
        if isinstance(per_core, str) and per_core != "shard":
            raise ValueError(
                f"per_core must be None, 'shard', or a callable, "
                f"got {per_core!r}")
        self._per_core = per_core
        self._shard_cores = shard_cores or SystemConfig().num_cores

    def _core_entries(self, core_id: int) -> List[TraceEntry]:
        if callable(self._per_core):
            return self._per_core(core_id)
        if self._per_core == "shard":
            # Contiguous shards (not round-robin) keep consecutive
            # same-row bursts on one core, so row-hit behaviour
            # survives the split.
            return self.shard(self._shard_cores, core_id)
        return self.entries

    def shard(self, num_cores: int, core_id: int) -> List[TraceEntry]:
        """Core ``core_id``'s contiguous shard of the trace."""
        n = len(self.entries)
        lo = n * core_id // num_cores
        hi = n * (core_id + 1) // num_cores
        return self.entries[lo:hi]

    def trace(self, core_id: int) -> Iterator[TraceEntry]:
        """Entry-at-a-time view of one core's share of the trace."""
        entries = self._core_entries(core_id)
        if self.cycle and entries:
            return cyclic(entries)
        return iter(entries)

    def chunk_source(self, core_id: int) -> ChunkSource:
        """The chunked trace wrapped for :class:`repro.cpu.core.Core`."""
        return chunk_entries(self.trace(core_id))

    def trace_chunk_arrays(self, core_id: int, chunk_size: int = 256):
        """One core's trace as a stream of structured chunk arrays."""
        source = chunk_entries(self.trace(core_id), chunk_size)
        while True:
            chunk = source.next_chunk_array()
            if chunk is None:
                return
            yield chunk

    def entries_array(self):
        """The whole (non-cycled) trace as one structured array.

        An :data:`~repro.cpu.trace.ENTRY_DTYPE` view of
        :attr:`entries`, for vector-kernel consumers and offline
        analysis; the entry list remains the source of truth.
        """
        if ENTRY_DTYPE is None:
            raise ImportError(
                "entries_array() needs numpy; install it or use "
                ".entries")
        return chunk_to_array(
            [(e.compute_ps, e.instructions, e.subchannel, e.bank, e.row)
             for e in self.entries])

    def trace_factory(self) -> Callable[[int], ChunkSource]:
        """``core_id -> trace`` callable for ``MultiCoreSystem``."""
        return self.chunk_source
