"""Trace file I/O: bring-your-own-trace support.

Users with real miss traces (from a cache simulator, a pintool, or
DRAMSim-style front ends) can run them through the full system instead
of the synthetic generators.  The format is deliberately trivial --
one whitespace-separated record per line::

    <compute_ps> <instructions> <subchannel> <bank> <row>

with ``#`` comments and blank lines ignored.  Round-trips exactly.
"""

from __future__ import annotations

import io
from typing import Callable, Iterable, Iterator, List, Optional, \
    TextIO, Union

from repro.cpu.trace import ChunkSource, ENTRY_DTYPE, TraceEntry, \
    chunk_entries, chunk_to_array, cyclic

_FIELDS = 5


def write_trace(entries: Iterable[TraceEntry],
                target: Union[str, TextIO]) -> int:
    """Write entries to a path or file object; returns entry count."""
    own = isinstance(target, str)
    handle = open(target, "w") if own else target
    count = 0
    try:
        handle.write("# compute_ps instructions subchannel bank row\n")
        for entry in entries:
            handle.write(f"{entry.compute_ps} {entry.instructions} "
                         f"{entry.subchannel} {entry.bank} "
                         f"{entry.row}\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_trace(source: Union[str, TextIO]) -> Iterator[TraceEntry]:
    """Lazily parse a trace from a path or file object."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != _FIELDS:
                raise ValueError(
                    f"line {lineno}: expected {_FIELDS} fields, got "
                    f"{len(parts)}: {line!r}")
            try:
                values = [int(p) for p in parts]
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-integer field in {line!r}") \
                    from None
            compute, instructions, subch, bank, row = values
            if compute < 0 or instructions < 0 or subch < 0 \
                    or bank < 0 or row < 0:
                raise ValueError(
                    f"line {lineno}: negative field in {line!r}")
            yield TraceEntry(compute_ps=compute,
                             instructions=instructions,
                             subchannel=subch, bank=bank, row=row)
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, TextIO]) -> List[TraceEntry]:
    """Materialise a whole trace file."""
    return list(read_trace(source))


def trace_from_string(text: str) -> List[TraceEntry]:
    """Parse a trace from an in-memory string (tests, examples)."""
    return load_trace(io.StringIO(text))


class TraceFileWorkload:
    """A recorded trace as a :class:`repro.workloads.WorkloadSource`.

    Wraps a trace file (or pre-loaded entries) so real miss traces plug
    into :func:`repro.cpu.system.MultiCoreSystem` -- and any code
    written against the :class:`~repro.workloads.WorkloadSource` seam
    -- exactly like the synthetic generators do.

    ``per_core`` maps each core to the entries whose ``subchannel``
    matters to it; by default every core replays the whole trace
    (single-program mode).  With ``cycle=True`` the trace repeats for
    the full window instead of running dry.
    """

    def __init__(self, source: Union[str, TextIO, List[TraceEntry]],
                 mlp: int = 8, cycle: bool = False,
                 per_core: Optional[Callable[[int], List[TraceEntry]]]
                 = None) -> None:
        if isinstance(source, list):
            self.entries = source
        else:
            self.entries = load_trace(source)
        self.mlp = mlp
        self.cycle = cycle
        self._per_core = per_core

    def _core_entries(self, core_id: int) -> List[TraceEntry]:
        if self._per_core is not None:
            return self._per_core(core_id)
        return self.entries

    def trace(self, core_id: int) -> Iterator[TraceEntry]:
        """Entry-at-a-time view of one core's share of the trace."""
        entries = self._core_entries(core_id)
        if self.cycle and entries:
            return cyclic(entries)
        return iter(entries)

    def chunk_source(self, core_id: int) -> ChunkSource:
        """The chunked trace wrapped for :class:`repro.cpu.core.Core`."""
        return chunk_entries(self.trace(core_id))

    def entries_array(self):
        """The whole (non-cycled) trace as one structured array.

        An :data:`~repro.cpu.trace.ENTRY_DTYPE` view of
        :attr:`entries`, for vector-kernel consumers and offline
        analysis; the entry list remains the source of truth.
        """
        if ENTRY_DTYPE is None:
            raise ImportError(
                "entries_array() needs numpy; install it or use "
                ".entries")
        return chunk_to_array(
            [(e.compute_ps, e.instructions, e.subchannel, e.bank, e.row)
             for e in self.entries])

    def trace_factory(self) -> Callable[[int], ChunkSource]:
        """``core_id -> trace`` callable for ``MultiCoreSystem``."""
        return self.chunk_source
