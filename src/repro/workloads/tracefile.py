"""Trace file I/O: bring-your-own-trace support.

Users with real miss traces (from a cache simulator, a pintool, or
DRAMSim-style front ends) can run them through the full system instead
of the synthetic generators.  The format is deliberately trivial --
one whitespace-separated record per line::

    <compute_ps> <instructions> <subchannel> <bank> <row>

with ``#`` comments and blank lines ignored.  Round-trips exactly.
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, TextIO, Union

from repro.cpu.trace import TraceEntry

_FIELDS = 5


def write_trace(entries: Iterable[TraceEntry],
                target: Union[str, TextIO]) -> int:
    """Write entries to a path or file object; returns entry count."""
    own = isinstance(target, str)
    handle = open(target, "w") if own else target
    count = 0
    try:
        handle.write("# compute_ps instructions subchannel bank row\n")
        for entry in entries:
            handle.write(f"{entry.compute_ps} {entry.instructions} "
                         f"{entry.subchannel} {entry.bank} "
                         f"{entry.row}\n")
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_trace(source: Union[str, TextIO]) -> Iterator[TraceEntry]:
    """Lazily parse a trace from a path or file object."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != _FIELDS:
                raise ValueError(
                    f"line {lineno}: expected {_FIELDS} fields, got "
                    f"{len(parts)}: {line!r}")
            try:
                values = [int(p) for p in parts]
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-integer field in {line!r}") \
                    from None
            compute, instructions, subch, bank, row = values
            if compute < 0 or instructions < 0 or subch < 0 \
                    or bank < 0 or row < 0:
                raise ValueError(
                    f"line {lineno}: negative field in {line!r}")
            yield TraceEntry(compute_ps=compute,
                             instructions=instructions,
                             subchannel=subch, bank=bank, row=row)
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, TextIO]) -> List[TraceEntry]:
    """Materialise a whole trace file."""
    return list(read_trace(source))


def trace_from_string(text: str) -> List[TraceEntry]:
    """Parse a trace from an in-memory string (tests, examples)."""
    return load_trace(io.StringIO(text))
