"""Multi-programmed (mixed) workloads: a different trace per core.

The paper's six ``mix_*`` workloads are multi-programmed combinations
of SPEC/GAP applications (Section III-B).  Table IV publishes only the
aggregate characteristics, which the synthetic rate-mode generator
reproduces; this module adds true heterogeneous mixes -- core 0 runs
one application, core 1 another -- for studies where per-application
slowdown under a shared channel matters (e.g. the DoS analysis of
Section IX, where one attacker core degrades seven victims).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Union

from repro.cpu.trace import ChunkSource, TraceEntry
from repro.params import SimScale, SystemConfig
from repro.workloads.specs import WorkloadSpec, workload_by_name
from repro.workloads.synthetic import SyntheticWorkload

PAPER_MIXES = {
    # Plausible constituents chosen to land near each mix's published
    # aggregate intensity (the paper does not name the members).
    "mix_1": ["cc", "mcf", "omnetpp", "parest",
              "bwaves", "xz", "roms", "lbm"],
    "mix_2": ["bc", "fotonik3d", "mcf", "cam4",
              "parest", "xz", "bfs", "roms"],
    "mix_3": ["pr", "lbm", "omnetpp", "cactuBSSN",
              "xz", "mcf", "roms", "cam4"],
    "mix_4": ["tc", "fotonik3d", "xz", "xalancbmk",
              "omnetpp", "roms", "cam4", "mcf"],
    "mix_5": ["cc", "lbm", "fotonik3d", "mcf",
              "omnetpp", "xz", "parest", "bwaves"],
    "mix_6": ["sssp", "lbm", "mcf", "parest",
              "omnetpp", "xz", "cactuBSSN", "roms"],
}


class MixedWorkload:
    """Per-core heterogeneous traces over a shared memory system."""

    def __init__(self, members: Sequence[Union[str, WorkloadSpec]],
                 config: SystemConfig = SystemConfig(),
                 scale: SimScale = SimScale(),
                 seed: int = 0) -> None:
        if not members:
            raise ValueError("a mix needs at least one member")
        specs = [workload_by_name(m) if isinstance(m, str) else m
                 for m in members]
        # Round-robin the members over the cores.
        self.assignments: List[WorkloadSpec] = [
            specs[core % len(specs)] for core in range(config.num_cores)]
        self.config = config
        self._generators = [
            SyntheticWorkload(spec, config, scale,
                              seed=seed * 1009 + core)
            for core, spec in enumerate(self.assignments)]

    @classmethod
    def paper_mix(cls, name: str,
                  config: SystemConfig = SystemConfig(),
                  scale: SimScale = SimScale(),
                  seed: int = 0) -> "MixedWorkload":
        """One of the six Table IV mixes by name."""
        try:
            members = PAPER_MIXES[name]
        except KeyError:
            known = ", ".join(sorted(PAPER_MIXES))
            raise KeyError(f"unknown mix {name!r}; known: {known}") \
                from None
        return cls(members, config, scale, seed)

    def trace(self, core_id: int) -> Iterator[TraceEntry]:
        """Infinite miss trace for ``core_id``'s assigned member."""
        return self._generators[core_id].trace(core_id)

    def chunk_source(self, core_id: int) -> ChunkSource:
        """Chunked trace of ``core_id``'s member (hot-path form)."""
        return self._generators[core_id].chunk_source(core_id)

    def trace_chunk_arrays(self, core_id: int, chunk_size: int = 256):
        """Structured-array chunk stream of ``core_id``'s member."""
        return self._generators[core_id].trace_chunk_arrays(
            core_id, chunk_size)

    def trace_factory(self):
        """``core_id -> trace`` callable for MultiCoreSystem."""
        return self.chunk_source

    @property
    def mlp(self) -> int:
        """Conservative shared MLP: the maximum any member needs."""
        return max(g.mlp for g in self._generators)

    def mlp_for(self, core_id: int) -> int:
        """The MLP the given core's member workload needs."""
        return self._generators[core_id].mlp
