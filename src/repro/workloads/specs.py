"""Workload descriptors: the paper's Table IV, verbatim.

Each :class:`WorkloadSpec` records the published characteristics of one
evaluated workload.  The synthetic generator
(:mod:`repro.workloads.synthetic`) derives its parameters from these
numbers:

- ``miss_burst``: consecutive same-row misses per row visit,
  ``round(MPKI / ACT-PKI)`` -- the row-buffer locality implied by the
  two rates;
- the pacing (target inter-miss time per core) follows from the ACT
  budget per refresh window, ``mean * subarrays * banks``;
- the per-subarray spread (sigma) is reproduced with a hot-row overlay
  (see ``hot_traffic_fraction``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table IV."""

    name: str
    suite: str
    l3_mpki: float
    act_pki: float
    bus_util_pct: float
    acts_per_subarray_mean: float
    acts_per_subarray_std: float

    @property
    def miss_burst(self) -> int:
        """Consecutive same-row misses per row visit (>= 1)."""
        return max(1, round(self.l3_mpki / self.act_pki))

    @property
    def instructions_per_miss(self) -> int:
        """Average instruction gap between LLC misses (from MPKI)."""
        return max(1, round(1000.0 / self.l3_mpki))

    @property
    def hot_traffic_fraction(self) -> float:
        """Fraction of row visits aimed at the hot-row set.

        Chosen so the per-subarray std under strided mapping matches the
        published sigma: a hot set of ``H`` rows scattered uniformly over
        the working set makes the relative per-subarray std approximately
        ``f * sqrt(num_subarrays / H)``.
        """
        ratio = self.acts_per_subarray_std / self.acts_per_subarray_mean
        return min(0.85, max(0.1, 1.2 * ratio))

    @property
    def acts_per_bank_per_window(self) -> float:
        """Total ACT budget per bank per tREFW implied by the mean."""
        return self.acts_per_subarray_mean * 128.0


def _gap(name: str, mpki: float, act_pki: float, util: float,
         mean: float, std: float) -> WorkloadSpec:
    return WorkloadSpec(name, "gap", mpki, act_pki, util, mean, std)


def _spec(name: str, mpki: float, act_pki: float, util: float,
          mean: float, std: float) -> WorkloadSpec:
    return WorkloadSpec(name, "spec2017", mpki, act_pki, util, mean, std)


def _mix(name: str, mpki: float, act_pki: float, util: float,
         mean: float, std: float) -> WorkloadSpec:
    return WorkloadSpec(name, "mix", mpki, act_pki, util, mean, std)


GAP_WORKLOADS: List[WorkloadSpec] = [
    _gap("bc", 58.8, 29.7, 82.0, 572, 191),
    _gap("bfs", 30.9, 16.1, 80.6, 642, 278),
    _gap("cc", 57.9, 51.5, 77.7, 1037, 542),
    _gap("pr", 57.7, 29.5, 83.1, 620, 204),
    _gap("sssp", 27.2, 13.0, 79.9, 518, 149),
    _gap("tc", 87.8, 40.7, 85.5, 558, 118),
]

SPEC_WORKLOADS: List[WorkloadSpec] = [
    _spec("blender", 1.1, 0.7, 16.0, 84, 46),
    _spec("bwaves", 41.6, 15.5, 77.8, 680, 224),
    _spec("cactuBSSN", 3.5, 3.3, 44.6, 395, 242),
    _spec("cam4", 3.7, 2.9, 42.1, 267, 204),
    _spec("fotonik3d", 26.6, 34.1, 62.3, 1469, 388),
    _spec("lbm", 27.7, 39.5, 64.4, 1413, 343),
    _spec("mcf", 19.0, 12.6, 76.9, 1056, 465),
    _spec("omnetpp", 9.2, 11.4, 54.3, 1015, 445),
    _spec("parest", 26.5, 12.8, 84.6, 965, 440),
    _spec("roms", 7.8, 5.1, 58.5, 551, 279),
    _spec("xalancbmk", 1.6, 2.3, 26.1, 281, 169),
    _spec("xz", 5.2, 8.3, 48.1, 914, 523),
]

MIX_WORKLOADS: List[WorkloadSpec] = [
    _mix("mix_1", 18.6, 17.0, 72.7, 1085, 397),
    _mix("mix_2", 22.6, 18.6, 68.4, 956, 304),
    _mix("mix_3", 15.1, 18.6, 62.3, 1006, 375),
    _mix("mix_4", 10.0, 19.1, 57.7, 1074, 373),
    _mix("mix_5", 12.3, 23.4, 52.4, 1182, 370),
    _mix("mix_6", 13.6, 18.7, 62.9, 1008, 340),
]

ALL_WORKLOADS: List[WorkloadSpec] = (
    GAP_WORKLOADS + SPEC_WORKLOADS + MIX_WORKLOADS)

_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in ALL_WORKLOADS}


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a workload descriptor by its Table IV name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") \
            from None


def average_characteristics() -> Tuple[float, float, float, float, float]:
    """Suite averages (MPKI, ACT-PKI, util, mean, std) -- Table IV's
    last row reports 24.4 / 18.5 / 63.4 / 806 / 309."""
    n = len(ALL_WORKLOADS)
    return (
        sum(w.l3_mpki for w in ALL_WORKLOADS) / n,
        sum(w.act_pki for w in ALL_WORKLOADS) / n,
        sum(w.bus_util_pct for w in ALL_WORKLOADS) / n,
        sum(w.acts_per_subarray_mean for w in ALL_WORKLOADS) / n,
        sum(w.acts_per_subarray_std for w in ALL_WORKLOADS) / n,
    )
