"""Synthetic workload traces calibrated to Table IV.

The generator reproduces the four statistics the paper's results depend
on (see DESIGN.md):

- **rate**: row visits are paced so the total activations per bank per
  (scaled) refresh window match ``acts_per_subarray_mean * 128``;
- **row-buffer locality**: each row visit emits ``miss_burst``
  consecutive same-row misses, reproducing the MPKI/ACT-PKI ratio;
- **spatial locality**: each bank's working set is a *contiguous* block
  of logical rows (the clock-style paging of Section III-A allocates
  consecutive physical pages), which is what makes Sequential vs
  Strided row-to-subarray mapping behave so differently (Table VI);
- **spread (sigma)**: a fraction of visits target a fixed set of hot
  rows scattered through the working set, reproducing the published
  per-subarray standard deviation under strided mapping.

Pacing model: with a target inter-miss time ``tau`` per core, the core
is given ``compute = max(eps, tau - L/mlp)`` of work per miss and
``mlp = round(L / tau)`` outstanding misses, where ``L`` is the
estimated loaded DRAM latency; bandwidth-bound workloads are then
limited by memory (through the MLP cap) and lighter ones by compute,
just as in the real system.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Tuple

from repro.cpu.trace import ChunkSource, EntryTuple, TraceEntry, \
    chunk_to_array
from repro.params import SimScale, SystemConfig, ns
from repro.workloads.specs import WorkloadSpec

_LOADED_LATENCY_PS = ns(80)
"""Estimated loaded DRAM round trip used for pacing calibration."""

_MIN_COMPUTE_PS = ns(0.25)


class SyntheticWorkload:
    """Trace factory for one Table IV workload."""

    def __init__(self, spec: WorkloadSpec,
                 config: SystemConfig = SystemConfig(),
                 scale: SimScale = SimScale(),
                 ws_rows: int = 4096,
                 hot_rows: int = 184,
                 bank_stickiness: float = 0.5,
                 seed: int = 0) -> None:
        self.spec = spec
        self.config = config
        self.scale = scale
        self.ws_rows = ws_rows
        self.hot_rows = hot_rows
        self.bank_stickiness = bank_stickiness
        self.seed = seed
        self._base_cache: Dict[Tuple[int, int], int] = {}
        self._hot_cache: Dict[Tuple[int, int], List[int]] = {}
        geometry = config.geometry
        window = scale.scaled_trefw(config.timings)
        acts_per_bank = scale.scale_count(spec.acts_per_bank_per_window)
        total_misses = (acts_per_bank * geometry.total_banks
                        * spec.miss_burst)
        misses_per_core = max(1.0, total_misses / config.num_cores)
        self.target_inter_miss_ps = max(1, int(window / misses_per_core))
        # Latency-hiding MLP: enough outstanding misses to sustain the
        # target rate against the loaded DRAM latency, bounded by what
        # the ROB can hold (one miss per `instructions_per_miss`
        # entries, MSHR-capped at 16).  Memory-intensive workloads get a
        # small MLP and stay latency-sensitive, which is what exposes
        # PRAC's timing inflation just as on real cores.
        rob_mlp = min(16, max(
            1, config.rob_entries // spec.instructions_per_miss))
        rate_mlp = max(1, round(
            _LOADED_LATENCY_PS / self.target_inter_miss_ps))
        self.mlp = min(rob_mlp, rate_mlp) if rate_mlp > 1 else 1
        self.mlp = max(1, self.mlp)
        self.compute_per_miss_ps = max(
            _MIN_COMPUTE_PS,
            self.target_inter_miss_ps - _LOADED_LATENCY_PS // self.mlp)

    # ------------------------------------------------------------------
    # Per-bank row placement
    # ------------------------------------------------------------------
    def _derived_seed(self, salt: int, subchannel: int, bank: int) -> int:
        """Stable per-structure RNG seed (independent of PYTHONHASHSEED)."""
        return (self.seed * 1_000_003 + salt * 8_191
                + subchannel * 131 + bank + 1)

    # Placement is a pure function of (seed, subchannel, bank) -- each
    # call seeds a fresh RNG -- so results are memoized per instance:
    # every core's trace asks for the same few hundred (subch, bank)
    # placements and rng.sample() is expensive.
    def _bank_base(self, subchannel: int, bank: int) -> int:
        key = (subchannel, bank)
        base = self._base_cache.get(key)
        if base is None:
            rows = self.config.geometry.rows_per_bank
            rng = random.Random(self._derived_seed(1, subchannel, bank))
            base = rng.randrange(0, rows - self.ws_rows)
            self._base_cache[key] = base
        return base

    def _bank_hot_offsets(self, subchannel: int, bank: int) -> List[int]:
        key = (subchannel, bank)
        hot = self._hot_cache.get(key)
        if hot is None:
            rng = random.Random(self._derived_seed(2, subchannel, bank))
            count = min(self.hot_rows, self.ws_rows)
            hot = rng.sample(range(self.ws_rows), count)
            self._hot_cache[key] = hot
        return hot

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def trace_chunks(self, core_id: int,
                     chunk_size: int = 256) -> Iterator[List[EntryTuple]]:
        """Infinite miss trace for one core, in chunks of entry tuples.

        The RNG call sequence is identical to the historical
        entry-at-a-time generator -- chunking only groups the output --
        so traces are reproducible across both consumption styles.
        """
        spec = self.spec
        geometry = self.config.geometry
        rng = random.Random(self._derived_seed(3, core_id, 0))
        rnd = rng.random
        randrange = rng.randrange
        uniform = rng.uniform
        hot_fraction = spec.hot_traffic_fraction
        stickiness = self.bank_stickiness
        burst = spec.miss_burst
        instructions = spec.instructions_per_miss
        bases = {}
        hots = {}
        num_subch = geometry.subchannels
        num_banks = geometry.banks_per_subchannel
        compute = self.compute_per_miss_ps
        ws_rows = self.ws_rows
        compute_burst = compute * burst
        prev_key = None
        while True:
            chunk: List[EntryTuple] = []
            append = chunk.append
            while len(chunk) < chunk_size:
                # Bank choice: with probability `bank_stickiness` the
                # next visit returns to the previous bank with a
                # *different* row, modelling page-conflict locality --
                # consecutive requests contending for one bank's row
                # buffer.  These visits pay tRP + tRCD (and PRAC's
                # inflated tRP/tRC), which is where PRAC's slowdown
                # comes from on real machines.
                if prev_key is not None and rnd() < stickiness:
                    subchannel, bank = prev_key
                else:
                    subchannel = randrange(num_subch)
                    bank = randrange(num_banks)
                key = (subchannel, bank)
                prev_key = key
                hot = hots.get(key)
                if hot is None:
                    bases[key] = self._bank_base(subchannel, bank)
                    hots[key] = hot = self._bank_hot_offsets(
                        subchannel, bank)
                if rnd() < hot_fraction:
                    offset = hot[randrange(len(hot))]
                else:
                    offset = randrange(ws_rows)
                row = bases[key] + offset
                # The visit's whole compute budget precedes its first
                # line; the budget is per-miss, so scale by the burst.
                jitter = uniform(0.7, 1.3)
                gap = int(compute_burst * jitter)
                if gap < _MIN_COMPUTE_PS:
                    gap = _MIN_COMPUTE_PS
                append((gap, instructions, subchannel, bank, row))
                # Later lines of the same row visit are back-to-back:
                # they arrive within tRAS and hit the open row, which
                # is what makes ACT-PKI lower than MPKI.
                for _ in range(burst - 1):
                    append((_MIN_COMPUTE_PS, instructions,
                            subchannel, bank, row))
            yield chunk

    def trace(self, core_id: int) -> Iterator[TraceEntry]:
        """Infinite miss trace for one core (rate-mode copy)."""
        for chunk in self.trace_chunks(core_id):
            for tup in chunk:
                yield TraceEntry(*tup)

    def trace_chunk_arrays(self, core_id: int, chunk_size: int = 256):
        """The same chunk stream as :data:`~repro.cpu.trace.ENTRY_DTYPE`
        arrays (vector-kernel view; generation is unchanged)."""
        for chunk in self.trace_chunks(core_id, chunk_size):
            yield chunk_to_array(chunk)

    def chunk_source(self, core_id: int) -> ChunkSource:
        """The chunked trace wrapped for :class:`repro.cpu.core.Core`."""
        return ChunkSource(self.trace_chunks(core_id))

    def trace_factory(self):
        """``core_id -> trace`` callable for :class:`MultiCoreSystem`."""
        return self.chunk_source
