"""Declarative attack-pattern DSL: one vocabulary, two compilations.

Every attack the repository knows -- the paper's fixed set in
:mod:`repro.workloads.attacks`, the litex-rowhammer-tester style
row-list programs, and the Blacksmith/Phoenix refresh-synchronized
sweeps -- is expressed as a frozen :class:`AttackPattern` dataclass.
Frozen specs are *job material*: they hash by content through
:func:`repro.sim.session.describe`, so a pattern embedded in a
:class:`~repro.security.fuzz.FuzzJob` is cacheable and reproducible by
construction.

A pattern compiles two ways from the same definition:

- :meth:`AttackPattern.rows` -- the bare activation stream (one logical
  ACT per element) that :class:`repro.security.attacks.
  SingleBankHarness` consumes in security tests;
- :meth:`AttackPattern.trace` / :meth:`AttackPattern.workload` -- the
  equivalent :class:`~repro.cpu.trace.TraceEntry` stream and
  :class:`~repro.workloads.attacks.AttackWorkload` for full-system runs.
  All three kernel backends consume that single stream through the
  ``WorkloadSource`` seam, so event/array/vector results stay
  bit-identical by the backend contract.

Compilation is parameterised by a :class:`CompileContext` -- the
row-to-subarray mapping, the bank/subchannel coordinates, and the
ACTs-per-tREFI budget refresh-synchronized patterns align against.
The context carries live objects and is *not* part of the job
identity; jobs record the mapping by name and rebuild the context at
execute time.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, fields
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

from repro.cpu.trace import ChunkSource, TraceEntry, chunk_entries
from repro.dram.mapping import RowToSubarrayMapping, SequentialR2SA
from repro.params import SystemConfig, ns


@dataclass(frozen=True)
class CompileContext:
    """Everything a pattern needs to compile that is *not* its shape.

    ``acts_per_trefi`` is the attacker's ACT budget between REF
    commands -- refresh-synchronized patterns phase their bursts
    against it, so it must match the harness/system the compiled
    stream is fed into.
    """

    mapping: RowToSubarrayMapping
    acts_per_trefi: int
    bank: int = 0
    subchannel: int = 0
    compute_ps: int = ns(0.25)

    @classmethod
    def make(cls, mapping: Optional[RowToSubarrayMapping] = None,
             config: Optional[SystemConfig] = None,
             acts_per_trefi: Optional[int] = None,
             bank: int = 0, subchannel: int = 0) -> "CompileContext":
        """Context over ``mapping`` with config-derived defaults."""
        config = config if config is not None else SystemConfig()
        if mapping is None:
            mapping = SequentialR2SA(config.geometry)
        if acts_per_trefi is None:
            from repro.security.analysis import acts_per_ref_interval
            acts_per_trefi = acts_per_ref_interval(config.timings)
        return cls(mapping=mapping, acts_per_trefi=acts_per_trefi,
                   bank=bank, subchannel=subchannel)


@dataclass(frozen=True)
class AttackPattern:
    """Base of every pattern spec; subclasses implement :meth:`rows`."""

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        """The bare activation stream (security-test compilation)."""
        raise NotImplementedError

    def label(self) -> str:
        """Deterministic short name: kebab class name + shape fields."""
        name = "".join("-" + c.lower() if c.isupper() else c
                       for c in type(self).__name__).lstrip("-")
        parts = ", ".join(f"{f.name}={getattr(self, f.name)!r}"
                          for f in fields(self) if f.compare)
        return f"{name}({parts})"

    def trace(self, ctx: CompileContext) -> Iterator[TraceEntry]:
        """The same stream as core trace entries (timed compilation)."""
        for row in self.rows(ctx):
            yield TraceEntry(compute_ps=ctx.compute_ps, instructions=1,
                             subchannel=ctx.subchannel, bank=ctx.bank,
                             row=row)

    def chunk_source(self, ctx: CompileContext,
                     chunk_size: int = 256) -> ChunkSource:
        """The timed compilation, chunked for the core fast path (and,
        via ``next_chunk_array``, for the vector kernel)."""
        return chunk_entries(self.trace(ctx), chunk_size)

    def workload(self, ctx: CompileContext,
                 cores: Iterable[int] = (0,), mlp: int = 1):
        """An :class:`~repro.workloads.attacks.AttackWorkload` driving
        this pattern on ``cores`` (full-system compilation)."""
        from repro.workloads.attacks import AttackWorkload

        def factory() -> Iterator[TraceEntry]:
            return self.trace(ctx)

        return AttackWorkload({core: factory for core in cores},
                              mlp=mlp)


# ----------------------------------------------------------------------
# Row-list and sandwich patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RowCycle(AttackPattern):
    """Max-rate circular activations over an explicit row list (the
    litex-rowhammer-tester row-list idiom; one row = focused hammer)."""

    row_list: Tuple[int, ...]
    acts: int

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        if not self.row_list:
            raise ValueError("need at least one row")
        cycle = itertools.cycle(self.row_list)
        for _ in range(self.acts):
            yield next(cycle)


@dataclass(frozen=True)
class DoubleSided(AttackPattern):
    """The classic sandwich: alternate the victim's physical neighbours.

    A victim at a subarray edge has only one physical neighbour; the
    pattern then degrades to single-sided hammering of that neighbour
    (a fuzzer picks victims uniformly, so edges must be survivable).
    ``allow_single_sided=False`` restores a hard ``ValueError``.
    """

    victim_row: int
    acts: int
    allow_single_sided: bool = True

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        neighbors = ctx.mapping.physical_neighbors(self.victim_row,
                                                   blast_radius=1)
        if not neighbors:
            raise ValueError("victim row has no physical neighbours")
        if len(neighbors) < 2 and not self.allow_single_sided:
            raise ValueError("victim row has fewer than two neighbours")
        pair = neighbors[:2]
        for i in range(self.acts):
            yield pair[i % len(pair)]


@dataclass(frozen=True)
class NSided(AttackPattern):
    """Round-robin over the ``sides`` nearest physical neighbours of a
    victim (N-sided hammering; 2 reduces to double-sided order)."""

    victim_row: int
    sides: int
    acts: int

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        if self.sides < 1:
            raise ValueError("need at least one side")
        radius = (self.sides + 1) // 2
        aggressors = ctx.mapping.physical_neighbors(
            self.victim_row, blast_radius=radius)[:self.sides]
        if not aggressors:
            raise ValueError("victim row has no physical neighbours")
        cycle = itertools.cycle(aggressors)
        for _ in range(self.acts):
            yield next(cycle)


@dataclass(frozen=True)
class HalfDouble(AttackPattern):
    """Half-Double: heavy far (distance-2) hammering plus occasional
    near (distance-1) accesses that transport the disturbance inward.
    ``far_acts_per_near`` is the far:near activation ratio."""

    victim_row: int
    acts: int
    far_acts_per_near: int = 8

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        if self.far_acts_per_near < 1:
            raise ValueError("far_acts_per_near must be >= 1")
        near = ctx.mapping.physical_neighbors(self.victim_row,
                                              blast_radius=1)
        both = ctx.mapping.physical_neighbors(self.victim_row,
                                              blast_radius=2)
        far = [row for row in both if row not in near]
        if not far:
            far = near  # victim hugs the edge: all pressure is near
        if not near:
            raise ValueError("victim row has no physical neighbours")
        far_cycle = itertools.cycle(far)
        near_cycle = itertools.cycle(near)
        emitted = 0
        while emitted < self.acts:
            for _ in range(min(self.far_acts_per_near,
                               self.acts - emitted)):
                yield next(far_cycle)
                emitted += 1
            if emitted < self.acts:
                yield next(near_cycle)
                emitted += 1


# ----------------------------------------------------------------------
# Tracker-starving and evasion patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Feint(AttackPattern):
    """Round-robin over ``tracker_entries + decoys`` rows so every
    count climbs in lock-step and a mitigate-max tracker always picks
    late (Table II's feinting bound; breaks TRR outright).

    ``decoys`` is required and must be >= 1: with zero decoys the
    rotation collapses to exactly the tracker's capacity, nothing is
    ever evicted, and the tracker mitigates on schedule -- that
    degenerate shape is a *benign* workload, not a feint.
    """

    tracker_entries: int
    acts: int
    decoys: int
    base_row: int = 0

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        if self.decoys < 1:
            raise ValueError(
                "feinting needs decoys >= 1: with decoys=0 the rotation "
                "fits the tracker and no longer starves it")
        count = self.tracker_entries + self.decoys
        cycle = itertools.cycle(
            self.base_row + i for i in range(count))
        for _ in range(self.acts):
            yield next(cycle)


@dataclass(frozen=True)
class DecoyEvasion(AttackPattern):
    """Blacksmith-style TRR evasion: keep the target's table count low
    by interleaving bursts of one-hit decoys that churn the low-count
    entries.  ``seed`` is required -- the decoy sequence is part of the
    pattern's identity (and hence of a fuzz cell's cache token).
    """

    table_entries: int
    target_row: int
    acts: int
    seed: int
    burst: int = 0
    """Decoys between target activations; 0 means ``entries + 4``."""
    decoy_span: int = 0
    """Decoy row range above the target; 0 means ``10 * entries``."""

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        rng = random.Random(self.seed)
        burst = self.burst if self.burst else self.table_entries + 4
        span = self.decoy_span if self.decoy_span \
            else 10 * self.table_entries
        decoy_base = self.target_row + 1000
        emitted = 0
        while emitted < self.acts:
            yield self.target_row
            emitted += 1
            for _ in range(min(burst, self.acts - emitted)):
                yield decoy_base + rng.randrange(span)
                emitted += 1


@dataclass(frozen=True)
class RefreshSyncBurst(AttackPattern):
    """Phoenix-style refresh-synchronized hammering: per tREFI, land
    ``reads_per_trefi`` aggressor activations, then pad the rest of the
    interval with one-hit sync decoys so the next burst realigns with
    the following REF (the ``--reads-per-trefi``/``--self-sync-cycles``
    knobs of the Phoenix PoC).
    """

    aggressors: Tuple[int, ...]
    reads_per_trefi: int
    acts: int
    seed: int
    sync_acts: int = 0
    """Sync-filler ACTs per interval; 0 pads to the full tREFI budget."""

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        if not self.aggressors:
            raise ValueError("need at least one aggressor row")
        if self.reads_per_trefi < 1:
            raise ValueError("reads_per_trefi must be >= 1")
        rng = random.Random(self.seed)
        filler = self.sync_acts if self.sync_acts \
            else max(0, ctx.acts_per_trefi - self.reads_per_trefi)
        decoy_base = max(self.aggressors) + 1000
        cycle = itertools.cycle(self.aggressors)
        emitted = 0
        while emitted < self.acts:
            for _ in range(min(self.reads_per_trefi,
                               self.acts - emitted)):
                yield next(cycle)
                emitted += 1
            for _ in range(min(filler, self.acts - emitted)):
                yield decoy_base + rng.randrange(4096)
                emitted += 1


@dataclass(frozen=True)
class Sequence(AttackPattern):
    """Concatenate patterns into one stream (phased attacks: prime
    with one shape, exploit with another)."""

    parts: Tuple[AttackPattern, ...]

    def rows(self, ctx: CompileContext) -> Iterator[int]:
        for part in self.parts:
            for row in part.rows(ctx):
                yield row


# ----------------------------------------------------------------------
# The paper's fixed attack set, as DSL instances
# ----------------------------------------------------------------------
def paper_attack_set(acts: int, tracker_entries: int = 28,
                     victim_row: int = 1000
                     ) -> Dict[str, AttackPattern]:
    """The fixed attack vocabulary the security exhibits always ran,
    now as pattern specs (the fuzzer's reference set to beat)."""
    return {
        "double-sided": DoubleSided(victim_row=victim_row, acts=acts),
        "focused": RowCycle(row_list=(victim_row,), acts=acts),
        "feinting": Feint(tracker_entries=tracker_entries, acts=acts,
                          decoys=max(1, tracker_entries // 8)),
        "trr-evasion": DecoyEvasion(table_entries=tracker_entries,
                                    target_row=victim_row, acts=acts,
                                    seed=7),
    }


PatternFactory = Callable[[int], AttackPattern]

__all__ = [
    "AttackPattern",
    "CompileContext",
    "DecoyEvasion",
    "DoubleSided",
    "Feint",
    "HalfDouble",
    "NSided",
    "PatternFactory",
    "RefreshSyncBurst",
    "RowCycle",
    "Sequence",
    "paper_attack_set",
]
