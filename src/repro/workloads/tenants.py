"""Multi-tenant (inter-VM) workload composition.

Models co-located tenants sharing one DRAM device: an attacker VM
running the Figure 12 performance-attack kernel next to victim VMs
running Table IV workloads, each tenant's logical trace routed through
its own :class:`~repro.dram.mapping.AddressSpace` before touching the
shared ``(subchannel, bank, row)`` geometry.  Tenant identity is
threaded through :class:`~repro.cpu.core.Core` and
:class:`~repro.cpu.system.MultiCoreSystem` into
:class:`~repro.cpu.system.SimResult`, so per-tenant IPC, victim
slowdown, and per-tenant escape exposure fall out of a single run.

The composition itself is declarative: a :class:`TenantScenario` is a
frozen tuple of :class:`Tenant` descriptors (describable, so session
jobs can carry it), and :class:`TenantWorkload` builds the concrete
per-core sources at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.cpu.trace import ChunkSource, TraceEntry, chunk_entries
from repro.dram.mapping import AddressSpace, AddressSpaceSpec, \
    IdentityAddressSpace
from repro.params import SimScale, SystemConfig
from repro.workloads.attacks import performance_attack_trace
from repro.workloads.specs import workload_by_name
from repro.workloads.synthetic import SyntheticWorkload


@dataclass(frozen=True)
class Tenant:
    """One co-located tenant: a set of cores plus what they run.

    Exactly one of two modes: ``workload`` names a Table IV spec the
    tenant's cores run (a victim VM), or ``attack_rows > 0`` makes the
    tenant an attacker whose cores each hammer a circular pattern of
    that many rows (the Figure 12 kernel) against
    ``(attack_subchannel, attack_bank)``.  Neither set means the
    tenant idles -- the no-attack control point of a pressure sweep.
    All of the tenant's trace coordinates are logical and are routed
    through ``address_space``.
    """

    name: str
    cores: Tuple[int, ...]
    workload: Optional[str] = None
    attack_rows: int = 0
    attack_bank: int = 0
    attack_subchannel: int = 0
    mlp: Optional[int] = None
    address_space: AddressSpaceSpec = field(
        default_factory=AddressSpaceSpec)

    @property
    def is_attacker(self) -> bool:
        return self.attack_rows > 0

    def validate(self) -> None:
        """Reject contradictory tenant descriptions, loudly."""
        if not self.cores:
            raise ValueError(f"tenant {self.name!r} has no cores")
        if self.workload and self.attack_rows:
            raise ValueError(
                f"tenant {self.name!r} sets both workload and "
                f"attack_rows; pick one")


@dataclass(frozen=True)
class TenantScenario:
    """A full-machine assignment of cores to tenants."""

    tenants: Tuple[Tenant, ...]

    def validate(self, num_cores: int) -> None:
        """Check core claims are in range and pairwise disjoint."""
        seen: Dict[int, str] = {}
        for tenant in self.tenants:
            tenant.validate()
            for core in tenant.cores:
                if core < 0 or core >= num_cores:
                    raise ValueError(
                        f"tenant {tenant.name!r} claims core {core}, "
                        f"system has {num_cores}")
                if core in seen:
                    raise ValueError(
                        f"core {core} claimed by both "
                        f"{seen[core]!r} and {tenant.name!r}")
                seen[core] = tenant.name

    def tenant_for_core(self) -> Dict[int, Tenant]:
        """Core index -> owning tenant, for every assigned core."""
        return {core: tenant for tenant in self.tenants
                for core in tenant.cores}

    def label(self) -> str:
        """Compact scenario label for cache keys and progress lines."""
        parts = []
        for t in self.tenants:
            what = t.workload or (
                f"atk{t.attack_rows}" if t.attack_rows else "idle")
            parts.append(f"{t.name}:{what}x{len(t.cores)}")
        return "+".join(parts)


def intervm_scenario(attack_rows: int = 8, victim: str = "mcf",
                     attacker_cores: int = 2, num_cores: int = 8,
                     attack_bank: int = 0, attack_subchannel: int = 0,
                     attacker_seed: int = 1, victim_seed: int = 2
                     ) -> TenantScenario:
    """The canonical two-tenant inter-VM scenario.

    An attacker VM on the first ``attacker_cores`` cores (idle when
    ``attack_rows == 0``, the control point) and a victim VM running
    ``victim`` on the rest, each behind its own seeded-permutation
    address space -- distinct guest physical maps over the same banks.
    """
    attacker = Tenant(
        name="attacker",
        cores=tuple(range(attacker_cores)),
        attack_rows=attack_rows,
        attack_bank=attack_bank,
        attack_subchannel=attack_subchannel,
        address_space=AddressSpaceSpec(kind="permuted",
                                       seed=attacker_seed))
    victim_tenant = Tenant(
        name="victim",
        cores=tuple(range(attacker_cores, num_cores)),
        workload=victim,
        address_space=AddressSpaceSpec(kind="permuted",
                                       seed=victim_seed))
    return TenantScenario(tenants=(attacker, victim_tenant))


class TranslatedChunkSource:
    """A :class:`~repro.cpu.trace.ChunkSource` routed through an
    :class:`~repro.dram.mapping.AddressSpace`.

    Delegates per-method so either consumption style works: the tuple
    path translates entry tuples with the scalar ``translate``, the
    array path translates whole chunk arrays with
    ``translate_arrays``.  Both paths come from the same address-space
    object whose scalar/array agreement is pinned by tests, so the
    event and vector kernels see the identical physical stream.
    """

    __slots__ = ("_inner", "_space")

    def __init__(self, inner: ChunkSource, space: AddressSpace) -> None:
        self._inner = inner
        self._space = space

    def next_chunk(self):
        """Next tuple chunk, coordinates translated; None when done."""
        chunk = self._inner.next_chunk()
        if chunk is None:
            return None
        translate = self._space.translate
        return [(c, i) + translate(s, b, r)
                for c, i, s, b, r in chunk]

    def next_chunk_array(self):
        """Next structured array chunk, translated in place."""
        chunk = self._inner.next_chunk_array()
        if chunk is None:
            return None
        subch, bank, row = self._space.translate_arrays(
            chunk["subchannel"], chunk["bank"], chunk["row"])
        chunk["subchannel"] = subch
        chunk["bank"] = bank
        chunk["row"] = row
        return chunk

    def __iter__(self) -> Iterator[TraceEntry]:
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            for tup in chunk:
                yield TraceEntry(*tup)


def scenario_footprints(scenario: TenantScenario,
                        config: SystemConfig = SystemConfig()
                        ) -> Dict[str, List[Tuple[int, int]]]:
    """Physical ``(subchannel, bank)`` footprint of each tenant.

    Attackers touch exactly their configured bank (translated through
    their address space); workload tenants stripe over every bank, and
    address spaces permute banks bijectively, so their footprint is
    the whole device.  Escape exposure per tenant is the worst
    unmitigated-ACT count inside this footprint.
    """
    g = config.geometry
    all_banks = [(s, b) for s in range(g.subchannels)
                 for b in range(g.banks_per_subchannel)]
    footprints: Dict[str, List[Tuple[int, int]]] = {}
    for tenant in scenario.tenants:
        if tenant.is_attacker:
            space = tenant.address_space.build(g)
            subch, bank, _ = space.translate(
                tenant.attack_subchannel, tenant.attack_bank, 0)
            footprints[tenant.name] = [(subch, bank)]
        elif tenant.workload:
            footprints[tenant.name] = list(all_banks)
        else:
            footprints[tenant.name] = []
    return footprints


class TenantWorkload:
    """A :class:`~repro.workloads.WorkloadSource` composing tenants.

    Each tenant's member cores draw from the tenant's own source -- a
    calibrated synthetic workload for victims, the performance-attack
    kernel for attackers, nothing for idle tenants -- wrapped in a
    :class:`TranslatedChunkSource` for the tenant's address space.
    Unassigned cores idle.  ``sources`` lets the runner substitute
    calibrated victim workloads; by default victims run uncalibrated
    synthetic generators.
    """

    def __init__(self, scenario: TenantScenario,
                 config: SystemConfig = SystemConfig(),
                 scale: SimScale = SimScale(), seed: int = 0,
                 sources: Optional[Dict[str, object]] = None) -> None:
        scenario.validate(config.num_cores)
        self.scenario = scenario
        self.config = config
        self._spaces: Dict[str, AddressSpace] = {
            t.name: t.address_space.build(config.geometry)
            for t in scenario.tenants}
        self._sources: Dict[str, object] = dict(sources or {})
        for tenant in scenario.tenants:
            if tenant.name in self._sources or not tenant.workload:
                continue
            self._sources[tenant.name] = SyntheticWorkload(
                workload_by_name(tenant.workload), config, scale,
                seed=seed)
        self._core_tenant = scenario.tenant_for_core()
        mlps = []
        for tenant in scenario.tenants:
            if tenant.mlp is not None:
                mlps.append(tenant.mlp)
            elif tenant.workload:
                mlps.append(self._sources[tenant.name].mlp)
            elif tenant.is_attacker:
                mlps.append(1)
        self.mlp = max(mlps) if mlps else 1

    def tenant_of(self, core_id: int) -> Optional[str]:
        """Name of the tenant owning ``core_id``, if any."""
        tenant = self._core_tenant.get(core_id)
        return tenant.name if tenant else None

    def tenant_labels(self, num_cores: Optional[int] = None
                      ) -> List[Optional[str]]:
        """Per-core tenant names, for ``MultiCoreSystem(tenants=...)``."""
        count = num_cores if num_cores is not None \
            else self.config.num_cores
        return [self.tenant_of(i) for i in range(count)]

    def footprints(self) -> Dict[str, List[Tuple[int, int]]]:
        """Physical ``(subchannel, bank)`` footprint of each tenant."""
        return scenario_footprints(self.scenario, self.config)

    def _attack_trace(self, tenant: Tenant,
                      member_index: int) -> Iterator[TraceEntry]:
        # Each attacking core hammers its own disjoint K-row region so
        # attacker cores don't collapse onto one another's rows.
        return performance_attack_trace(
            self.config, k_rows=tenant.attack_rows,
            bank=tenant.attack_bank,
            subchannel=tenant.attack_subchannel,
            region_base_row=member_index * tenant.attack_rows)

    def chunk_source(self, core_id: int) -> ChunkSource:
        """One core's translated chunk stream."""
        tenant = self._core_tenant.get(core_id)
        if tenant is None:
            return chunk_entries(iter(()))
        source = self._sources.get(tenant.name)
        if source is not None:
            inner = source.chunk_source(core_id)
        elif tenant.is_attacker:
            member = tenant.cores.index(core_id)
            inner = chunk_entries(self._attack_trace(tenant, member))
        else:
            inner = chunk_entries(iter(()))
        space = self._spaces[tenant.name]
        if isinstance(space, IdentityAddressSpace):
            return inner
        return TranslatedChunkSource(inner, space)

    def trace_chunk_arrays(self, core_id: int, chunk_size: int = 256):
        """One core's translated chunks as structured arrays."""
        source = self.chunk_source(core_id)
        while True:
            chunk = source.next_chunk_array()
            if chunk is None:
                return
            yield chunk

    def trace_factory(self) -> Callable[[int], ChunkSource]:
        """``core_id -> trace`` callable for ``MultiCoreSystem``."""
        return self.chunk_source
