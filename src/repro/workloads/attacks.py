"""Adversarial activation patterns from the paper.

Two forms are provided for each pattern:

- *streams* -- bare ``(row)`` iterators for driving a tracker directly
  in security tests (no timing model needed);
- *trace factories* -- :class:`repro.cpu.trace.TraceEntry` iterators for
  full-system runs (the Table XI performance attack).

Patterns:

- :func:`double_sided_attack_stream` -- the classic sandwich: hammer the
  two physical neighbours of a victim row.
- :func:`worst_case_single_bank_stream` -- maximum-rate activations
  focused on one bank (the 621K-ACTs-per-tREFW bound of Figure 6).
- :func:`feinting_attack_stream` -- round-robin over slightly more rows
  than a counter tracker can hold, the pattern that defines Mithril's
  tolerated threshold (Table II) and breaks TRR.
- :func:`performance_attack_trace` -- Figure 12's kernel: prime one RCT
  region past FTH with a circular pattern of K rows, then keep
  hammering so every MINT window produces a selection and an ALERT.

The stream generators are thin wrappers over the declarative pattern
specs in :mod:`repro.workloads.patterns` -- one attack vocabulary for
the fixed paper set, the security tests, and the parameter fuzzer.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.cpu.trace import ChunkSource, TraceEntry, chunk_entries
from repro.dram.mapping import RowToSubarrayMapping
from repro.params import SystemConfig, ns
from repro.workloads.patterns import (
    CompileContext,
    DecoyEvasion,
    DoubleSided,
    Feint,
    RowCycle,
)


def double_sided_attack_stream(victim_row: int,
                               mapping: RowToSubarrayMapping,
                               acts: int,
                               allow_single_sided: bool = True
                               ) -> Iterator[int]:
    """Alternate activations of the victim's two physical neighbours.

    A victim at a subarray edge has only one physical neighbour; by
    default the stream degrades to single-sided hammering of that
    neighbour (fuzzers pick victims uniformly, so edge rows must not
    crash the sweep).  Pass ``allow_single_sided=False`` to get the
    strict behaviour -- a ``ValueError`` for edge victims.
    """
    pattern = DoubleSided(victim_row=victim_row, acts=acts,
                          allow_single_sided=allow_single_sided)
    return pattern.rows(CompileContext.make(mapping=mapping))


def worst_case_single_bank_stream(rows: List[int], acts: int
                                  ) -> Iterator[int]:
    """Max-rate circular activations over ``rows`` in one bank."""
    pattern = RowCycle(row_list=tuple(rows), acts=acts)
    return pattern.rows(CompileContext.make())


def feinting_attack_stream(tracker_entries: int, acts: int,
                           base_row: int = 0,
                           decoys: Optional[int] = None) -> Iterator[int]:
    """Round-robin over ``entries + decoys`` rows to starve a counter
    tracker: every row's count rises in lock-step, so the mitigate-max
    policy lets each row climb as high as possible before being picked.

    ``decoys`` defaults to ``max(1, entries // 8)`` and must be >= 1:
    with ``decoys=0`` the rotation collapses to exactly the tracker's
    capacity, nothing is evicted, and the "attack" no longer starves
    the tracker -- that degenerate shape raises ``ValueError`` instead
    of silently measuring a benign workload.
    """
    pattern = Feint(tracker_entries=tracker_entries, acts=acts,
                    decoys=(decoys if decoys is not None
                            else max(1, tracker_entries // 8)),
                    base_row=base_row)
    return pattern.rows(CompileContext.make())


def trr_evasion_pattern(table_entries: int, target_row: int,
                        acts: int, seed: int) -> Iterator[int]:
    """Blacksmith-style pattern: keep the target's count low in the TRR
    table by interleaving bursts of one-hit decoys that churn the
    table's low-count entries and keep the target looking cold when it
    is re-inserted.

    ``seed`` is required: the decoy sequence is part of the pattern's
    identity, so two cells of a parameter sweep with different seeds
    must hash -- and cache -- differently.  (The old signature hid a
    ``random.Random(7)`` default that silently shared one decoy
    sequence across every caller.)
    """
    pattern = DecoyEvasion(table_entries=table_entries,
                           target_row=target_row, acts=acts, seed=seed)
    return pattern.rows(CompileContext.make())


def performance_attack_trace(config: SystemConfig,
                             k_rows: int,
                             bank: int = 0,
                             subchannel: int = 0,
                             region_base_row: int = 0,
                             row_stride: int = 1) -> Iterator[TraceEntry]:
    """Figure 12's DoS kernel as a core trace.

    Continuously activates a circular pattern of ``k_rows`` distinct
    rows mapping to the same RCT region, back-to-back (zero compute):
    the region primes past FTH quickly, after which every escaping ACT
    participates in MINT and ALERTs fire at the maximum sustainable
    rate.  ``row_stride`` lets callers follow the row-to-subarray
    mapping so all K rows land in one region.
    """
    if k_rows < 1:
        raise ValueError("need at least one row")
    rows = [region_base_row + i * row_stride for i in range(k_rows)]
    compute = ns(0.25)
    for row in itertools.cycle(rows):
        yield TraceEntry(compute_ps=compute, instructions=1,
                         subchannel=subchannel, bank=bank, row=row)


class AttackWorkload:
    """Adversarial trace factories as one WorkloadSource.

    Assigns each attacking core its own trace-factory callable (for
    example :func:`performance_attack_trace` wrapped in a lambda); cores
    without an entry idle for the window.  This is how the Table XI
    attacker-plus-victims experiments drive the full timing model
    through the same :class:`repro.workloads.WorkloadSource` seam the
    benign workloads use.
    """

    def __init__(self, per_core: Dict[
            int, Callable[[], Iterable[TraceEntry]]],
            mlp: int = 1) -> None:
        self._per_core = dict(per_core)
        self.mlp = mlp

    def trace(self, core_id: int) -> Iterator[TraceEntry]:
        """One core's attack trace (empty for non-attacking cores)."""
        factory = self._per_core.get(core_id)
        if factory is None:
            return iter(())
        return iter(factory())

    def chunk_source(self, core_id: int) -> ChunkSource:
        """The chunked trace wrapped for :class:`repro.cpu.core.Core`.

        Like every :class:`ChunkSource`, the result also serves the
        chunks as structured arrays via ``next_chunk_array`` for the
        vector kernel.
        """
        return chunk_entries(self.trace(core_id))

    def trace_chunk_arrays(self, core_id: int, chunk_size: int = 256):
        """The same chunks as structured arrays (vector-kernel view)."""
        source = chunk_entries(self.trace(core_id), chunk_size)
        while True:
            chunk = source.next_chunk_array()
            if chunk is None:
                return
            yield chunk

    def trace_factory(self) -> Callable[[int], ChunkSource]:
        """``core_id -> trace`` callable for ``MultiCoreSystem``."""
        return self.chunk_source


def benign_striped_trace(config: SystemConfig,
                         banks: int = 16,
                         subchannel: int = 0,
                         rows_per_bank_ws: int = 4096,
                         seed: int = 11) -> Iterator[TraceEntry]:
    """Section IX-A's benign victim: reads striped over ``banks`` banks,
    each access a fresh activation, issued as fast as DRAM allows."""
    rng = random.Random(seed)
    compute = ns(0.25)
    bank_cycle = itertools.cycle(range(banks))
    for bank in bank_cycle:
        row = rng.randrange(rows_per_bank_ws)
        yield TraceEntry(compute_ps=compute, instructions=1,
                         subchannel=subchannel, bank=bank, row=row)
