"""Workloads: Table IV descriptors, synthetic traces, attack kernels.

The paper evaluates 24 workloads (SPEC-2017 with MPKI >= 1, the six GAP
graph kernels, and six mixes).  We reproduce each as a synthetic trace
generator calibrated to the workload's published characteristics --
L3 MPKI, ACT-PKI, bus utilisation, and the mean/std of activations per
subarray per refresh window -- since those four statistics are exactly
what every result in the paper is a function of (see DESIGN.md).

Everything that can feed cores -- the calibrated synthetic generators,
multiprogrammed mixes, recorded trace files, and the adversarial
kernels -- satisfies one seam, :class:`WorkloadSource`: an ``mlp``
hint, a per-core :meth:`~WorkloadSource.chunk_source`, and a
:meth:`~WorkloadSource.trace_factory` that
:class:`repro.cpu.system.MultiCoreSystem` consumes directly.  Ad-hoc
iterator-based traces adapt via :class:`IterableWorkloadSource`.
"""

from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.cpu.trace import ChunkSource, TraceEntry, chunk_entries
from repro.workloads.attacks import (
    AttackWorkload,
    benign_striped_trace,
    double_sided_attack_stream,
    feinting_attack_stream,
    performance_attack_trace,
    trr_evasion_pattern,
    worst_case_single_bank_stream,
)
from repro.workloads.patterns import (
    AttackPattern,
    CompileContext,
    DecoyEvasion,
    DoubleSided,
    Feint,
    HalfDouble,
    NSided,
    RefreshSyncBurst,
    RowCycle,
    Sequence,
    paper_attack_set,
)
from repro.workloads.specs import (
    ALL_WORKLOADS,
    GAP_WORKLOADS,
    MIX_WORKLOADS,
    SPEC_WORKLOADS,
    WorkloadSpec,
    workload_by_name,
)
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.tenants import (
    Tenant,
    TenantScenario,
    TenantWorkload,
    TranslatedChunkSource,
    intervm_scenario,
    scenario_footprints,
)
from repro.workloads.tracefile import (
    TRACE_FORMATS,
    TraceFileWorkload,
    calibration_report,
    convert_trace,
    detect_format,
    load_trace,
    open_ingest,
    read_dramsim3_trace,
    read_litex_rows,
    read_trace,
    trace_from_string,
    trace_metadata,
    write_trace,
)


@runtime_checkable
class WorkloadSource(Protocol):
    """What a workload must provide to drive a multi-core system.

    :class:`~repro.workloads.synthetic.SyntheticWorkload`,
    :class:`~repro.workloads.mixed.MixedWorkload`,
    :class:`~repro.workloads.tracefile.TraceFileWorkload`, and
    :class:`~repro.workloads.attacks.AttackWorkload` all satisfy it; a
    custom source can be any object with these three members.
    """

    mlp: int
    """Outstanding-miss budget the cores should run with."""

    def chunk_source(self, core_id: int) -> ChunkSource:
        """The chunked miss trace for one core.

        The returned :class:`~repro.cpu.trace.ChunkSource` also exposes
        ``next_chunk_array`` -- the same chunks as flat
        :data:`~repro.cpu.trace.ENTRY_DTYPE` structured arrays -- for
        vector-kernel consumers (a view change, never a different
        trace).
        """
        ...

    def trace_factory(self) -> Callable[[int], ChunkSource]:
        """``core_id -> trace`` callable for ``MultiCoreSystem``."""
        ...


class IterableWorkloadSource:
    """Adapt ``core_id -> iterable of TraceEntry`` to the seam.

    The factory is invoked once per core per system build; traces must
    be independently restartable (a generator *function*, not a spent
    generator object).
    """

    def __init__(self, factory: Callable[[int], Iterable[TraceEntry]],
                 mlp: int = 8, chunk_size: int = 256) -> None:
        self._factory = factory
        self.mlp = mlp
        self._chunk_size = chunk_size

    def chunk_source(self, core_id: int) -> ChunkSource:
        """The wrapped iterable, chunked for the core's fast path."""
        return chunk_entries(self._factory(core_id), self._chunk_size)

    def trace_chunk_arrays(self, core_id: int, chunk_size: int = 256):
        """The same chunks as :data:`~repro.cpu.trace.ENTRY_DTYPE`
        structured arrays (vector-kernel view; generation unchanged),
        so ad-hoc sources don't fall off the vector fast path."""
        source = chunk_entries(self._factory(core_id), chunk_size)
        while True:
            chunk = source.next_chunk_array()
            if chunk is None:
                return
            yield chunk

    def trace_factory(self) -> Callable[[int], ChunkSource]:
        """``core_id -> trace`` callable for ``MultiCoreSystem``."""
        return self.chunk_source


__all__ = [
    "ALL_WORKLOADS",
    "AttackPattern",
    "AttackWorkload",
    "CompileContext",
    "DecoyEvasion",
    "DoubleSided",
    "Feint",
    "GAP_WORKLOADS",
    "HalfDouble",
    "IterableWorkloadSource",
    "MIX_WORKLOADS",
    "NSided",
    "RefreshSyncBurst",
    "RowCycle",
    "SPEC_WORKLOADS",
    "Sequence",
    "SyntheticWorkload",
    "TRACE_FORMATS",
    "Tenant",
    "TenantScenario",
    "TenantWorkload",
    "TraceFileWorkload",
    "TranslatedChunkSource",
    "WorkloadSource",
    "WorkloadSpec",
    "benign_striped_trace",
    "calibration_report",
    "convert_trace",
    "detect_format",
    "double_sided_attack_stream",
    "feinting_attack_stream",
    "intervm_scenario",
    "load_trace",
    "open_ingest",
    "paper_attack_set",
    "performance_attack_trace",
    "read_dramsim3_trace",
    "read_litex_rows",
    "read_trace",
    "scenario_footprints",
    "trace_from_string",
    "trace_metadata",
    "trr_evasion_pattern",
    "workload_by_name",
    "worst_case_single_bank_stream",
    "write_trace",
]
