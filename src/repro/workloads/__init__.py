"""Workloads: Table IV descriptors, synthetic traces, attack kernels.

The paper evaluates 24 workloads (SPEC-2017 with MPKI >= 1, the six GAP
graph kernels, and six mixes).  We reproduce each as a synthetic trace
generator calibrated to the workload's published characteristics --
L3 MPKI, ACT-PKI, bus utilisation, and the mean/std of activations per
subarray per refresh window -- since those four statistics are exactly
what every result in the paper is a function of (see DESIGN.md).
"""

from repro.workloads.attacks import (
    benign_striped_trace,
    double_sided_attack_stream,
    feinting_attack_stream,
    performance_attack_trace,
    trr_evasion_pattern,
    worst_case_single_bank_stream,
)
from repro.workloads.specs import (
    ALL_WORKLOADS,
    GAP_WORKLOADS,
    MIX_WORKLOADS,
    SPEC_WORKLOADS,
    WorkloadSpec,
    workload_by_name,
)
from repro.workloads.synthetic import SyntheticWorkload

__all__ = [
    "ALL_WORKLOADS",
    "GAP_WORKLOADS",
    "MIX_WORKLOADS",
    "SPEC_WORKLOADS",
    "SyntheticWorkload",
    "WorkloadSpec",
    "benign_striped_trace",
    "double_sided_attack_stream",
    "feinting_attack_stream",
    "performance_attack_trace",
    "trr_evasion_pattern",
    "workload_by_name",
    "worst_case_single_bank_stream",
]
