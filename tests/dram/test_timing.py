"""Tests for DDR5 timing constraint trackers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import (
    BankTiming,
    BusTracker,
    ChannelStall,
    FawTracker,
    alert_sequence_times,
)
from repro.params import DramTimings, ns


class TestBankTiming:
    def test_trc_spacing_between_activates(self):
        bt = BankTiming(DramTimings())
        bt.activate(0)
        assert bt.earliest_activate(0) == ns(46)

    def test_tras_before_precharge(self):
        bt = BankTiming(DramTimings())
        bt.activate(1000)
        assert bt.earliest_precharge(1000) == 1000 + ns(32)

    def test_precharge_completion_adds_trp(self):
        bt = BankTiming(DramTimings())
        bt.activate(0)
        done = bt.precharge(ns(32))
        assert done == ns(32) + ns(14)
        assert bt.earliest_activate(0) == max(ns(46), done)

    def test_block_until_delays_activate(self):
        bt = BankTiming(DramTimings())
        bt.block_until(ns(500))
        assert bt.earliest_activate(0) == ns(500)

    def test_block_until_monotone(self):
        bt = BankTiming(DramTimings())
        bt.block_until(ns(500))
        bt.block_until(ns(100))
        assert bt.blocked_until == ns(500)

    def test_row_open_tracking(self):
        bt = BankTiming(DramTimings())
        assert not bt.row_open
        bt.activate(0)
        assert bt.row_open
        bt.precharge(ns(32))
        assert not bt.row_open

    def test_prac_timings_slow_turnaround(self):
        normal = BankTiming(DramTimings())
        prac = BankTiming(DramTimings().with_prac())
        normal.activate(0)
        prac.activate(0)
        n_done = normal.precharge(normal.earliest_precharge(0))
        p_done = prac.precharge(prac.earliest_precharge(0))
        # PRAC: earlier precharge allowed (tRAS 16) but much longer tRP.
        assert p_done == ns(16) + ns(36)
        assert n_done == ns(32) + ns(14)
        assert prac.earliest_activate(0) == ns(52)  # tRC dominates


class TestFawTracker:
    def test_first_four_acts_unconstrained(self):
        f = FawTracker(DramTimings())
        for i in range(4):
            assert f.earliest_activate(i) == i
            f.activate(i)

    def test_fifth_act_waits_tfaw(self):
        f = FawTracker(DramTimings())
        for i in range(4):
            f.activate(i * 100)
        assert f.earliest_activate(400) == ns(13.333)

    def test_out_of_order_booking_does_not_convoy(self):
        # A far-future ACT (blocked bank) must not delay ACTs that can
        # issue now: the window at `now` holds only near-term ACTs.
        f = FawTracker(DramTimings())
        f.activate(ns(1000))  # delayed ACT booked in the future
        assert f.earliest_activate(0) == 0
        f.activate(0)
        f.activate(1)
        f.activate(2)
        # Window around t=3 contains acts at 0,1,2 and the future one is
        # outside; a fourth near-term ACT fits only after sliding.
        t = f.earliest_activate(3)
        assert t == 3

    def test_window_slides_past_oldest(self):
        f = FawTracker(DramTimings())
        for t in (0, 1, 2, 3):
            f.activate(t)
        assert f.earliest_activate(4) == ns(13.333)

    def test_release_before_prunes(self):
        f = FawTracker(DramTimings())
        for t in (0, 1, 2, 3):
            f.activate(t)
        f.release_before(ns(100))
        assert f._times == []
        assert f.earliest_activate(ns(100)) == ns(100)

    @given(st.lists(st.integers(0, 200_000), min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_never_more_than_four_acts_in_any_window(self, asks):
        timings = DramTimings()
        f = FawTracker(timings)
        placed = []
        for ask in sorted(asks):
            t = f.earliest_activate(ask)
            f.activate(t)
            placed.append(t)
        placed.sort()
        for i, t in enumerate(placed):
            in_window = [u for u in placed
                         if t - timings.tFAW < u <= t]
            assert len(in_window) <= 4


class TestBusTracker:
    def test_transfer_occupies_tburst(self):
        bus = BusTracker(DramTimings())
        end = bus.transfer(0)
        assert end == ns(3)
        assert bus.earliest_transfer(0) == ns(3)

    def test_future_booking_leaves_gap_usable(self):
        bus = BusTracker(DramTimings())
        bus.transfer(ns(100))
        # The bus is idle before the future slot: a near-term transfer
        # must not wait for it.
        assert bus.earliest_transfer(0) == 0
        end = bus.transfer(0)
        assert end == ns(3)

    def test_back_to_back_transfers_serialize(self):
        bus = BusTracker(DramTimings())
        a = bus.transfer(0)
        b = bus.transfer(0)
        assert b == a + ns(3)

    def test_transfer_fits_in_gap(self):
        bus = BusTracker(DramTimings())
        bus.transfer(0)          # [0, 3ns)
        bus.transfer(ns(10))     # [10, 13ns)
        end = bus.transfer(ns(3))
        assert end == ns(6)      # fits in [3, 10) gap

    def test_utilization(self):
        bus = BusTracker(DramTimings())
        for _ in range(10):
            bus.transfer(0)
        assert bus.utilization(ns(60)) == 0.5

    def test_release_before_keeps_math_right(self):
        bus = BusTracker(DramTimings())
        for i in range(20):
            bus.transfer(i * ns(3))
        bus.release_before(ns(30))
        assert bus.earliest_transfer(ns(30)) == ns(60)


class TestChannelStall:
    def test_stall_blocks(self):
        c = ChannelStall()
        c.stall(0, ns(100))
        assert c.earliest(ns(50)) == ns(100)
        assert c.earliest(ns(200)) == ns(200)


class TestAlertSequenceTimes:
    def test_figure4_windows(self):
        start, end = alert_sequence_times(ns(1000), ns(180), ns(350))
        assert start == ns(1180)
        assert end == ns(1530)
