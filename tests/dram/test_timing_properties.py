"""Property-based tests for the out-of-order timing trackers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.timing import BusTracker, FawTracker
from repro.params import DramTimings


class TestBusProperties:
    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=80))
    @settings(max_examples=100)
    def test_no_two_slots_overlap(self, desired_times):
        bus = BusTracker(DramTimings())
        slots = []
        for desired in desired_times:
            end = bus.transfer(desired)
            slots.append((end - DramTimings().tBURST, end))
        slots.sort()
        for (s1, e1), (s2, e2) in zip(slots, slots[1:]):
            assert s2 >= e1

    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=80))
    @settings(max_examples=100)
    def test_start_never_before_request(self, desired_times):
        bus = BusTracker(DramTimings())
        for desired in desired_times:
            end = bus.transfer(desired)
            assert end - DramTimings().tBURST >= desired

    @given(st.lists(st.integers(0, 50_000), min_size=5, max_size=60))
    @settings(max_examples=50)
    def test_busy_time_conserved(self, desired_times):
        bus = BusTracker(DramTimings())
        for desired in desired_times:
            bus.transfer(desired)
        assert bus.busy_time == len(desired_times) * DramTimings().tBURST


class TestFawProperties:
    @given(st.lists(st.integers(0, 300_000), min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_no_five_acts_in_any_window_out_of_order(self, asks):
        """The invariant holds even for out-of-order placement asks."""
        timings = DramTimings()
        faw = FawTracker(timings)
        placed = []
        for ask in asks:  # deliberately NOT sorted
            t = faw.earliest_activate(ask)
            faw.activate(t)
            placed.append(t)
        placed.sort()
        for i in range(len(placed) - 4):
            assert placed[i + 4] - placed[i] >= timings.tFAW

    @given(st.lists(st.integers(0, 300_000), min_size=1, max_size=60))
    @settings(max_examples=100)
    def test_placement_never_before_ask(self, asks):
        faw = FawTracker(DramTimings())
        for ask in asks:
            t = faw.earliest_activate(ask)
            assert t >= ask
            faw.activate(t)

    @given(st.lists(st.integers(0, 100_000), min_size=4, max_size=40),
           st.integers(0, 100_000))
    @settings(max_examples=60)
    def test_release_before_is_safe_for_future_queries(self, asks,
                                                       probe):
        """Pruning with a lower bound on future query times never
        admits an illegal placement afterwards."""
        timings = DramTimings()
        faw = FawTracker(timings)
        placed = []
        for ask in sorted(asks):
            t = faw.earliest_activate(ask)
            faw.activate(t)
            placed.append(t)
        watermark = max(placed)
        faw.release_before(watermark)
        ask = watermark + probe
        t = faw.earliest_activate(ask)
        faw.activate(t)
        placed.append(t)
        placed.sort()
        for i in range(len(placed) - 4):
            assert placed[i + 4] - placed[i] >= timings.tFAW
