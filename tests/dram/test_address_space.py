"""Tests for the logical->physical AddressSpace translation layer."""

import pytest

from repro.dram import mapping
from repro.dram.mapping import (
    AddressSpaceSpec,
    BitFieldDecoder,
    IdentityAddressSpace,
    PermutedAddressSpace,
    StridedAddressSpace,
    make_address_space,
)
from repro.params import DramGeometry

GEOMETRY = DramGeometry()

needs_numpy = pytest.mark.skipif(mapping._np is None,
                                 reason="needs numpy")


def spaces():
    return [
        IdentityAddressSpace(),
        StridedAddressSpace(GEOMETRY, stride=3, row_offset=17,
                            bank_offset=5),
        PermutedAddressSpace(GEOMETRY, seed=7),
    ]


def sample_coords():
    """Edge and interior coordinates of the default geometry."""
    rows = GEOMETRY.rows_per_bank
    banks = GEOMETRY.banks_per_subchannel
    return [(0, 0, 0), (1, banks - 1, rows - 1), (0, 7, 12345),
            (1, 0, rows // 2), (0, banks // 2, 1)]


class TestTranslateContracts:
    @pytest.mark.parametrize("space", spaces(),
                             ids=lambda s: type(s).__name__)
    def test_stays_inside_geometry(self, space):
        for subch, bank, row in sample_coords():
            s, b, r = space.translate(subch, bank, row)
            assert 0 <= s < GEOMETRY.subchannels
            assert 0 <= b < GEOMETRY.banks_per_subchannel
            assert 0 <= r < GEOMETRY.rows_per_bank

    @pytest.mark.parametrize("space", spaces()[1:],
                             ids=lambda s: type(s).__name__)
    def test_row_translation_is_injective(self, space):
        rows = range(0, GEOMETRY.rows_per_bank, 997)
        images = {space.translate(0, 0, row) for row in rows}
        assert len(images) == len(list(rows))

    def test_identity_is_identity(self):
        space = IdentityAddressSpace()
        for coords in sample_coords():
            assert space.translate(*coords) == coords

    def test_permutation_is_seed_deterministic(self):
        one = PermutedAddressSpace(GEOMETRY, seed=3)
        two = PermutedAddressSpace(GEOMETRY, seed=3)
        other = PermutedAddressSpace(GEOMETRY, seed=4)
        coords = sample_coords()
        assert [one.translate(*c) for c in coords] \
            == [two.translate(*c) for c in coords]
        assert [one.translate(*c) for c in coords] \
            != [other.translate(*c) for c in coords]

    def test_even_stride_rejected(self):
        with pytest.raises(ValueError, match="stride"):
            StridedAddressSpace(GEOMETRY, stride=2)


@needs_numpy
class TestScalarArrayEquivalence:
    @pytest.mark.parametrize("space", spaces(),
                             ids=lambda s: type(s).__name__)
    def test_translate_arrays_matches_scalar(self, space):
        np = mapping._np
        coords = sample_coords()
        subch = np.array([c[0] for c in coords], dtype=np.int64)
        bank = np.array([c[1] for c in coords], dtype=np.int64)
        row = np.array([c[2] for c in coords], dtype=np.int64)
        got = space.translate_arrays(subch, bank, row)
        want = [space.translate(*c) for c in coords]
        for i, (s, b, r) in enumerate(want):
            assert (got[0][i], got[1][i], got[2][i]) == (s, b, r)


class TestSpecFactory:
    @pytest.mark.parametrize("kind, cls", [
        ("identity", IdentityAddressSpace),
        ("strided", StridedAddressSpace),
        ("permuted", PermutedAddressSpace),
    ])
    def test_build_dispatches_on_kind(self, kind, cls):
        spec = AddressSpaceSpec(kind=kind)
        assert isinstance(spec.build(GEOMETRY), cls)

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError, match="identity"):
            make_address_space(AddressSpaceSpec(kind="bogus"),
                               GEOMETRY)

    def test_spec_is_hashable_job_material(self):
        assert hash(AddressSpaceSpec(kind="permuted", seed=9)) == \
            hash(AddressSpaceSpec(kind="permuted", seed=9))


class TestBitFieldDecoder:
    def test_encode_decode_round_trip(self):
        decoder = BitFieldDecoder.for_geometry(GEOMETRY)
        fields = dict(column=9, subchannel=1, bank=17, row=12345)
        address = decoder.encode_bus(**fields)
        decoded = decoder.decode(address)
        for name, value in fields.items():
            assert decoded[name] == value

    def test_rejects_overflowing_field(self):
        decoder = BitFieldDecoder.for_geometry(GEOMETRY)
        with pytest.raises(ValueError):
            decoder.encode_bus(row=GEOMETRY.rows_per_bank, bank=0,
                               subchannel=0, column=0)

    @needs_numpy
    def test_decode_arrays_matches_scalar(self):
        np = mapping._np
        decoder = BitFieldDecoder.for_geometry(GEOMETRY)
        addresses = [decoder.encode_bus(row=r, bank=b, subchannel=s,
                                        column=c)
                     for r, b, s, c in [(0, 0, 0, 0), (12345, 17, 1, 9),
                                        (GEOMETRY.rows_per_bank - 1,
                                         31, 1, 63)]]
        arrays = decoder.decode_arrays(np.array(addresses,
                                                dtype=np.int64))
        for i, address in enumerate(addresses):
            scalar = decoder.decode(address)
            for name in scalar:
                assert arrays[name][i] == scalar[name]
