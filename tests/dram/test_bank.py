"""Tests for Bank state and the ground-truth activation oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank, RowActivationOracle
from repro.dram.mapping import StridedR2SA


class TestRowActivationOracle:
    def test_counts_activations(self):
        o = RowActivationOracle()
        assert o.on_activate(5) == 1
        assert o.on_activate(5) == 2
        assert o.count(5) == 2
        assert o.count(6) == 0

    def test_refresh_resets_count(self):
        o = RowActivationOracle()
        for _ in range(10):
            o.on_activate(5)
        o.on_row_refreshed(5)
        assert o.count(5) == 0

    def test_max_unmitigated_is_sticky_across_refresh(self):
        o = RowActivationOracle()
        for _ in range(10):
            o.on_activate(5)
        o.on_row_refreshed(5)
        assert o.max_unmitigated == 10
        assert o.max_row == 5

    def test_mitigation_resets_aggressor(self):
        o = RowActivationOracle()
        for _ in range(7):
            o.on_activate(9)
        o.on_mitigation(9)
        assert o.count(9) == 0
        assert o.max_unmitigated == 7

    def test_attack_succeeded_strictly_greater(self):
        o = RowActivationOracle()
        for _ in range(100):
            o.on_activate(1)
        assert not o.attack_succeeded(100)
        assert o.attack_succeeded(99)

    def test_current_max_reflects_live_state(self):
        o = RowActivationOracle()
        o.on_activate(1)
        o.on_activate(1)
        o.on_activate(2)
        assert o.current_max() == 2
        o.on_row_refreshed(1)
        assert o.current_max() == 1

    def test_rows_refreshed_bulk(self):
        o = RowActivationOracle()
        for r in range(5):
            o.on_activate(r)
        o.on_rows_refreshed(range(3))
        assert o.current_max() == 1
        assert o.count(3) == 1

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=300))
    @settings(max_examples=100)
    def test_max_equals_true_max(self, rows):
        o = RowActivationOracle()
        counts = {}
        best = 0
        for r in rows:
            counts[r] = counts.get(r, 0) + 1
            best = max(best, counts[r])
            o.on_activate(r)
        assert o.max_unmitigated == best


class TestBank:
    def test_activate_opens_row(self, small_geometry):
        b = Bank(0, small_geometry)
        b.activate(100)
        assert b.open_row == 100
        assert b.total_activations == 1

    def test_activate_out_of_range(self, small_geometry):
        b = Bank(0, small_geometry)
        with pytest.raises(ValueError):
            b.activate(small_geometry.rows_per_bank)
        with pytest.raises(ValueError):
            b.activate(-1)

    def test_precharge_closes_row(self, small_geometry):
        b = Bank(0, small_geometry)
        b.activate(5)
        b.precharge()
        assert b.open_row is None

    def test_mitigate_refreshes_four_victims(self, small_geometry):
        b = Bank(0, small_geometry)
        victims = b.mitigate(100, blast_radius=2)
        assert victims == 4
        assert b.victim_rows_refreshed == 4
        assert b.total_mitigations == 1

    def test_mitigate_at_subarray_edge_fewer_victims(self, small_geometry):
        b = Bank(0, small_geometry)
        assert b.mitigate(0, blast_radius=2) == 2

    def test_mitigate_resets_oracle(self, small_geometry):
        b = Bank(0, small_geometry)
        for _ in range(50):
            b.activate(7)
        b.mitigate(7)
        assert b.oracle.count(7) == 0

    def test_refresh_rows_resets_counts(self, small_geometry):
        b = Bank(0, small_geometry)
        b.activate(3)
        b.refresh_rows([3])
        assert b.oracle.count(3) == 0

    def test_strided_mapping_victims(self, small_geometry):
        mapping = StridedR2SA(small_geometry)
        b = Bank(0, small_geometry, mapping)
        row = 2 * small_geometry.subarrays_per_bank + 1
        b.activate(row)
        victims = mapping.physical_neighbors(row, 2)
        assert all(mapping.subarray_of(v) == mapping.subarray_of(row)
                   for v in victims)
