"""Tests for address decoding and row-to-subarray mappings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.mapping import (
    AddressMapping,
    DecodedAddress,
    SequentialR2SA,
    StridedR2SA,
)
from repro.params import DramGeometry


class TestAddressMapping:
    def test_consecutive_lines_share_row_mop4(self):
        m = AddressMapping()
        base = m.decode(0)
        for offset in range(1, 4):
            d = m.decode(offset * 64)
            assert (d.subchannel, d.bank, d.row) == (
                base.subchannel, base.bank, base.row)

    def test_fifth_line_switches_subchannel_or_bank(self):
        m = AddressMapping()
        base = m.decode(0)
        next_group = m.decode(4 * 64)
        assert (next_group.subchannel, next_group.bank) != (
            base.subchannel, base.bank)

    def test_rejects_non_power_of_two_mop(self):
        with pytest.raises(ValueError):
            AddressMapping(mop_lines=3)

    @given(st.integers(min_value=0, max_value=2 ** 34 - 1))
    @settings(max_examples=200)
    def test_encode_decode_roundtrip(self, address):
        m = AddressMapping()
        line_address = (address // 64) * 64
        assert m.encode(m.decode(line_address)) == line_address

    def test_decode_fields_in_range(self):
        m = AddressMapping()
        g = DramGeometry()
        for address in range(0, 1 << 20, 64 * 97):
            d = m.decode(address)
            assert 0 <= d.subchannel < g.subchannels
            assert 0 <= d.bank < g.banks_per_subchannel
            assert 0 <= d.row < g.rows_per_bank
            assert 0 <= d.column < g.row_bytes // 64


class TestSequentialR2SA:
    def test_identity_physical_index(self):
        m = SequentialR2SA()
        assert m.physical_index(12345) == 12345
        assert m.logical_row(777) == 777

    def test_consecutive_rows_same_subarray(self):
        m = SequentialR2SA()
        assert m.subarray_of(0) == m.subarray_of(1023)
        assert m.subarray_of(1024) == 1

    def test_neighbors_are_adjacent_logical_rows(self):
        m = SequentialR2SA()
        assert sorted(m.physical_neighbors(100, 2)) == [98, 99, 101, 102]

    def test_neighbors_clamped_at_subarray_edge(self):
        m = SequentialR2SA()
        # Row 0 is at the bottom edge of subarray 0.
        assert sorted(m.physical_neighbors(0, 2)) == [1, 2]
        # Row 1023 is at the top edge of subarray 0; 1024 is in
        # subarray 1 and electrically isolated.
        assert sorted(m.physical_neighbors(1023, 2)) == [1021, 1022]


class TestStridedR2SA:
    def test_consecutive_rows_different_subarrays(self):
        m = StridedR2SA()
        assert m.subarray_of(0) == 0
        assert m.subarray_of(1) == 1
        assert m.subarray_of(127) == 127
        assert m.subarray_of(128) == 0

    def test_every_128th_row_same_subarray(self):
        m = StridedR2SA()
        subarrays = {m.subarray_of(r) for r in range(0, 128 * 50, 128)}
        assert subarrays == {0}

    def test_physical_neighbors_are_stride_apart(self):
        m = StridedR2SA()
        row = 5 * 128 + 17  # position 5 in subarray 17
        assert sorted(m.physical_neighbors(row, 1)) == [row - 128,
                                                        row + 128]

    def test_neighbors_share_subarray(self):
        m = StridedR2SA()
        for victim in (1000, 54321, 99999):
            sa = m.subarray_of(victim)
            for n in m.physical_neighbors(victim, 2):
                assert m.subarray_of(n) == sa

    @given(st.integers(min_value=0, max_value=128 * 1024 - 1))
    @settings(max_examples=300)
    def test_bijection(self, row):
        m = StridedR2SA()
        p = m.physical_index(row)
        assert 0 <= p < 128 * 1024
        assert m.logical_row(p) == row

    @given(st.integers(min_value=0, max_value=4095))
    @settings(max_examples=100)
    def test_small_geometry_bijection(self, row):
        g = DramGeometry(rows_per_bank=4096, rows_per_subarray=1024)
        m = StridedR2SA(g)
        assert m.logical_row(m.physical_index(row)) == row

    def test_contiguous_block_spreads_over_all_subarrays(self):
        # The property that makes CGF work: a contiguous working set
        # lands evenly across subarrays under strided mapping.
        m = StridedR2SA()
        block = range(10_000, 10_000 + 1280)
        per_subarray = {}
        for row in block:
            sa = m.subarray_of(row)
            per_subarray[sa] = per_subarray.get(sa, 0) + 1
        assert len(per_subarray) == 128
        assert max(per_subarray.values()) == 10

    def test_contiguous_block_concentrates_under_sequential(self):
        m = SequentialR2SA()
        block = range(10_240, 10_240 + 1280)
        subarrays = {m.subarray_of(r) for r in block}
        assert len(subarrays) == 2


class TestAggressorsOf:
    def test_symmetry_sequential(self):
        m = SequentialR2SA()
        for victim in (10, 512, 2047):
            for aggressor in m.aggressors_of(victim, 2):
                assert victim in m.physical_neighbors(aggressor, 2)

    def test_symmetry_strided(self):
        m = StridedR2SA()
        for victim in (1000, 5000):
            for aggressor in m.aggressors_of(victim, 2):
                assert victim in m.physical_neighbors(aggressor, 2)


class TestDecodedAddress:
    def test_fields(self):
        d = DecodedAddress(subchannel=1, bank=3, row=42, column=7)
        assert (d.subchannel, d.bank, d.row, d.column) == (1, 3, 42, 7)
