"""Tests for the demand-refresh sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.mapping import SequentialR2SA, StridedR2SA
from repro.dram.refresh import RefreshScheduler
from repro.params import DramGeometry


class TestRefreshScheduler:
    def test_default_covers_bank_in_one_window(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        assert s.refs_per_window == 256  # 4096 rows / 16 per REF
        assert s.rows_per_ref == 16

    def test_slices_partition_the_bank(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        seen = set()
        for _ in range(s.refs_per_window):
            slice_ = s.advance()
            rows = set(range(slice_.physical_start, slice_.physical_end))
            assert not rows & seen
            seen |= rows
        assert seen == set(range(small_geometry.rows_per_bank))

    def test_refptr_wraps_and_counts_windows(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        for _ in range(s.refs_per_window):
            s.advance()
        assert s.refptr == 0
        assert s.windows_completed == 1

    def test_wrap_flag_on_last_slice(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        slices = [s.advance() for _ in range(s.refs_per_window)]
        assert not any(sl.wraps_window for sl in slices[:-1])
        assert slices[-1].wraps_window

    def test_subarray_start_and_finish_flags(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        refs_per_sa = s.refs_per_subarray()
        slices = [s.advance() for _ in range(refs_per_sa)]
        assert slices[0].starts_subarray
        assert not slices[0].finishes_subarray
        assert slices[-1].finishes_subarray
        assert all(sl.subarray == 0 for sl in slices)

    def test_logical_rows_match_mapping_sequential(self, small_geometry):
        s = RefreshScheduler(small_geometry, SequentialR2SA(small_geometry))
        slice_ = s.advance()
        assert slice_.logical_rows == list(range(16))

    def test_logical_rows_match_mapping_strided(self, small_geometry):
        mapping = StridedR2SA(small_geometry)
        s = RefreshScheduler(small_geometry, mapping)
        slice_ = s.advance()
        for p, logical in zip(
                range(slice_.physical_start, slice_.physical_end),
                slice_.logical_rows):
            assert mapping.physical_index(logical) == p

    def test_scaled_window_covers_bank_with_fewer_refs(self,
                                                       small_geometry):
        s = RefreshScheduler(small_geometry, refs_per_window=64)
        assert s.rows_per_ref == 64
        seen = set()
        for _ in range(64):
            slice_ = s.advance()
            seen |= set(range(slice_.physical_start, slice_.physical_end))
        assert seen == set(range(small_geometry.rows_per_bank))

    def test_invalid_refs_per_window(self, small_geometry):
        with pytest.raises(ValueError):
            RefreshScheduler(small_geometry, refs_per_window=0)
        with pytest.raises(ValueError):
            RefreshScheduler(
                small_geometry,
                refs_per_window=small_geometry.rows_per_bank + 1)

    def test_non_dividing_refs_still_cover_bank_once(self,
                                                     small_geometry):
        # 1000 REFs over 4096 rows: uneven slices, full single cover.
        s = RefreshScheduler(small_geometry, refs_per_window=1000)
        counts = {}
        for _ in range(1000):
            sl = s.advance()
            for p in range(sl.physical_start, sl.physical_end):
                counts[p] = counts.get(p, 0) + 1
        assert len(counts) == small_geometry.rows_per_bank
        assert set(counts.values()) == {1}
        assert s.windows_completed == 1

    def test_peek_does_not_advance(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        first = s.peek_slice()
        assert s.refptr == 0
        assert s.advance().physical_start == first.physical_start

    def test_subarray_being_refreshed(self, small_geometry):
        s = RefreshScheduler(small_geometry)
        assert s.subarray_being_refreshed() == 0
        for _ in range(s.refs_per_subarray()):
            s.advance()
        assert s.subarray_being_refreshed() == 1

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20)
    def test_every_row_refreshed_exactly_once_per_window(self, log_scale):
        g = DramGeometry(rows_per_bank=1024, rows_per_subarray=256,
                         rows_per_ref=8)
        refs = 128 // (2 ** (log_scale - 1)) or 1
        if g.rows_per_bank % refs:
            return
        s = RefreshScheduler(g, refs_per_window=refs)
        counts = {}
        for _ in range(refs):
            sl = s.advance()
            for p in range(sl.physical_start, sl.physical_end):
                counts[p] = counts.get(p, 0) + 1
        assert set(counts.values()) == {1}
        assert len(counts) == g.rows_per_bank
