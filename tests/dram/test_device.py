"""Tests for the assembled DRAM device."""

from repro.dram.device import DramDevice
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.mitigations.none import NoMitigation
from repro.params import MitigationCosts


class AlwaysAlertTracker(BankTracker):
    """Test double: wants an ALERT whenever it holds a pending row."""

    name = "test-always-alert"

    def __init__(self):
        self.pending = []
        self.ref_slices = []

    def on_activate(self, row, now_ps):
        self.pending.append(row)

    def wants_alert(self):
        return bool(self.pending)

    def on_mitigation_slot(self, now_ps, source):
        if source is MitigationSlotSource.REF or not self.pending:
            return []
        return [self.pending.pop(0)]

    def on_ref_slice(self, slice_, now_ps):
        self.ref_slices.append(slice_)


class RefMitigator(BankTracker):
    """Test double: mitigates its last ACT at every REF slot."""

    name = "test-ref-mitigator"

    def __init__(self):
        self.last = None

    def on_activate(self, row, now_ps):
        self.last = row

    def on_mitigation_slot(self, now_ps, source):
        if source is MitigationSlotSource.REF and self.last is not None:
            row, self.last = self.last, None
            return [row]
        return []


class TestDramDevice:
    def test_activate_reaches_bank_and_tracker(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        device.activate(0, 10, 0)
        assert device.banks[0].total_activations == 1
        assert device.trackers[0].pending == [10]
        assert device.stats.activations == 1

    def test_alert_pending_any_bank(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        assert not device.alert_pending()
        device.activate(2, 5, 0)
        assert device.alert_pending()

    def test_service_alert_mitigates_every_bank_with_work(self,
                                                          small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        device.activate(0, 10, 0)
        device.activate(1, 20, 0)
        victims = device.service_alert(100)
        assert device.stats.alerts_serviced == 1
        assert device.stats.mitigations_total == 2
        assert victims == 8  # two mitigations x 4 victims each

    def test_ref_refreshes_same_slice_all_banks(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        slice_ = device.do_ref(0)
        assert device.stats.refs_issued == 1
        per_bank = len(slice_.logical_rows)
        assert device.stats.demand_rows_refreshed == \
            per_bank * device.num_banks
        for tracker in device.trackers:
            assert len(tracker.ref_slices) == 1

    def test_ref_slot_mitigations_counted_as_ref(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: RefMitigator())
        device.activate(0, 100, 0)
        device.do_ref(10)
        assert device.stats.mitigations_by_source == {"ref": 1}

    def test_rfm_gives_slot_to_one_bank(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        device.activate(3, 42, 0)
        mitigated = device.rfm(3, 50)
        assert mitigated == 1
        assert device.stats.rfms_issued == 1
        assert device.stats.mitigations_by_source == {"rfm": 1}

    def test_default_tracker_is_none(self, small_config):
        device = DramDevice(small_config)
        assert isinstance(device.trackers[0], NoMitigation)
        device.activate(0, 1, 0)
        assert not device.alert_pending()

    def test_oracle_attack_detection(self, small_config):
        device = DramDevice(small_config)
        for _ in range(100):
            device.activate(0, 7, 0)
        assert device.max_unmitigated_acts() == 100
        assert device.attack_succeeded(99)
        assert not device.attack_succeeded(100)

    def test_refresh_resets_oracle_counts(self, small_config):
        device = DramDevice(small_config)
        device.activate(0, 0, 0)
        # The first REF refreshes rows 0..15 (sequential sweep).
        device.do_ref(0)
        assert device.banks[0].oracle.count(0) == 0


class TestDeviceStats:
    def test_refresh_power_overhead(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        for _ in range(4):
            device.do_ref(0)
        device.activate(0, 100, 0)
        device.service_alert(0)
        stats = device.stats
        expected = stats.victim_rows_refreshed / \
            stats.demand_rows_refreshed
        assert stats.refresh_power_overhead() == expected

    def test_refresh_cannibalization_only_counts_ref_slots(
            self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: RefMitigator())
        device.activate(0, 100, 0)
        device.do_ref(0)
        costs = MitigationCosts()
        tRFC = small_config.timings.tRFC
        frac = device.stats.refresh_cannibalization(costs, tRFC)
        assert frac == costs.mitigation_time / tRFC

    def test_mitigation_rate(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: AlwaysAlertTracker())
        for i in range(10):
            device.activate(0, i, 0)
        device.service_alert(0)
        assert device.stats.mitigation_rate() == 0.1

    def test_empty_stats_are_zero(self, small_config):
        device = DramDevice(small_config)
        assert device.stats.refresh_power_overhead() == 0.0
        assert device.stats.mitigation_rate() == 0.0
        assert device.stats.refresh_cannibalization(
            MitigationCosts(), 410_000) == 0.0
