"""Tests for the DRFM-based MC-side engine (DREAM / MIST)."""

import random

import pytest

from repro.dram.device import DramDevice
from repro.mc.drfm import DrfmEngine


class TestDrfmEngine:
    def test_validation(self):
        with pytest.raises(ValueError):
            DrfmEngine(4, acts_per_drfm=0)
        with pytest.raises(ValueError):
            DrfmEngine(4, min_samples=5)

    def test_samples_latched_per_bank(self):
        e = DrfmEngine(2, sample_window=1, acts_per_drfm=100)
        e.on_activate(0, 10)
        e.on_activate(1, 20)
        assert e.pending_samples == 2

    def test_latest_sample_wins(self):
        # MIST: the latch is refreshed, never exhausted.
        e = DrfmEngine(1, sample_window=1, acts_per_drfm=100)
        e.on_activate(0, 10)
        e.on_activate(0, 11)
        assert e.issue_drfm() == [(0, 11)]

    def test_fires_at_interval(self):
        e = DrfmEngine(1, sample_window=1, acts_per_drfm=4)
        fired = [e.on_activate(0, i) for i in range(4)]
        assert fired == [False, False, False, True]

    def test_dream_defers_until_enough_samples(self):
        e = DrfmEngine(4, sample_window=10 ** 6, acts_per_drfm=2,
                       min_samples=2)
        # No sampler has selected anything yet: the interval elapses
        # but the DRFM is deferred.
        assert not e.on_activate(0, 1)
        assert not e.on_activate(0, 2)
        assert e.deferrals == 1

    def test_issue_clears_state(self):
        e = DrfmEngine(2, sample_window=1, acts_per_drfm=2)
        e.on_activate(0, 10)
        assert e.on_activate(1, 20)
        pairs = e.issue_drfm()
        assert pairs == [(0, 10), (1, 20)]
        assert e.pending_samples == 0
        assert e.drfms_issued == 1

    def test_one_drfm_mitigates_many_banks(self, small_config):
        """End to end: one DRFM applies victim refreshes in parallel
        across every sampled bank of the device."""
        device = DramDevice(small_config)
        engine = DrfmEngine(device.num_banks, sample_window=1,
                            acts_per_drfm=8,
                            rng=random.Random(1))
        fired = 0
        for i in range(64):
            bank = i % device.num_banks
            row = 100 + (i * 13) % 256
            device.activate(bank, row, i)
            if engine.on_activate(bank, row):
                for b, aggressor in engine.issue_drfm():
                    device.banks[b].mitigate(aggressor)
                fired += 1
        assert fired >= 1
        mitigated_banks = sum(
            1 for b in device.banks if b.total_mitigations)
        assert mitigated_banks >= 2  # parallelism across banks

    def test_storage_scales_with_banks(self):
        small = DrfmEngine(8).storage_bits()
        large = DrfmEngine(32).storage_bits()
        assert large > small * 3
