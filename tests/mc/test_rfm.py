"""Tests for the Refresh Management engine."""

import pytest

from repro.mc.rfm import RfmEngine


class TestRfmEngine:
    def test_disabled_when_bat_none(self):
        e = RfmEngine(4, None, 350_000)
        assert not e.enabled
        assert not e.on_activate(0)

    def test_fires_every_bat_activations(self):
        e = RfmEngine(2, 3, 350_000)
        fired = [e.on_activate(0) for _ in range(7)]
        assert fired == [False, False, True, False, False, True, False]
        assert e.rfms_issued == 2

    def test_counters_per_bank(self):
        e = RfmEngine(2, 3, 350_000)
        e.on_activate(0)
        e.on_activate(0)
        assert not e.on_activate(1)
        assert e.counter(0) == 2
        assert e.counter(1) == 1

    def test_counter_resets_on_fire(self):
        e = RfmEngine(1, 2, 350_000)
        e.on_activate(0)
        assert e.on_activate(0)
        assert e.counter(0) == 0

    def test_rejects_bad_bat(self):
        with pytest.raises(ValueError):
            RfmEngine(1, 0, 350_000)
