"""Tests for the command-granularity memory controller."""


from repro.dram.device import DramDevice
from repro.mc.controller import MemoryController
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.params import ns


class OneShotAlertTracker(BankTracker):
    """Raises a single ALERT after a configurable ACT count."""

    name = "test-oneshot"

    def __init__(self, after):
        self.after = after
        self.acts = 0
        self.pending = False
        self.mitigated_at = None

    def on_activate(self, row, now_ps):
        self.acts += 1
        if self.acts == self.after:
            self.pending = True

    def wants_alert(self):
        return self.pending

    def on_mitigation_slot(self, now_ps, source):
        if source is MitigationSlotSource.ALERT and self.pending:
            self.pending = False
            self.mitigated_at = now_ps
            return [0]
        return []


def make_mc(small_config, tracker_factory=None, rfm_bat=None):
    device = DramDevice(small_config, tracker_factory)
    return MemoryController(small_config, device, rfm_bat), device


class TestBasicTiming:
    def test_first_request_latency_is_act_cas(self, small_config):
        mc, _ = make_mc(small_config)
        r = mc.serve(0, 10, 0)
        assert r.activated and not r.row_hit
        t = small_config.timings
        assert r.completion_time == t.tRCD + t.tBURST + t.tCAS

    def test_same_row_back_to_back_hits(self, small_config):
        mc, _ = make_mc(small_config)
        first = mc.serve(0, 10, 0)
        second = mc.serve(0, 10, first.issue_time + ns(5))
        assert second.row_hit
        assert not second.activated

    def test_row_closes_after_soft_close_window(self, small_config):
        mc, _ = make_mc(small_config)
        mc.serve(0, 10, 0)
        late = mc.serve(0, 10, ns(500))
        assert late.activated  # tRAS expired, row auto-closed

    def test_conflict_pays_precharge(self, small_config):
        mc, _ = make_mc(small_config)
        first = mc.serve(0, 10, 0)
        conflict = mc.serve(0, 20, first.issue_time + ns(1))
        assert conflict.activated
        t = small_config.timings
        # PRE waits tRAS after the ACT, then tRP, then the new ACT.
        assert conflict.issue_time >= first.issue_time + t.tRAS + t.tRP

    def test_trc_between_activates_same_bank(self, small_config):
        mc, _ = make_mc(small_config)
        a = mc.serve(0, 10, 0)
        b = mc.serve(0, 4000, ns(1))
        assert b.issue_time - a.issue_time >= small_config.timings.tRC

    def test_banks_operate_in_parallel(self, small_config):
        mc, _ = make_mc(small_config)
        a = mc.serve(0, 10, 0)
        b = mc.serve(1, 10, 0)
        assert b.issue_time < a.issue_time + small_config.timings.tRC

    def test_prac_timings_slow_conflicts(self, small_config):
        normal_mc, _ = make_mc(small_config)
        prac_cfg = small_config.with_prac_timings()
        prac_dev = DramDevice(prac_cfg)
        prac_mc = MemoryController(prac_cfg, prac_dev)
        for mc in (normal_mc, prac_mc):
            mc.serve(0, 10, 0)
        n = normal_mc.serve(0, 20, ns(1))
        p = prac_mc.serve(0, 20, ns(1))
        assert p.issue_time > n.issue_time


class TestRefresh:
    def test_refreshes_issued_on_schedule(self, small_config):
        mc, device = make_mc(small_config)
        mc.process_refreshes(small_config.timings.tREFI * 3)
        assert device.stats.refs_issued == 3

    def test_request_waits_out_refresh(self, small_config):
        mc, _ = make_mc(small_config)
        t = small_config.timings
        r = mc.serve(0, 10, t.tREFI + 1)
        assert r.issue_time >= t.tREFI + t.tRFC

    def test_finish_flushes_refreshes(self, small_config):
        mc, device = make_mc(small_config)
        mc.finish(small_config.timings.tREFI * 10)
        assert device.stats.refs_issued == 10


class TestRfmIntegration:
    def test_rfm_issued_at_bat(self, small_config):
        mc, device = make_mc(small_config, rfm_bat=2)
        mc.serve(0, 10, 0)
        mc.serve(0, 2000, ns(100))
        assert device.stats.rfms_issued == 1

    def test_rfm_blocks_the_bank(self, small_config):
        mc, _ = make_mc(small_config, rfm_bat=2)
        mc.serve(0, 10, 0)
        second = mc.serve(0, 2000, ns(100))
        third = mc.serve(0, 3000, second.issue_time + 1)
        t = small_config.timings
        assert third.issue_time >= second.issue_time + t.tRAS + t.tRFM

    def test_other_banks_unaffected_by_rfm(self, small_config):
        mc, _ = make_mc(small_config, rfm_bat=2)
        mc.serve(0, 10, 0)
        second = mc.serve(0, 2000, ns(100))
        other = mc.serve(1, 10, second.issue_time + 1)
        assert other.issue_time < second.issue_time + ns(195)


class TestAlertIntegration:
    def test_alert_asserted_and_serviced(self, small_config):
        trackers = {}

        def factory(bank_id):
            trackers[bank_id] = OneShotAlertTracker(after=1)
            return trackers[bank_id]

        mc, device = make_mc(small_config, tracker_factory=factory)
        r = mc.serve(0, 10, 0)
        assert mc.alerts == 1
        abo = small_config.abo
        assert trackers[0].mitigated_at == \
            r.issue_time + abo.prologue + abo.stall

    def test_commands_during_stall_are_deferred(self, small_config):
        mc, _ = make_mc(small_config,
                        tracker_factory=lambda b: OneShotAlertTracker(1))
        first = mc.serve(0, 10, 0)
        abo = small_config.abo
        stall_start = first.issue_time + abo.prologue
        mid_stall = mc.serve(1, 10, stall_start + ns(10))
        assert mid_stall.issue_time >= stall_start + abo.stall

    def test_commands_during_prologue_proceed(self, small_config):
        mc, _ = make_mc(small_config,
                        tracker_factory=lambda b: OneShotAlertTracker(1))
        first = mc.serve(0, 10, 0)
        in_prologue = mc.serve(1, 10, first.issue_time + ns(20))
        assert in_prologue.issue_time < first.issue_time + ns(180)

    def test_alert_counted_once(self, small_config):
        mc, device = make_mc(
            small_config, tracker_factory=lambda b: OneShotAlertTracker(1))
        mc.serve(0, 10, 0)
        assert device.stats.alerts_serviced == 1


class TestBookkeeping:
    def test_row_hit_rate(self, small_config):
        mc, _ = make_mc(small_config)
        r = mc.serve(0, 10, 0)
        mc.serve(0, 10, r.issue_time + ns(2))
        assert mc.row_hit_rate == 0.5

    def test_activation_count(self, small_config):
        mc, _ = make_mc(small_config)
        mc.serve(0, 10, 0)
        mc.serve(1, 10, 0)
        assert mc.total_activations == 2
