"""Tests for the command-log timing validator."""

from repro.mc.validator import CommandLog, TimingValidator
from repro.params import DramTimings, ns


def make_validator():
    return TimingValidator(DramTimings())


class TestCleanLogs:
    def test_empty_log(self):
        assert make_validator().validate(CommandLog()) == []

    def test_legal_acts_pass(self):
        log = CommandLog()
        log.record_act(0, 0)
        log.record_act(ns(46), 0)
        log.record_act(ns(5), 1)
        assert make_validator().validate(log) == []

    def test_legal_pre_act_cycle(self):
        log = CommandLog()
        log.record_act(0, 0)
        log.record_precharge(ns(32), 0)
        log.record_act(ns(46), 0)
        assert make_validator().validate(log) == []


class TestViolations:
    def test_trc_violation(self):
        log = CommandLog()
        log.record_act(0, 0)
        log.record_act(ns(30), 0)
        violations = make_validator().validate(log)
        assert any("tRC" in v for v in violations)

    def test_tras_violation(self):
        log = CommandLog()
        log.record_act(0, 0)
        log.record_precharge(ns(10), 0)
        violations = make_validator().validate(log)
        assert any("tRAS" in v for v in violations)

    def test_trp_violation(self):
        log = CommandLog()
        log.record_act(0, 0)
        log.record_precharge(ns(32), 0)
        log.record_act(ns(40), 0)  # < PRE + tRP (46 ns)
        violations = make_validator().validate(log)
        assert any("tRP" in v for v in violations)

    def test_tfaw_violation(self):
        log = CommandLog()
        for i in range(5):
            log.record_act(i * ns(1), i)  # 5 ACTs within 5 ns
        violations = make_validator().validate(log)
        assert any("tFAW" in v for v in violations)

    def test_four_acts_in_window_allowed(self):
        log = CommandLog()
        for i in range(4):
            log.record_act(i * ns(1), i)
        log.record_act(ns(14), 4)
        assert make_validator().validate(log) == []

    def test_ref_blackout_violation(self):
        log = CommandLog()
        log.record_ref(ns(100), ns(510))
        log.record_act(ns(200), 0)
        violations = make_validator().validate(log)
        assert any("REF blackout" in v for v in violations)

    def test_rfm_blackout_only_blocks_its_bank(self):
        log = CommandLog()
        log.record_rfm(ns(100), ns(295), bank=0)
        log.record_act(ns(150), 1)  # another bank: fine
        assert make_validator().validate(log) == []
        log.record_act(ns(160), 0)  # same bank: violation
        violations = make_validator().validate(log)
        assert any("RFM blackout" in v for v in violations)

    def test_stall_violation(self):
        log = CommandLog()
        log.record_stall(ns(100), ns(450))
        log.record_act(ns(120), 3)
        violations = make_validator().validate(log)
        assert any("ALERT stall" in v for v in violations)

    def test_bus_overlap(self):
        log = CommandLog()
        log.record_burst(0, ns(3))
        log.record_burst(ns(2), ns(5))
        violations = make_validator().validate(log)
        assert any("bus overlap" in v for v in violations)

    def test_adjacent_bursts_allowed(self):
        log = CommandLog()
        log.record_burst(0, ns(3))
        log.record_burst(ns(3), ns(6))
        assert make_validator().validate(log) == []
