"""Integration of the DRFM engine with the memory controller."""

import random

from repro.dram.device import DramDevice
from repro.mc.controller import MemoryController
from repro.mc.drfm import DrfmEngine
from repro.mc.validator import CommandLog, TimingValidator
from repro.params import ns


def make(small_config, acts_per_drfm=16, sample_window=1):
    device = DramDevice(small_config)
    engine = DrfmEngine(device.num_banks, sample_window=sample_window,
                        acts_per_drfm=acts_per_drfm,
                        rng=random.Random(7))
    log = CommandLog()
    mc = MemoryController(small_config, device, command_log=log,
                          drfm=engine)
    return mc, device, engine, log


class TestDrfmController:
    def _drive(self, mc, n=64):
        t = 0
        for i in range(n):
            result = mc.serve(i % 4, (i * 37) % 512, t)
            t = result.completion_time + ns(5)
        return t

    def test_drfm_mitigations_recorded(self, small_config):
        mc, device, engine, _ = make(small_config)
        self._drive(mc)
        assert engine.drfms_issued >= 1
        assert device.stats.mitigations_total >= 1
        assert device.stats.mitigations_by_source.get("rfm", 0) >= 1

    def test_one_drfm_serves_multiple_banks(self, small_config):
        mc, device, engine, _ = make(small_config, acts_per_drfm=32)
        self._drive(mc, 64)
        per_drfm = device.stats.mitigations_total / \
            max(1, engine.drfms_issued)
        assert per_drfm > 1.0

    def test_oracle_counts_reduced(self, small_config):
        mc, device, engine, _ = make(small_config, acts_per_drfm=8)
        t = 0
        # Hammer one row; the sampler latches it constantly.
        for _ in range(200):
            result = mc.serve(0, 42, t)
            t = result.completion_time + ns(50)
        assert device.banks[0].oracle.count(42) < 200

    def test_timing_stays_legal_with_drfm(self, small_config):
        mc, device, engine, log = make(small_config)
        self._drive(mc, 128)
        violations = TimingValidator(small_config.timings).validate(log)
        assert violations == []

    def test_disabled_when_none(self, small_config):
        device = DramDevice(small_config)
        mc = MemoryController(small_config, device)
        t = 0
        for i in range(32):
            result = mc.serve(i % 4, i * 3 % 128, t)
            t = result.completion_time + ns(5)
        assert device.stats.mitigations_total == 0
