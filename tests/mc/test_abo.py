"""Tests for ALERT-Back-Off handling and stall windows."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc.abo import AboEngine, StallWindows
from repro.params import AboTimings, ns


class TestStallWindows:
    def test_point_outside_windows_unchanged(self):
        s = StallWindows()
        s.add(100, 200)
        assert s.adjust(50) == 50
        assert s.adjust(250) == 250

    def test_point_inside_window_slides_to_end(self):
        s = StallWindows()
        s.add(100, 200)
        assert s.adjust(150) == 200
        assert s.adjust(100) == 200

    def test_overlapping_windows_merge(self):
        s = StallWindows()
        s.add(100, 200)
        s.add(150, 300)
        assert s.adjust(120) == 300
        assert s.total_stall == 200

    def test_empty_window_ignored(self):
        s = StallWindows()
        s.add(100, 100)
        assert s.windows == []

    def test_drop_before_prunes_history(self):
        s = StallWindows()
        s.add(100, 200)
        s.add(500, 600)
        s.drop_before(300)
        assert s.windows == [(500, 600)]

    @given(st.lists(st.tuples(st.integers(0, 10_000),
                              st.integers(1, 500)),
                    min_size=1, max_size=20),
           st.integers(0, 12_000))
    @settings(max_examples=100)
    def test_adjusted_point_never_inside_any_window(self, spans, point):
        s = StallWindows()
        for start, length in sorted(spans):
            s.add(start, start + length)
        adjusted = s.adjust(point)
        assert adjusted >= point
        for start, end in s.windows:
            assert not (start <= adjusted < end)


class TestAboEngine:
    def test_assert_creates_stall_window(self):
        e = AboEngine(AboTimings())
        start, end = e.assert_alert(ns(1000))
        assert start == ns(1180)
        assert end == ns(1530)
        assert e.alerts_asserted == 1

    def test_prologue_commands_still_issue(self):
        e = AboEngine(AboTimings())
        e.assert_alert(ns(1000))
        # Commands before the stall window are unaffected.
        assert e.stalls.adjust(ns(1100)) == ns(1100)
        # Commands in the stall slide to its end.
        assert e.stalls.adjust(ns(1200)) == ns(1530)

    def test_epilogue_act_required_between_alerts(self):
        e = AboEngine(AboTimings())
        e.assert_alert(0)
        assert not e.can_assert(ns(2000))
        e.on_activate()
        assert e.can_assert(ns(2000))

    def test_no_alert_during_own_stall(self):
        e = AboEngine(AboTimings())
        _, end = e.assert_alert(0)
        e.on_activate()
        assert not e.can_assert(end - 1)
        assert e.can_assert(end)

    def test_maybe_assert_respects_pending_flag(self):
        e = AboEngine(AboTimings())
        assert e.maybe_assert(False, 0) is None
        assert e.maybe_assert(True, 0) is not None

    def test_maybe_assert_blocked_returns_none(self):
        e = AboEngine(AboTimings())
        e.assert_alert(0)
        assert e.maybe_assert(True, 10) is None

    def test_back_to_back_alert_cadence(self):
        # With the mandatory epilogue ACT, ALERTs are at least one
        # stall apart: the Figure 10 pacing.
        e = AboEngine(AboTimings())
        t = 0
        stall_ends = []
        for _ in range(3):
            _, end = e.assert_alert(t)
            stall_ends.append(end)
            e.on_activate()
            t = end  # next ALERT fires right after the stall
        gaps = [b - a for a, b in zip(stall_ends, stall_ends[1:])]
        assert all(g >= ns(530) for g in gaps)
