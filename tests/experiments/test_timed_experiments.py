"""Structural tests for the timed experiment modules.

Run at an extreme time scale with a single light workload: these check
shapes, keys, and bookkeeping rather than the numbers themselves (the
benchmarks do that at meaningful scales).
"""

import pytest

from repro.experiments import fig1, fig3, fig6, fig11, fig13, table5, \
    table8, table9, table13
from repro.params import SimScale

SCALE = SimScale(4096)
WORKLOADS = ["tc"]


@pytest.fixture(scope="module")
def fig3_result():
    return fig3.run(workloads=WORKLOADS, scale=SCALE,
                    thresholds=(1000,))


@pytest.fixture(scope="module")
def fig11_result():
    return fig11.run(workloads=WORKLOADS, scale=SCALE,
                     thresholds=(1000,))


class TestFig3:
    def test_keys_present(self, fig3_result):
        assert set(fig3_result.mint_slowdown) == {1000}
        assert "tc" in fig3_result.per_workload
        per = fig3_result.per_workload["tc"]
        assert {"prac", "mint-1000", "mint-rp-1000"} <= set(per)

    def test_refresh_power_nonnegative(self, fig3_result):
        assert fig3_result.mint_refresh_power[1000] >= 0.0


class TestFig11:
    def test_structure(self, fig11_result):
        assert set(fig11_result.mirza_slowdown) == {1000}
        assert fig11_result.prac_alert_rate == 0.0
        assert fig11_result.mirza_alert_rate[1000] >= 0.0


class TestTable5:
    def test_grid_keys(self):
        result = table5.run(workloads=WORKLOADS, scale=SCALE,
                            windows=(24,), queue_sizes=(1, 4))
        assert set(result.slowdown) == {(24, 1), (24, 4)}


class TestTable8:
    def test_rows_and_reduction(self):
        rows = table8.run(workloads=WORKLOADS, scale=SimScale(256),
                          thresholds=(1000,))
        assert len(rows) == 1
        row = rows[0]
        assert 0.0 <= row.escape_probability <= 1.0
        assert row.mint_rate == 1 / 48
        if row.mirza_rate:
            assert row.reduction == pytest.approx(
                row.mint_rate / row.mirza_rate)


class TestTable9:
    def test_points_respected(self):
        rows = table9.run(workloads=WORKLOADS, scale=SCALE,
                          points=((12, 1500),))
        assert len(rows) == 1
        assert rows[0].mint_window == 12
        assert rows[0].sram_bytes == 196


class TestFig6:
    def test_divergence_positive(self):
        result = fig6.run(workloads=WORKLOADS, scale=SimScale(256))
        assert result.worst_case > 600_000
        assert result.divergence > 1.0


class TestFig13:
    def test_overheads_ordered(self):
        result = fig13.run(workloads=WORKLOADS, scale=SimScale(256),
                           thresholds=(1000,))
        assert result.mirza_overhead[1000] <= \
            result.mint_overhead[1000]


class TestTable13:
    def test_all_trackers_at_all_thresholds(self):
        rows = table13.run(workloads=WORKLOADS, scale=SCALE)
        keys = {(r.trhd, r.tracker) for r in rows}
        assert len(keys) == 9  # 3 thresholds x 3 trackers


class TestFig1:
    def test_summary_fields(self):
        summary = fig1.run(workloads=WORKLOADS, scale=SimScale(256))
        assert summary.sram_bytes_per_bank == 196
        assert summary.area_reduction == pytest.approx(46.5, abs=1)
        assert summary.mitigation_reduction > 0
