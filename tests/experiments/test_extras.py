"""Tests for the extension exhibits."""

from repro.experiments.extras import (
    energy_table,
    lifetime_table,
    main,
    storage_comparison,
)


class TestExtras:
    def test_lifetime_table_mentions_calibrated_k(self, capsys):
        out = lifetime_table()
        assert "28.5" in out
        capsys.readouterr()

    def test_energy_table_reproduces_reduction_ratios(self, capsys):
        out = energy_table()
        # The paper's Table VIII ratios carried into energy.
        assert "10x" in out
        assert "28x" in out
        assert "125x" in out
        capsys.readouterr()

    def test_storage_comparison_orders_trackers(self, capsys):
        out = storage_comparison()
        # MIRZA sits far below the CAM trackers.
        assert "7,168" in out
        assert "MIRZA" in out
        capsys.readouterr()

    def test_main_concatenates(self, capsys):
        out = main()
        assert out.count("Tracker storage") == 1
        capsys.readouterr()
