"""Tests for the declarative experiment framework and planner."""

import dataclasses
import math

import pytest

from repro.__main__ import main as cli_main
from repro.experiments import framework
from repro.experiments.framework import (
    Cell,
    Check,
    Context,
    Experiment,
)
from repro.params import SimScale
from repro.report import generate_markdown
from repro.sim.runner import prac_setup
from repro.sim.session import SimJob, SimSession

FAST = Context.make(workloads=["tc"], scale=SimScale(4096),
                    cgf=SimScale(512))


def _demo(name, **kwargs):
    defaults = dict(
        title=name.title(),
        description="demo experiment",
        grid=lambda ctx: (),
        reduce=lambda cells: None,
        render=lambda result: str(result),
    )
    defaults.update(kwargs)
    return Experiment(name=name, **defaults)


class TestContext:
    def test_options_sorted_and_none_dropped(self):
        ctx = Context.make(b=2, a=1, c=None)
        assert ctx.options == (("a", 1), ("b", 2))

    def test_opt_falls_back_to_default(self):
        ctx = Context.make(thresholds=(1000,))
        assert ctx.opt("thresholds") == (1000,)
        assert ctx.opt("missing", 7) == 7

    def test_scales_follow_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIME_SCALE", "4096")
        monkeypatch.setenv("REPRO_CGF_SCALE", "512")
        assert Context.make().timed_scale() == SimScale(4096)
        assert Context.make().counting_scale() == SimScale(512)
        assert Context.make(scale=SimScale(64)).timed_scale() \
            == SimScale(64)


class TestRegistry:
    def test_title_is_a_lookup_alias(self):
        assert framework.experiment_by_name("Table VII") \
            is framework.experiment_by_name("table7")
        assert framework.experiment_by_name("Figure 11") \
            is framework.experiment_by_name("fig11")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown exhibit"):
            framework.experiment_by_name("table99")

    def test_shadowing_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            framework.register_experiment(_demo("table7"))


class TestPlanner:
    def test_joint_plan_dedupes_across_experiments(self):
        # Figures 3 and 11 share their PRAC cells and unprotected
        # baselines, and Table XIII needs both figures: planning the
        # three together must submit strictly fewer unique jobs than
        # planning each on its own.
        names = ["fig3", "fig11", "table13"]
        separate = sum(
            framework.plan([name], ctx=FAST).stats.unique_jobs
            for name in names)
        joint = framework.plan(names, ctx=FAST)
        assert joint.stats.experiments == 3
        assert joint.stats.unique_jobs < separate
        assert joint.stats.deduplicated > 0

    def test_dependencies_planned_once(self):
        # table13 pulls fig3 and fig11 in through ``needs``; asking
        # for them explicitly as well must not plan them twice.
        alone = framework.plan(["table13"], ctx=FAST)
        assert [e.name for e in alone.experiments()] \
            == ["fig3", "fig11", "table13"]
        joint = framework.plan(["fig3", "fig11", "table13"], ctx=FAST)
        assert joint.stats.planned_cells == alone.stats.planned_cells

    def test_plan_is_inspectable_before_execution(self):
        plan = framework.plan(["fig11"], ctx=FAST)
        assert plan.batch is None
        assert plan.results == {}
        assert plan.stats.planned_cells > 0
        # One PRAC + three MIRZA cells for the single workload, each
        # with a derived baseline.
        assert plan.cell_count("fig11") == 8

    def test_duplicate_cell_keys_rejected(self):
        job = SimJob("tc", prac_setup(1000), SimScale(4096))
        exp = _demo("dup-cell-demo",
                    grid=lambda ctx: [Cell("k", job), Cell("k", job)])
        with pytest.raises(ValueError, match="duplicate cell key"):
            framework.plan([exp])


class TestExecution:
    def test_serial_and_parallel_reduce_identically(self):
        # Reducers are pure functions of the cell values, so fanning
        # the batch over worker processes must be bit-identical to the
        # serial run.
        ctx = Context.make(workloads=["tc"], scale=SimScale(4096),
                           thresholds=(1000,))
        serial = framework.run_experiment(
            "fig11", ctx, session=SimSession(disk_cache=False))
        parallel = framework.run_experiment(
            "fig11", ctx,
            session=SimSession(disk_cache=False, max_workers=2))
        assert serial == parallel

    def test_execute_populates_batch_and_results(self):
        ctx = Context.make(workloads=["tc"], scale=SimScale(4096),
                           thresholds=(1000,))
        plan = framework.plan(["fig11"], ctx=ctx,
                              session=SimSession(disk_cache=False))
        results = plan.execute()
        assert set(results) == {"fig11"}
        assert plan.batch is not None
        assert plan.batch.submitted == plan.stats.planned_cells
        assert plan.wall_time > 0
        assert results["fig11"].mirza_slowdown.keys() == {1000}


class TestChecks:
    def test_relative_tolerance_flags(self):
        exp = _demo("check-demo", checks=(
            Check("value", 10.0, lambda r: r, rel_tol=0.1),))
        ok, = framework.evaluate_checks(exp, 10.5)
        assert ok.within and ok.flag == "ok"
        dev, = framework.evaluate_checks(exp, 12.0)
        assert not dev.within and dev.flag == "DEV"

    def test_absolute_tolerance_covers_zero_references(self):
        exp = _demo("check-demo", checks=(
            Check("value", 0.0, lambda r: r,
                  rel_tol=0.5, abs_tol=1.0),))
        ok, = framework.evaluate_checks(exp, 0.8)
        assert ok.within
        dev, = framework.evaluate_checks(exp, 1.5)
        assert not dev.within

    def test_report_renders_deviation_flags(self):
        report = generate_markdown(only=["table12"], progress=False)
        assert "Paper vs reproduction at a glance" in report
        assert "MIRZA storage bytes/bank" in report
        assert "- ok:" in report or "- DEV:" in report


class TestCliExperiments:
    def test_list_experiments(self, capsys):
        assert cli_main(["list", "--experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "table13" in out

    def test_run_experiment_flag(self, capsys):
        assert cli_main(["run", "--experiment", "table12"]) == 0
        out = capsys.readouterr().out
        assert "Table XII" in out
        assert "MIRZA storage bytes/bank" in out

    def test_run_experiment_unknown(self, capsys):
        assert cli_main(["run", "--experiment", "tableZZ"]) == 2
        assert "unknown exhibit" in capsys.readouterr().err

    def test_run_experiment_plans_one_batch(self, monkeypatch,
                                            capsys):
        monkeypatch.setenv("REPRO_WORKLOADS", "tc")
        assert cli_main(["run", "--experiment", "fig11",
                         "--experiment", "table7",
                         "--time-scale", "4096", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Figure 11" in captured.out
        assert "Table VII" in captured.out
        assert "unique" in captured.err  # plan dedup stats

    def test_report_only_flag(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert cli_main(["report", str(target),
                         "--only", "table7,table10"]) == 0
        text = target.read_text()
        assert "Table VII" in text
        assert "Table X" in text
        assert "Figure 3" not in text


@dataclasses.dataclass(frozen=True)
class _BoomJob:
    """A content-hashable cell job that always fails permanently."""

    key: int

    def execute(self):
        raise RuntimeError("poisoned cell")


class TestDegraded:
    def _keep_going(self):
        return SimSession(disk_cache=False,
                          failure_policy="keep_going", max_retries=0)

    def _poisoned(self, name="degraded-demo", **kwargs):
        ok = SimJob("tc", prac_setup(1000), SimScale(4096))
        return _demo(
            name,
            grid=lambda ctx: [Cell("ok", ok), Cell("bad", _BoomJob(1))],
            reduce=lambda cells: "reduced",
            **kwargs)

    def test_failed_cell_degrades_only_its_experiment(self):
        healthy = _demo("healthy-demo",
                        grid=lambda ctx: [Cell(
                            "ok", SimJob("tc", prac_setup(1000),
                                         SimScale(4096)))],
                        reduce=lambda cells: "fine")
        plan = framework.plan([self._poisoned(), healthy], ctx=FAST,
                              session=self._keep_going())
        results = plan.execute()
        degraded = results["degraded-demo"]
        assert framework.is_degraded(degraded)
        assert degraded.missing_cells == ("bad",)
        assert degraded.failures[0].error_type == "RuntimeError"
        assert results["healthy-demo"] == "fine"
        assert plan.degraded() == ["degraded-demo"]

    def test_degraded_summary_renders_instead_of_result(self):
        exp = self._poisoned()
        plan = framework.plan([exp], ctx=FAST,
                              session=self._keep_going())
        result = plan.execute()[exp.name]
        rendered = framework.render_experiment(exp, result)
        assert rendered == result.summary()
        assert "DEGRADED" in rendered
        assert "poisoned cell" in rendered

    def test_degradation_propagates_through_needs(self):
        dep = self._poisoned("degraded-dep")
        framework.register_experiment(dep)
        try:
            dependent = _demo(
                "dependent-demo",
                grid=lambda ctx: (),
                needs=("degraded-dep",),
                reduce=lambda cells: cells.need("degraded-dep"))
            plan = framework.plan([dependent], ctx=FAST,
                                  session=self._keep_going())
            results = plan.execute()
            assert framework.is_degraded(results["dependent-demo"])
            assert results["dependent-demo"].degraded_deps \
                == ("degraded-dep",)
            assert "dependency" in results["dependent-demo"].summary()
        finally:
            framework._REGISTRY.pop(
                framework.canonical_name("degraded-dep"), None)

    def test_degraded_checks_flag_without_numbers(self):
        exp = self._poisoned(checks=(
            framework.Check("value", 10.0, lambda r: r),))
        result = framework.plan(
            [exp], ctx=FAST,
            session=self._keep_going()).execute()[exp.name]
        dev, = framework.evaluate_checks(exp, result)
        assert dev.flag == "DEGRADED"
        assert math.isnan(dev.measured)
        assert not dev.within

    def test_degraded_without_checks_yields_synthetic_row(self):
        exp = self._poisoned()
        result = framework.plan(
            [exp], ctx=FAST,
            session=self._keep_going()).execute()[exp.name]
        dev, = framework.evaluate_checks(exp, result)
        assert dev.flag == "DEGRADED"
        assert dev.label == "cells failed"

    def test_fail_fast_session_aborts_the_plan(self):
        from repro.sim.session import JobFailed
        session = SimSession(disk_cache=False, max_retries=0)
        plan = framework.plan([self._poisoned()], ctx=FAST,
                              session=session)
        with pytest.raises(JobFailed, match="poisoned cell"):
            plan.execute()
