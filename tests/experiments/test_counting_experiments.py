"""Tests for the activation-counting experiment helpers (medium)."""

import pytest

from repro.experiments.common import (
    CgfStats,
    acts_per_subarray_for,
    measure_cgf,
    selected_workloads,
)
from repro.params import SimScale
from repro.workloads.specs import workload_by_name

FAST = SimScale(256)


class TestSelectedWorkloads:
    def test_default_subset(self):
        specs = selected_workloads()
        assert len(specs) >= 3
        assert all(hasattr(s, "l3_mpki") for s in specs)

    def test_explicit_names(self):
        specs = selected_workloads(["cc", "tc"])
        assert [s.name for s in specs] == ["cc", "tc"]


class TestCgfStats:
    def test_percentages(self):
        stats = CgfStats(total_acts=200, filtered=150, escaped=50)
        assert stats.filtered_pct == 75.0
        assert stats.remaining_pct == 25.0

    def test_empty(self):
        stats = CgfStats(total_acts=0, filtered=0, escaped=0)
        assert stats.filtered_pct == 0.0


class TestMeasureCgf:
    def test_counts_are_consistent(self):
        spec = workload_by_name("tc")
        stats = measure_cgf(spec, "strided", fth=5, scale=FAST)
        assert stats.filtered + stats.escaped == stats.total_acts
        assert stats.total_acts > 0

    def test_strided_filters_more_than_sequential(self):
        spec = workload_by_name("cc")
        fth = SimScale(256).scale_threshold(1500)
        strided = measure_cgf(spec, "strided", fth, scale=FAST)
        sequential = measure_cgf(spec, "sequential", fth, scale=FAST)
        assert strided.filtered_pct > sequential.filtered_pct

    def test_higher_fth_filters_more(self):
        spec = workload_by_name("cc")
        low = measure_cgf(spec, "strided", 3, scale=FAST)
        high = measure_cgf(spec, "strided", 30, scale=FAST)
        assert high.filtered_pct >= low.filtered_pct

    def test_zero_fth_escapes_most_acts(self):
        # With FTH=0 only the first ACT of a region (per reset window)
        # is filtered; at deep scaling regions see just a few ACTs
        # each, so "most" rather than "almost all" escape.
        spec = workload_by_name("cc")
        stats = measure_cgf(spec, "strided", 0, scale=FAST)
        assert stats.remaining_pct > 50.0


class TestActsPerSubarray:
    def test_mean_matches_spec_by_construction(self):
        spec = workload_by_name("cc")
        mean, std = acts_per_subarray_for(spec, FAST)
        assert mean * 256 == pytest.approx(
            spec.acts_per_subarray_mean, rel=0.05)
        assert std >= 0.0

    def test_light_workload_lower_than_heavy(self):
        light, _ = acts_per_subarray_for(workload_by_name("blender"),
                                         FAST)
        heavy, _ = acts_per_subarray_for(workload_by_name("fotonik3d"),
                                         FAST)
        assert heavy > light
