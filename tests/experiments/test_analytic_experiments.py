"""Tests for the purely analytic experiment modules (fast)."""

import pytest

from repro.experiments import (
    table1,
    table7,
    table10,
    table11,
    table12,
)


class TestTable1:
    def test_values_match_paper(self):
        values = table1.run()
        assert values["tRP"] == {"ddr5_ns": 14, "prac_ns": 36}
        assert values["tRC"] == {"ddr5_ns": 46, "prac_ns": 52}

    def test_main_prints_table(self, capsys):
        out = table1.main()
        assert "tRP" in out
        assert capsys.readouterr().out


class TestTable7:
    def test_rows_cover_three_thresholds(self):
        rows = table7.run()
        assert sorted(r.trhd for r in rows) == [500, 1000, 2000]

    def test_preset_and_solved_agree(self):
        for row in table7.run():
            assert abs(row.preset.fth - row.solved.fth) <= \
                0.01 * row.preset.fth

    def test_main_mentions_sram(self, capsys):
        out = table7.main()
        assert "196" in out


class TestTable10:
    def test_ratios(self):
        rows = {r.trhd: r for r in table10.run()}
        assert rows[1000].area_ratio == pytest.approx(45, rel=0.05)
        assert rows[250].mirza_bits_per_subarray == 36

    def test_main(self):
        assert "45" in table10.main()


class TestTable11:
    def test_throughput_matches_paper(self):
        rows = {r.mint_window: r for r in table11.run()}
        assert rows[12].relative_throughput_pct == pytest.approx(
            55.9, rel=0.1)

    def test_window_below_protocol_minimum_rejected(self):
        with pytest.raises(ValueError):
            table11.attack_relative_throughput(3)

    def test_slowdown_factor_inverse(self):
        row = table11.run(windows=(12,))[0]
        assert row.slowdown_factor == pytest.approx(
            100 / row.relative_throughput_pct)


class TestTable12:
    def test_trr_insecure_mirza_free(self):
        rows = {r.tracker: r for r in table12.run()}
        assert not rows["TRR"].secure
        assert rows["MIRZA"].cannibalization_pct == 0.0
        assert rows["MIRZA"].storage_bytes == pytest.approx(72, abs=4)

    def test_mint_cannibalization(self):
        rows = {r.tracker: r for r in table12.run()}
        assert rows["MINT"].cannibalization_pct == pytest.approx(
            22.8, abs=0.5)
