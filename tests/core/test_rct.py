"""Tests for the Region Count Table: filtering and safe reset."""

import pytest

from repro.core.rct import RegionCountTable, ResetPolicy
from repro.dram.refresh import RefreshScheduler
from repro.params import DramGeometry


def make_rct(geometry, num_regions=4, fth=10,
             policy=ResetPolicy.SAFE):
    return RegionCountTable(num_regions, fth, geometry, policy)


class TestConstruction:
    def test_region_size(self, small_geometry):
        rct = make_rct(small_geometry, num_regions=4)
        assert rct.region_size == 1024

    def test_rejects_non_dividing_regions(self, small_geometry):
        with pytest.raises(ValueError):
            RegionCountTable(3, 10, small_geometry)

    def test_rejects_negative_fth(self, small_geometry):
        with pytest.raises(ValueError):
            RegionCountTable(4, -1, small_geometry)

    def test_rejects_zero_regions(self, small_geometry):
        with pytest.raises(ValueError):
            RegionCountTable(0, 10, small_geometry)


class TestFiltering:
    def test_first_fth_plus_one_acts_filtered(self, small_geometry):
        rct = make_rct(small_geometry, fth=10)
        results = [rct.on_activate(0) for _ in range(11)]
        assert not any(results)
        assert rct.filtered_acts == 11

    def test_escape_after_threshold(self, small_geometry):
        rct = make_rct(small_geometry, fth=10)
        for _ in range(11):
            rct.on_activate(0)
        assert rct.on_activate(0) is True
        assert rct.escaped_acts == 1

    def test_counter_saturates_at_fth_plus_one(self, small_geometry):
        rct = make_rct(small_geometry, fth=10)
        for _ in range(100):
            rct.on_activate(0)
        assert rct.count(0) == 11

    def test_regions_independent(self, small_geometry):
        rct = make_rct(small_geometry, fth=5)
        for _ in range(6):
            rct.on_activate(0)
        assert rct.on_activate(0)           # region 0 saturated
        assert not rct.on_activate(1024)    # region 1 untouched

    def test_any_row_in_region_shares_counter(self, small_geometry):
        rct = make_rct(small_geometry, fth=5)
        for p in range(6):
            rct.on_activate(p)  # six different rows, same region
        assert rct.on_activate(7)

    def test_escape_fraction(self, small_geometry):
        rct = make_rct(small_geometry, fth=4)
        for _ in range(10):
            rct.on_activate(0)
        assert rct.escape_fraction() == pytest.approx(0.5)

    def test_fth_zero_escapes_after_first(self, small_geometry):
        rct = make_rct(small_geometry, fth=0)
        assert not rct.on_activate(0)
        assert rct.on_activate(0)


class TestEdgeRule:
    def test_no_edge_rule_when_region_is_subarray(self, small_geometry):
        rct = make_rct(small_geometry, num_regions=4, fth=5)
        # Region size == subarray size: edge increments never happen.
        rct.on_activate(1024)  # first row of region 1
        assert rct._counters[0] == 0

    def test_edge_row_increments_both_regions(self, small_geometry):
        # 8 regions of 512 rows: two regions per subarray.
        rct = RegionCountTable(8, 5, small_geometry)
        # Physical row 512 is the first row of region 1, in the middle
        # of subarray 0 -> it can hammer across into region 0.
        rct.on_activate(512)
        assert rct._counters[1] == 1
        assert rct._counters[0] == 1

    def test_last_row_of_region_increments_next(self, small_geometry):
        rct = RegionCountTable(8, 5, small_geometry)
        rct.on_activate(511)
        assert rct._counters[0] == 1
        assert rct._counters[1] == 1

    def test_subarray_boundary_is_not_an_edge(self, small_geometry):
        rct = RegionCountTable(8, 5, small_geometry)
        # Physical row 1024 starts region 2 AND subarray 1: isolated.
        rct.on_activate(1024)
        assert rct._counters[2] == 1
        assert rct._counters[1] == 0

    def test_participation_decision_uses_own_region(self, small_geometry):
        rct = RegionCountTable(8, 2, small_geometry)
        for _ in range(3):
            rct.on_activate(100)  # saturate region 0
        # Row 512 (region 1) still filtered despite region-0 spillover.
        assert not rct.on_activate(512)


def sweep_region(rct, scheduler, region):
    """Advance the refresh scheduler through exactly one region."""
    refs_per_region = rct.region_size // scheduler.rows_per_ref
    for _ in range(refs_per_region):
        rct.on_ref_slice(scheduler.advance())


class TestSafeReset:
    def test_reset_after_full_region_sweep(self, small_geometry):
        rct = make_rct(small_geometry, fth=5)
        scheduler = RefreshScheduler(small_geometry)
        for _ in range(10):
            rct.on_activate(0)
        sweep_region(rct, scheduler, 0)
        assert rct.count(0) == 0

    def test_acts_during_sweep_counted_in_rrc(self, small_geometry):
        rct = make_rct(small_geometry, fth=5)
        scheduler = RefreshScheduler(small_geometry)
        for _ in range(4):
            rct.on_activate(0)
        # Start the region's sweep: RRC inherits the count of 4.
        rct.on_ref_slice(scheduler.advance())
        assert rct.count(0) == 4
        # Two more ACTs mid-sweep reach both RCT entry and RRC.
        rct.on_activate(0)
        rct.on_activate(0)
        assert rct.count(0) == 6
        assert rct.on_activate(0)  # 6 > FTH=5: escapes via the RRC
        # Finish the sweep: the table entry (3 ACTs recorded mid-sweep)
        # takes over.
        refs_left = rct.region_size // scheduler.rows_per_ref - 1
        for _ in range(refs_left):
            rct.on_ref_slice(scheduler.advance())
        assert rct.count(0) == 3

    def test_eager_reset_undercounts(self, small_geometry):
        # Appendix B: eager reset lets 2*(FTH-1)-ish ACTs go unfiltered.
        fth = 5
        eager = make_rct(small_geometry, fth=fth,
                         policy=ResetPolicy.EAGER)
        scheduler = RefreshScheduler(small_geometry)
        for _ in range(fth):
            eager.on_activate(0)
        eager.on_ref_slice(scheduler.advance())  # reset at first REF
        # FTH more ACTs are filtered again: 2*FTH unfiltered in total.
        results = [eager.on_activate(0) for _ in range(fth)]
        assert not any(results)

    def test_safe_reset_does_not_undercount(self, small_geometry):
        fth = 5
        safe = make_rct(small_geometry, fth=fth)
        scheduler = RefreshScheduler(small_geometry)
        for _ in range(fth):
            safe.on_activate(0)
        safe.on_ref_slice(scheduler.advance())
        # Mid-sweep the RRC still remembers the FTH prior ACTs.
        assert safe.on_activate(0) is False  # count==fth, not > fth
        assert safe.on_activate(0) is True

    def test_lazy_reset_clears_only_at_region_end(self, small_geometry):
        fth = 5
        lazy = make_rct(small_geometry, fth=fth, policy=ResetPolicy.LAZY)
        scheduler = RefreshScheduler(small_geometry)
        for _ in range(fth + 1):
            lazy.on_activate(0)
        lazy.on_ref_slice(scheduler.advance())
        assert lazy.count(0) == fth + 1  # not reset yet
        sweep_region(lazy, scheduler, 0)
        assert lazy.count(0) == 0

    def test_reset_is_per_region(self, small_geometry):
        rct = make_rct(small_geometry, fth=5)
        scheduler = RefreshScheduler(small_geometry)
        for _ in range(10):
            rct.on_activate(0)
            rct.on_activate(1024)
        sweep_region(rct, scheduler, 0)
        assert rct.count(0) == 0
        assert rct.count(1) == 6  # saturated at FTH+1, untouched

    def test_coarse_slices_spanning_regions(self, small_geometry):
        # One REF covering multiple regions (heavily scaled windows).
        rct = RegionCountTable(4, 5, small_geometry)
        scheduler = RefreshScheduler(small_geometry, refs_per_window=2)
        for _ in range(10):
            rct.on_activate(0)
            rct.on_activate(1024)
            rct.on_activate(2048)
        rct.on_ref_slice(scheduler.advance())  # covers regions 0 and 1
        assert rct.count(0) == 0
        assert rct.count(1) == 0
        assert rct.count(2) == 6


class TestStorage:
    def test_counter_bits_fit_saturation_value(self, small_geometry):
        assert make_rct(small_geometry, fth=1500).counter_bits == 11
        assert make_rct(small_geometry, fth=3330).counter_bits == 12
        assert make_rct(small_geometry, fth=660).counter_bits == 10

    def test_storage_includes_rrc(self, small_geometry):
        rct = RegionCountTable(128, 1500,
                               DramGeometry())
        assert rct.storage_bits() == 129 * 11
