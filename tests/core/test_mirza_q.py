"""Tests for MIRZA-Q: the tardiness-counting mitigation queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mirza_q import MirzaQueue


class TestConstruction:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MirzaQueue(capacity=0)

    def test_rejects_zero_qth(self):
        with pytest.raises(ValueError):
            MirzaQueue(qth=0)


class TestInsertion:
    def test_insert_starts_at_count_one(self):
        q = MirzaQueue()
        assert q.insert(5)
        assert q.tardiness(5) == 1

    def test_no_duplicates(self):
        q = MirzaQueue()
        q.insert(5)
        q.insert(5)
        assert len(q) == 1
        assert q.tardiness(5) == 2  # re-selection counts as an ACT

    def test_full_queue_drops(self):
        q = MirzaQueue(capacity=2)
        q.insert(1)
        q.insert(2)
        assert not q.insert(3)
        assert q.dropped_insertions == 1
        assert 3 not in q

    def test_contains(self):
        q = MirzaQueue()
        q.insert(9)
        assert 9 in q
        assert 8 not in q


class TestTardiness:
    def test_on_activate_increments_queued(self):
        q = MirzaQueue()
        q.insert(5)
        assert q.on_activate(5)
        assert q.tardiness(5) == 2

    def test_on_activate_ignores_unqueued(self):
        q = MirzaQueue()
        assert not q.on_activate(5)
        assert q.tardiness(5) == 0

    def test_max_tardiness(self):
        q = MirzaQueue()
        q.insert(1)
        q.insert(2)
        for _ in range(5):
            q.on_activate(2)
        assert q.max_tardiness() == 6


class TestAlertCondition:
    def test_alert_when_full(self):
        q = MirzaQueue(capacity=2, qth=100)
        q.insert(1)
        assert not q.wants_alert()
        q.insert(2)
        assert q.wants_alert()

    def test_alert_when_tardiness_exceeds_qth(self):
        q = MirzaQueue(capacity=8, qth=3)
        q.insert(1)
        for _ in range(3):
            q.on_activate(1)  # count reaches 4 > 3
        assert q.wants_alert()

    def test_no_alert_at_exactly_qth(self):
        q = MirzaQueue(capacity=8, qth=3)
        q.insert(1)
        q.on_activate(1)
        q.on_activate(1)  # count == 3 == QTH
        assert not q.wants_alert()

    def test_empty_queue_never_alerts(self):
        assert not MirzaQueue().wants_alert()


class TestEviction:
    def test_pop_max_returns_highest_count(self):
        q = MirzaQueue()
        q.insert(1)
        q.insert(2)
        for _ in range(5):
            q.on_activate(2)
        assert q.pop_max() == 2
        assert 2 not in q
        assert q.evictions == 1

    def test_pop_max_empty_returns_none(self):
        assert MirzaQueue().pop_max() is None

    def test_pop_max_tie_break_deterministic(self):
        q = MirzaQueue()
        q.insert(7)
        q.insert(3)
        assert q.pop_max() == 3  # lowest row id on equal counts

    def test_alert_clears_after_eviction(self):
        q = MirzaQueue(capacity=2, qth=100)
        q.insert(1)
        q.insert(2)
        assert q.wants_alert()
        q.pop_max()
        assert not q.wants_alert()


class TestStorage:
    def test_storage_scales_with_capacity(self):
        small = MirzaQueue(capacity=4).storage_bits(17)
        large = MirzaQueue(capacity=8).storage_bits(17)
        assert large == 2 * small


class TestQueueInvariants:
    @given(st.lists(
        st.tuples(st.sampled_from(["insert", "act", "pop"]),
                  st.integers(0, 10)),
        min_size=1, max_size=200))
    @settings(max_examples=100)
    def test_never_exceeds_capacity(self, ops):
        q = MirzaQueue(capacity=4, qth=16)
        for op, row in ops:
            if op == "insert":
                q.insert(row)
            elif op == "act":
                q.on_activate(row)
            else:
                q.pop_max()
            assert len(q) <= 4
            assert q.max_tardiness() >= 0

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_tardiness_counts_acts_since_insert(self, rows):
        q = MirzaQueue(capacity=8, qth=10 ** 6)
        q.insert(3)
        acts_to_3 = sum(1 for r in rows if r == 3)
        for r in rows:
            q.on_activate(r)
        assert q.tardiness(3) == 1 + acts_to_3
