"""Property-based tests (hypothesis) on MIRZA's core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MirzaConfig
from repro.core.mint import MintSampler
from repro.core.mirza import MirzaTracker
from repro.core.rct import RegionCountTable
from repro.dram.mapping import SequentialR2SA, StridedR2SA
from repro.dram.refresh import RefreshScheduler
from repro.mitigations.base import MitigationSlotSource
from repro.params import DramGeometry

GEOMETRY = DramGeometry(banks_per_subchannel=2, subchannels=1,
                        rows_per_bank=2048, rows_per_subarray=512,
                        rows_per_ref=16)


def build_tracker(fth, window, qth, queue, seed,
                  mapping_cls=SequentialR2SA):
    config = MirzaConfig(trhd=0, fth=fth, mint_window=window,
                         num_regions=4, queue_entries=queue, qth=qth)
    return MirzaTracker(config, GEOMETRY, mapping_cls(GEOMETRY),
                        random.Random(seed))


class TestRctInvariants:
    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=500),
           st.integers(0, 50))
    @settings(max_examples=60)
    def test_filtered_plus_escaped_equals_total(self, rows, fth):
        rct = RegionCountTable(4, fth, GEOMETRY)
        for row in rows:
            rct.on_activate(row)
        assert rct.filtered_acts + rct.escaped_acts == len(rows)

    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=500),
           st.integers(0, 50))
    @settings(max_examples=60)
    def test_counters_never_exceed_saturation(self, rows, fth):
        rct = RegionCountTable(4, fth, GEOMETRY)
        for row in rows:
            rct.on_activate(row)
        assert all(c <= fth + 1 for c in rct._counters)

    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=300))
    @settings(max_examples=40)
    def test_filtered_acts_bounded_by_regions_times_fth(self, rows):
        fth = 10
        rct = RegionCountTable(4, fth, GEOMETRY)
        for row in rows:
            rct.on_activate(row)
        # Without resets, at most (FTH+1) ACTs filter per region.
        assert rct.filtered_acts <= 4 * (fth + 1)

    @given(st.integers(1, 40), st.data())
    @settings(max_examples=40)
    def test_reset_cycle_preserves_invariants(self, fth, data):
        rct = RegionCountTable(4, fth, GEOMETRY)
        scheduler = RefreshScheduler(GEOMETRY)
        for _ in range(data.draw(st.integers(1, 200))):
            if data.draw(st.booleans()):
                rct.on_activate(data.draw(st.integers(0, 2047)))
            else:
                rct.on_ref_slice(scheduler.advance())
            assert all(0 <= c <= fth + 1 for c in rct._counters)
            assert 0 <= rct._rrc <= fth + 1


class TestMintInvariants:
    @given(st.integers(1, 32), st.integers(0, 2 ** 30),
           st.integers(1, 20))
    @settings(max_examples=60)
    def test_selection_count_exact(self, window, seed, windows):
        sampler = MintSampler(window, random.Random(seed))
        picked = 0
        for i in range(window * windows):
            if sampler.observe(i) is not None:
                picked += 1
        assert picked == windows


class TestTrackerInvariants:
    @given(st.lists(st.integers(0, 2047), min_size=1, max_size=400),
           st.integers(0, 20), st.integers(4, 8), st.integers(1, 20),
           st.integers(1, 4), st.integers(0, 2 ** 30))
    @settings(max_examples=40)
    def test_queue_and_counters_stay_legal(self, rows, fth, window,
                                           qth, queue, seed):
        tracker = build_tracker(fth, window, qth, queue, seed)
        for i, row in enumerate(rows):
            tracker.on_activate(row, i)
            assert len(tracker.queue) <= queue
            if tracker.wants_alert():
                mitigated = tracker.on_mitigation_slot(
                    i, MitigationSlotSource.ALERT)
                assert len(mitigated) <= 1
        # Conservation: every ACT is filtered, escaped-and-counted, or
        # absorbed by a queued entry's tardiness counter.
        rct = tracker.rct
        assert rct.filtered_acts + rct.escaped_acts <= len(rows)

    @given(st.integers(0, 2 ** 30))
    @settings(max_examples=20)
    def test_strided_and_sequential_agree_on_totals(self, seed):
        rng = random.Random(seed)
        rows = [rng.randrange(2048) for _ in range(300)]
        totals = []
        for mapping_cls in (SequentialR2SA, StridedR2SA):
            tracker = build_tracker(5, 4, 8, 4, seed, mapping_cls)
            for i, row in enumerate(rows):
                tracker.on_activate(row, i)
            totals.append(tracker.rct.filtered_acts
                          + tracker.rct.escaped_acts
                          + sum(tracker.queue._entries.values())
                          - len(tracker.queue))
        # The mapping redistributes ACTs over regions but never loses
        # any: both observe the same activation count.
        assert tracker.acts_observed == len(rows)
