"""Tests for the MINT window sampler."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mint import MintSampler


class TestMintSampler:
    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            MintSampler(0)

    def test_exactly_one_selection_per_window(self):
        s = MintSampler(12, random.Random(3))
        for _ in range(100):
            selections = [s.observe(row) for row in range(12)]
            picked = [x for x in selections if x is not None]
            assert len(picked) == 1

    def test_window_of_one_selects_everything(self):
        s = MintSampler(1, random.Random(0))
        assert all(s.observe(r) == r for r in range(20))

    def test_selection_probability(self):
        assert MintSampler(12).selection_probability == pytest.approx(
            1 / 12)

    def test_selected_row_is_the_observed_row(self):
        s = MintSampler(4, random.Random(9))
        for window in range(50):
            rows = [100 + window * 4 + i for i in range(4)]
            picked = [s.observe(r) for r in rows]
            hit = [p for p in picked if p is not None][0]
            assert hit in rows

    def test_uniformity_over_positions(self):
        # Each of the W positions must be picked ~uniformly.
        W = 8
        s = MintSampler(W, random.Random(42))
        counts = Counter()
        trials = 4000
        for _ in range(trials):
            for pos in range(W):
                if s.observe(pos) is not None:
                    counts[pos] += 1
        expected = trials / W
        for pos in range(W):
            assert abs(counts[pos] - expected) < 5 * (expected ** 0.5)

    def test_counters(self):
        s = MintSampler(4, random.Random(1))
        for i in range(10):
            s.observe(i)
        assert s.observed == 10
        assert s.windows_completed == 2
        assert s.selected == 2

    def test_storage_is_tiny(self):
        # MINT's whole point: a single-entry tracker.
        bits = MintSampler(12).storage_bits(row_bits=17)
        assert bits <= 32

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=60)
    def test_one_selection_per_window_property(self, window, seed):
        s = MintSampler(window, random.Random(seed))
        for _ in range(5):
            picked = sum(
                1 for i in range(window) if s.observe(i) is not None)
            assert picked == 1

    def test_deterministic_under_seed(self):
        a = MintSampler(16, random.Random(7))
        b = MintSampler(16, random.Random(7))
        seq_a = [a.observe(i) for i in range(160)]
        seq_b = [b.observe(i) for i in range(160)]
        assert seq_a == seq_b
