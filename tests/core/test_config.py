"""Tests for MIRZA configuration and the Table VII solver."""

import pytest

from repro.core.config import MirzaConfig
from repro.params import DramGeometry


class TestPaperConfigs:
    """Table VII, verbatim."""

    @pytest.mark.parametrize("trhd,fth,window,regions,sram", [
        (2000, 3330, 16, 64, 116.0),
        (1000, 1500, 12, 128, 196.0),
        (500, 660, 8, 256, 340.0),
    ])
    def test_preset_matches_table7(self, trhd, fth, window, regions,
                                   sram):
        cfg = MirzaConfig.paper_config(trhd)
        assert cfg.fth == fth
        assert cfg.mint_window == window
        assert cfg.num_regions == regions
        assert cfg.storage_bytes_per_bank == sram

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            MirzaConfig.paper_config(750)

    def test_presets_are_safe(self):
        for trhd in (500, 1000, 2000):
            cfg = MirzaConfig.paper_config(trhd)
            # The preset's safe threshold must be within rounding (the
            # paper's FTH values differ from the solver's by < 1%).
            assert cfg.safe_trhd() <= trhd * 1.01

    def test_default_queue_parameters(self):
        cfg = MirzaConfig.paper_config(1000)
        assert cfg.queue_entries == 4
        assert cfg.qth == 16


class TestSolver:
    @pytest.mark.parametrize("trhd,window,paper_fth", [
        (2000, 16, 3330),
        (1000, 12, 1500),
        (500, 8, 660),
    ])
    def test_solved_fth_within_one_percent_of_paper(self, trhd, window,
                                                    paper_fth):
        cfg = MirzaConfig.solve(trhd, mint_window=window)
        assert abs(cfg.fth - paper_fth) / paper_fth < 0.01

    def test_solved_config_is_safe(self):
        for trhd in (500, 1000, 2000, 4800):
            cfg = MirzaConfig.solve(trhd)
            assert cfg.is_safe(), trhd

    def test_larger_window_means_lower_fth(self):
        low = MirzaConfig.solve(1000, mint_window=8)
        high = MirzaConfig.solve(1000, mint_window=16)
        assert high.fth < low.fth

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError):
            MirzaConfig.solve(100, mint_window=512)

    def test_default_regions_follow_threshold(self):
        assert MirzaConfig.solve(2000).num_regions == 64
        assert MirzaConfig.solve(1000).num_regions == 128
        assert MirzaConfig.solve(500).num_regions == 256


class TestDerived:
    def test_counter_bits(self):
        assert MirzaConfig.paper_config(1000).counter_bits == 11
        assert MirzaConfig.paper_config(2000).counter_bits == 12
        assert MirzaConfig.paper_config(500).counter_bits == 10

    def test_region_size(self):
        cfg = MirzaConfig.paper_config(1000)
        assert cfg.region_size(DramGeometry()) == 1024

    def test_scaled_divides_fth_only(self):
        cfg = MirzaConfig.paper_config(1000)
        scaled = cfg.scaled(64)
        assert scaled.fth == 1500 // 64
        assert scaled.mint_window == cfg.mint_window
        assert scaled.num_regions == cfg.num_regions
        assert scaled.qth == cfg.qth

    def test_scaled_identity(self):
        cfg = MirzaConfig.paper_config(1000)
        assert cfg.scaled(1) is cfg

    def test_scaled_fth_floor_of_one(self):
        cfg = MirzaConfig.paper_config(500)
        assert cfg.scaled(10 ** 6).fth == 1

    def test_storage_monotone_in_regions(self):
        big = MirzaConfig(trhd=0, fth=1500, mint_window=12,
                          num_regions=256)
        small = MirzaConfig(trhd=0, fth=1500, mint_window=12,
                            num_regions=64)
        assert big.storage_bytes_per_bank > small.storage_bytes_per_bank
