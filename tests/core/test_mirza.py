"""Tests for the assembled MIRZA tracker."""

import random

import pytest

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import SequentialR2SA, StridedR2SA
from repro.dram.refresh import RefreshScheduler
from repro.mitigations.base import MitigationSlotSource
from repro.params import DramGeometry


@pytest.fixture
def geometry(small_geometry):
    return small_geometry


def make_tracker(geometry, fth=10, window=4, regions=4, qth=16,
                 queue=4, seed=0, mapping=None):
    config = MirzaConfig(trhd=0, fth=fth, mint_window=window,
                         num_regions=regions, queue_entries=queue,
                         qth=qth)
    return MirzaTracker(config, geometry,
                        mapping or SequentialR2SA(geometry),
                        random.Random(seed))


class TestThreePaths:
    def test_filtered_act_touches_nothing_else(self, geometry):
        t = make_tracker(geometry, fth=10)
        t.on_activate(0, 0)
        assert t.rct.filtered_acts == 1
        assert t.mint.observed == 0
        assert len(t.queue) == 0

    def test_escaped_act_participates_in_mint(self, geometry):
        t = make_tracker(geometry, fth=2, window=4)
        for i in range(3):
            t.on_activate(i, 0)   # fill the region counter
        t.on_activate(3, 0)       # escapes
        assert t.mint.observed == 1

    def test_queued_row_increments_tardiness_not_mint(self, geometry):
        t = make_tracker(geometry, fth=0, window=1)
        t.on_activate(5, 0)   # filtered (counter 0 -> 1)
        t.on_activate(5, 0)   # escapes, W=1 selects, enqueued
        assert 5 in t.queue
        observed = t.mint.observed
        t.on_activate(5, 0)   # queued: tardiness bump only
        assert t.queue.tardiness(5) == 2
        assert t.mint.observed == observed

    def test_selection_enqueues_with_count_one(self, geometry):
        t = make_tracker(geometry, fth=0, window=1)
        t.on_activate(7, 0)
        t.on_activate(7, 0)
        assert t.queue.tardiness(7) == 1


class TestAlerting:
    def test_wants_alert_mirrors_queue(self, geometry):
        t = make_tracker(geometry, fth=0, window=1, queue=1)
        assert not t.wants_alert()
        t.on_activate(1, 0)
        t.on_activate(1, 0)
        assert t.wants_alert()

    def test_alert_slot_mitigates_max_entry(self, geometry):
        t = make_tracker(geometry, fth=0, window=1, queue=4)
        for row in (1, 2):
            t.on_activate(row, 0)
            t.on_activate(row, 0)
        for _ in range(5):
            t.on_activate(2, 0)
        rows = t.on_mitigation_slot(0, MitigationSlotSource.ALERT)
        assert rows == [2]

    def test_ref_slot_declined(self, geometry):
        # MIRZA never cannibalises refresh time (Table XII).
        t = make_tracker(geometry, fth=0, window=1)
        t.on_activate(1, 0)
        t.on_activate(1, 0)
        assert t.on_mitigation_slot(0, MitigationSlotSource.REF) == []
        assert 1 in t.queue

    def test_rfm_slot_accepted(self, geometry):
        t = make_tracker(geometry, fth=0, window=1)
        t.on_activate(1, 0)
        t.on_activate(1, 0)
        assert t.on_mitigation_slot(0, MitigationSlotSource.RFM) == [1]

    def test_empty_queue_yields_no_mitigation(self, geometry):
        t = make_tracker(geometry)
        assert t.on_mitigation_slot(0, MitigationSlotSource.ALERT) == []


class TestRefreshIntegration:
    def test_ref_slices_reset_rct(self, geometry):
        t = make_tracker(geometry, fth=3)
        scheduler = RefreshScheduler(geometry)
        for _ in range(10):
            t.on_activate(0, 0)
        refs = t.rct.region_size // scheduler.rows_per_ref
        for _ in range(refs):
            t.on_ref_slice(scheduler.advance(), 0)
        assert t.rct.count(0) == 0


class TestMappings:
    def test_strided_mapping_spreads_regions(self, geometry):
        t = make_tracker(geometry, fth=2, regions=4,
                         mapping=StridedR2SA(geometry))
        # Consecutive logical rows land in different regions: none
        # escape with only 3 ACTs each spread over 4 regions.
        escaped_before = t.rct.escaped_acts
        for row in range(12):
            t.on_activate(row, 0)
        assert t.rct.escaped_acts == escaped_before

    def test_sequential_mapping_concentrates(self, geometry):
        t = make_tracker(geometry, fth=2, regions=4,
                         mapping=SequentialR2SA(geometry))
        for row in range(12):
            t.on_activate(row, 0)
        assert t.rct.escaped_acts == 12 - 3


class TestReporting:
    def test_storage_bits_sum_components(self, geometry):
        t = make_tracker(geometry)
        row_bits = (geometry.rows_per_bank - 1).bit_length()
        expected = (t.rct.storage_bits()
                    + t.queue.storage_bits(row_bits)
                    + t.mint.storage_bits(row_bits))
        assert t.storage_bits() == expected

    def test_full_scale_storage_about_196_bytes(self):
        geometry = DramGeometry()
        config = MirzaConfig.paper_config(1000)
        t = MirzaTracker(config, geometry, StridedR2SA(geometry),
                         random.Random(0))
        assert 180 <= t.storage_bits() / 8 <= 215

    def test_mitigation_probability(self, geometry):
        t = make_tracker(geometry, fth=4, window=4)
        for _ in range(10):
            t.on_activate(0, 0)
        expected = t.escape_fraction / 4
        assert t.mitigation_probability == pytest.approx(expected)
