"""Cross-checks against every number the paper states in prose.

The introduction and body quote many derived figures; this module pins
each one to the code that produces it, so a regression that silently
shifts the model away from the paper fails loudly.
"""

import pytest

from repro.core.config import MirzaConfig
from repro.params import (
    AboTimings,
    DramTimings,
    MitigationCosts,
    max_acts_per_bank_per_trefw,
    max_acts_per_channel_per_trefw,
    ns,
)
from repro.security.analysis import acts_per_ref_interval
from repro.security.area import AreaModel, mirza_storage_bytes_per_bank
from repro.security.mint_model import mint_tolerated_trhd


class TestIntroductionClaims:
    def test_196_bytes_per_bank_at_1k(self):
        """'MIRZA requires a storage overhead of only 196 bytes of
        SRAM per bank' (abstract)."""
        assert MirzaConfig.paper_config(1000).storage_bytes_per_bank \
            == 196

    def test_45x_lower_area_than_prac(self):
        """'Compared to PRAC, MIRZA has 45x lower area overheads.'"""
        config = MirzaConfig.paper_config(1000)
        ratio = AreaModel().prac_to_mirza_ratio(
            1000, config.num_regions, config.fth)
        assert ratio == pytest.approx(45, rel=0.05)

    def test_mirza_mitigation_reduction_28x_at_paper_escape(self):
        """'MIRZA reduces the mitigation overheads by 28.5x' -- using
        the paper's own escape probability of 1/114 at TRHD=1K."""
        mint_rate = 1 / 48
        mirza_rate = (1 / 114) / 12
        assert mint_rate / mirza_rate == pytest.approx(28.5, rel=0.01)


class TestSectionII:
    def test_mitigation_takes_280ns_ref_410ns(self):
        """'mitigating a row takes 280ns and REF time is 410ns'."""
        assert MitigationCosts().mitigation_time == ns(280)
        assert DramTimings().tRFC == ns(410)

    def test_mint_75_tolerates_1500(self):
        """'MINT can tolerate a threshold of 1.5K if one aggressor row
        is mitigated at every REF' (window ~75)."""
        assert mint_tolerated_trhd(75) == pytest.approx(1500, rel=0.03)

    def test_abo_latency_530ns_with_350_stall(self):
        """'The latency of ALERT is 530ns, out of which DRAM is
        unavailable for 350ns.'"""
        abo = AboTimings()
        assert abo.latency == ns(530)
        assert abo.stall == ns(350)


class TestSectionIV:
    def test_worst_case_621k_acts_per_bank(self):
        """'for every tREFW, we can get 621K activations per bank'."""
        assert max_acts_per_bank_per_trefw() == pytest.approx(
            621_000, rel=0.01)

    def test_channel_ceiling_8_8m(self):
        """Footnote 2: 'a channel can perform a maximum of 8.8 Million
        activations per tREFW'."""
        assert max_acts_per_channel_per_trefw() == pytest.approx(
            8_800_000, rel=0.12)

    def test_128_counters_of_11_bits_176_bytes(self):
        """'128 counters of 11 bits, so 176 bytes per bank' (the RCT
        alone, before the queue overhead)."""
        assert 128 * 11 / 8 == 176
        assert mirza_storage_bytes_per_bank(128, 1500) == 176 + 20


class TestSectionV:
    def test_mint_w_must_cover_abo_acts(self):
        """Section V-D: 'This constraint is satisfied if MINT-W >= 4'
        -- every paper configuration respects it."""
        for trhd in (500, 1000, 2000):
            config = MirzaConfig.paper_config(trhd)
            assert config.mint_window >= \
                AboTimings().acts_between_alerts

    def test_refresh_needs_64_refs_per_subarray(self):
        """'To refresh a subarray with 1K rows, we need 64 REFs.'"""
        from repro.params import DramGeometry
        assert DramGeometry().refs_per_subarray == 64

    def test_about_76_acts_between_refs(self):
        """Table II derivation: ~75 ACTs fit between REF commands."""
        assert acts_per_ref_interval() == 75


class TestSectionVI:
    def test_overall_selection_1_in_1200(self):
        """'MINT receives only 1/100 ACTs ... selects only 1/12 (so,
        overall, 1 out of 1200)' -- the default-setting arithmetic."""
        escape = 1 / 100
        selection = 1 / 12
        assert 1 / (escape * selection) == pytest.approx(1200)

    def test_q_plus_7_worst_case(self):
        """Figure 10: 'C can get QTH+7 ACTs'."""
        from repro.security.mirza_model import abo_extra_acts
        assert abo_extra_acts() == 7
