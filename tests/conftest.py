"""Shared fixtures: small geometries keep unit tests fast."""

from __future__ import annotations

import dataclasses

import pytest

from repro.params import DramGeometry, DramTimings, SystemConfig


@pytest.fixture
def small_geometry() -> DramGeometry:
    """A 4K-row bank with 4 subarrays: big enough for every invariant,
    small enough for exhaustive sweeps."""
    return DramGeometry(
        banks_per_subchannel=4,
        subchannels=2,
        rows_per_bank=4096,
        rows_per_subarray=1024,
        rows_per_ref=16,
    )


@pytest.fixture
def tiny_geometry() -> DramGeometry:
    """A 256-row bank with 4 subarrays of 64 rows."""
    return DramGeometry(
        banks_per_subchannel=2,
        subchannels=1,
        rows_per_bank=256,
        rows_per_subarray=64,
        rows_per_ref=16,
    )


@pytest.fixture
def small_config(small_geometry: DramGeometry) -> SystemConfig:
    return SystemConfig(geometry=small_geometry, num_cores=2)


@pytest.fixture
def timings() -> DramTimings:
    return DramTimings()


def make_geometry(**overrides) -> DramGeometry:
    """Helper for tests needing one-off geometries."""
    return dataclasses.replace(DramGeometry(), **overrides)
