"""Chunked trace delivery: ChunkSource, chunk_entries, Core integration."""

from __future__ import annotations


import pytest

from repro.cpu.core import Core
from repro.cpu.trace import ChunkSource, TraceEntry, chunk_entries, take
from repro.workloads.mixed import MixedWorkload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.specs import workload_by_name


def _entries(n):
    return [TraceEntry(compute_ps=1000 + i, instructions=10,
                       subchannel=i % 2, bank=i % 4, row=i)
            for i in range(n)]


def test_entry_tuple_round_trip():
    entry = TraceEntry(1000, 10, 1, 3, 77)
    tup = (entry.compute_ps, entry.instructions, entry.subchannel,
           entry.bank, entry.row)
    assert TraceEntry(*tup) == entry


def test_chunk_entries_preserves_order_and_content():
    entries = _entries(600)
    source = chunk_entries(iter(entries), size=256)
    seen = []
    while True:
        chunk = source.next_chunk()
        if chunk is None:
            break
        assert 0 < len(chunk) <= 256
        seen.extend(chunk)
    assert [TraceEntry(*t) for t in seen] == entries


def test_chunk_source_iterates_as_entries():
    entries = _entries(10)
    source = chunk_entries(iter(entries), size=4)
    assert list(source) == entries


def test_core_consumes_plain_iterator_and_chunk_source_identically():
    entries = _entries(50)
    core_a = Core(0, iter(entries), mlp=4)
    core_b = Core(0, chunk_entries(iter(entries), size=8), mlp=4)
    for _ in range(len(entries)):
        issue_a, entry_a = core_a.pop_request()
        issue_b, entry_b = core_b.pop_request()
        assert (issue_a, entry_a) == (issue_b, entry_b)
        core_a.complete(issue_a + 50_000)
        core_b.complete(issue_b + 50_000)
    assert core_a.peek_issue_time() is None
    assert core_b.peek_issue_time() is None
    with pytest.raises(StopIteration):
        core_a.pop_request()
    with pytest.raises(StopIteration):
        core_b.pop_request()


def test_core_pop_tuple_matches_pop_request():
    entries = _entries(6)
    core = Core(0, iter(entries), mlp=2)
    issue, tup = core.pop_tuple()
    assert TraceEntry(*tup) == entries[0]
    assert issue == entries[0].compute_ps


def test_synthetic_chunks_match_entry_trace():
    """The chunked generator must replay the exact RNG sequence."""
    spec = workload_by_name("mcf")
    workload = SyntheticWorkload(spec, seed=3)
    from_chunks = []
    for chunk in workload.trace_chunks(core_id=1):
        from_chunks.extend(TraceEntry(*t) for t in chunk)
        if len(from_chunks) >= 1000:
            break
    regenerated = take(
        SyntheticWorkload(spec, seed=3).trace(core_id=1), 1000)
    assert from_chunks[:1000] == regenerated


def test_synthetic_trace_factory_returns_chunk_sources():
    workload = SyntheticWorkload(workload_by_name("tc"), seed=0)
    source = workload.trace_factory()(0)
    assert isinstance(source, ChunkSource)
    chunk = source.next_chunk()
    assert chunk and len(chunk) >= 256


def test_mixed_trace_factory_returns_chunk_sources():
    mix = MixedWorkload.paper_mix("mix_1", seed=0)
    source = mix.trace_factory()(2)
    assert isinstance(source, ChunkSource)
    first = source.next_chunk()[0]
    expected = next(iter(mix.trace(2)))
    assert TraceEntry(*first) == expected
